//! Experiment T1's backbone: the taxonomy cards' *claims* cross-checked
//! against *measured* behaviour of the implementations.

use forty::bft::hotstuff::{HsCluster, HsConfig};
use forty::bft::minbft::MinCluster;
use forty::bft::pbft::PbftCluster;
use forty::consensus_core::taxonomy::{all_cards, card, ComplexityClass, NodeBound};
use forty::consensus_core::QuorumSpec;
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::{NetConfig, Time};

/// Measures messages/command at two cluster sizes and classifies growth.
fn growth_class(measure: impl Fn(usize) -> f64, n_small: usize, n_large: usize) -> ComplexityClass {
    let small = measure(n_small);
    let large = measure(n_large);
    let ratio = large / small;
    let linear_ratio = n_large as f64 / n_small as f64;
    // Midpoint between linear and quadratic growth separates the classes.
    if ratio < linear_ratio * 1.7 {
        ComplexityClass::Linear
    } else {
        ComplexityClass::Quadratic
    }
}

#[test]
fn registry_covers_all_surveyed_protocols() {
    let names: Vec<&str> = all_cards().iter().map(|c| c.name).collect();
    for expected in [
        "Paxos",
        "Raft",
        "Fast Paxos",
        "Flexible Paxos",
        "2PC",
        "3PC",
        "PBFT",
        "Zyzzyva",
        "HotStuff",
        "MinBFT",
        "CheapBFT",
        "XFT",
        "UpRight",
        "SeeMoRe",
        "PoW (Bitcoin)",
        "PoS",
    ] {
        assert!(names.contains(&expected), "missing card: {expected}");
    }
}

#[test]
fn paxos_node_bound_is_necessary_and_sufficient() {
    let c = card("Paxos").unwrap();
    assert_eq!(c.nodes, NodeBound::TwoFPlusOne);
    // Sufficient: n = 3 = 2f+1 completes with one crashed replica.
    let mut ok = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 3 },
        3,
        1,
        5,
        NetConfig::lan(),
        1,
    );
    ok.sim.crash_at(forty::simnet::NodeId(2), Time::ZERO);
    assert!(ok.run(Time::from_secs(30)));
    // Necessary: with two of three replicas down there is no majority;
    // nothing commits (and nothing unsafe happens).
    let mut stuck = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 3 },
        3,
        1,
        5,
        NetConfig::lan(),
        2,
    );
    stuck.sim.crash_at(forty::simnet::NodeId(1), Time::ZERO);
    stuck.sim.crash_at(forty::simnet::NodeId(2), Time::ZERO);
    assert!(!stuck.run(Time::from_millis(500)));
    assert_eq!(stuck.total_completed(), 0);
}

#[test]
fn paxos_measured_complexity_is_linear() {
    let measure = |n: usize| {
        let mut c = MultiPaxosCluster::new(
            QuorumSpec::Majority { n },
            n,
            1,
            15,
            NetConfig::lan(),
            5,
        );
        assert!(c.run(Time::from_secs(30)));
        c.sim.metrics().sent as f64 / 15.0
    };
    assert_eq!(
        growth_class(measure, 3, 9),
        card("Paxos").unwrap().complexity
    );
}

#[test]
fn raft_measured_complexity_is_linear() {
    let measure = |n: usize| {
        let mut c = RaftCluster::new(n, 1, 15, NetConfig::lan(), 6);
        assert!(c.run(Time::from_secs(30)));
        c.sim.metrics().sent as f64 / 15.0
    };
    assert_eq!(growth_class(measure, 3, 9), card("Raft").unwrap().complexity);
}

#[test]
fn pbft_measured_complexity_is_quadratic() {
    let measure = |n: usize| {
        let mut c = PbftCluster::new(n, 1, 10, NetConfig::lan(), 7);
        assert!(c.run(Time::from_secs(60)));
        c.sim.metrics().sent as f64 / 10.0
    };
    assert_eq!(
        growth_class(measure, 4, 10),
        card("PBFT").unwrap().complexity
    );
}

#[test]
fn hotstuff_measured_complexity_is_linear_despite_bft() {
    let measure = |n: usize| {
        let mut c = HsCluster::new(HsConfig::rotating(n), 10, 1, NetConfig::lan(), 8);
        assert!(c.run(Time::from_secs(60)));
        c.sim.metrics().sent as f64 / 10.0
    };
    assert_eq!(
        growth_class(measure, 4, 10),
        card("HotStuff").unwrap().complexity
    );
}

#[test]
fn node_bounds_match_minimum_working_cluster_sizes() {
    // PBFT card says 3f+1: n = 4 works with f = 1 crash.
    let mut pbft = PbftCluster::new(4, 1, 5, NetConfig::lan(), 9);
    pbft.sim.crash_at(forty::simnet::NodeId(3), Time::ZERO);
    assert!(pbft.run(Time::from_secs(30)));

    // MinBFT card says 2f+1: n = 3 works with f = 1 crash — fewer
    // replicas than PBFT for the same fault bound, thanks to the USIG.
    let mut minbft = MinCluster::new(3, 5, NetConfig::lan(), 9);
    minbft.sim.crash_at(forty::simnet::NodeId(2), Time::ZERO);
    assert!(minbft.run(Time::from_secs(30)));

    let pbft_n = card("PBFT").unwrap().nodes.required(1, 0).unwrap();
    let minbft_n = card("MinBFT").unwrap().nodes.required(1, 0).unwrap();
    assert_eq!(pbft_n, 4);
    assert_eq!(minbft_n, 3);
}

#[test]
fn hotstuff_phase_count_is_seven_on_the_wire() {
    // The card says 7 phases; count distinct one-way exchanges per
    // committed command on a quiet run.
    let mut c = HsCluster::new(HsConfig::rotating(4), 3, 1, NetConfig::lan(), 10);
    assert!(c.run(Time::from_secs(30)));
    let m = c.sim.metrics();
    let phases = [
        "prepare",
        "prepare-vote",
        "pre-commit",
        "pre-commit-vote",
        "commit",
        "commit-vote",
        "decide",
    ];
    for p in phases {
        assert!(m.kind(p) > 0, "phase {p} missing");
    }
    assert_eq!(phases.len(), 7);
}
