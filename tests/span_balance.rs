//! Span-balance invariant on protocol smoke runs.
//!
//! With causal tracing enabled, a quiesced fault-free run must leave no
//! consensus-instance span open, and every opened instance must have been
//! closed (closes may exceed opens: each replica closing its copy of a
//! decided instance counts separately). Tracing itself must be free — the
//! traced run is bit-identical to the untraced one, because the tracer
//! draws no randomness and schedules no events.

use forty::bft::pbft::PbftCluster;
use forty::consensus_core::{ClusterDriver, QuorumSpec};
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::{NetConfig, Time};

const CMDS: usize = 12;
const SEED: u64 = 7;

fn assert_balanced<C: ClusterDriver>(name: &str, cluster: &C) {
    assert_eq!(
        cluster.open_span_instances(),
        0,
        "{name}: consensus-instance spans leaked open after quiescence"
    );
    let m = cluster.metrics();
    assert!(m.spans_opened > 0, "{name}: the run opened no instance spans");
    assert!(
        m.spans_closed >= m.spans_opened,
        "{name}: {} spans opened but only {} closed",
        m.spans_opened,
        m.spans_closed
    );
    let spans = cluster.causal_spans();
    assert!(!spans.is_empty(), "{name}: tracing recorded no causal spans");
    for s in &spans {
        assert!(
            s.end >= s.start,
            "{name}: span {} ends before it starts",
            s.name
        );
    }
}

#[test]
fn multi_paxos_smoke_run_balances_spans() {
    let mut c = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 3 },
        3,
        1,
        CMDS,
        NetConfig::lan(),
        SEED,
    );
    c.enable_tracing(0);
    assert!(c.run(Time::from_secs(30)), "multi-paxos did not finish");
    c.check_log_consistency();
    assert_balanced("multi-paxos", &c);
}

#[test]
fn raft_smoke_run_balances_spans() {
    let mut c = RaftCluster::new(3, 1, CMDS, NetConfig::lan(), SEED);
    c.enable_tracing(0);
    assert!(c.run(Time::from_secs(30)), "raft did not finish");
    c.check_log_matching();
    assert_balanced("raft", &c);
}

#[test]
fn pbft_smoke_run_balances_spans() {
    let mut c = PbftCluster::new(4, 1, CMDS, NetConfig::lan(), SEED);
    c.enable_tracing(0);
    assert!(c.run(Time::from_secs(30)), "pbft did not finish");
    c.check_state_agreement();
    assert_balanced("pbft", &c);
}

#[test]
fn paxos_commit_store_run_balances_spans() {
    use forty::store::{CommitBackend, Store, StoreConfig};

    // The Paxos Commit backend drives extra consensus instances (one vote
    // register CAS per participant); all of them must close, and recording
    // them must not perturb the run.
    let run = |traced: bool| {
        let mut s: Store<MultiPaxosCluster> =
            Store::new(StoreConfig::small(SEED).backend(CommitBackend::PaxosCommit));
        if traced {
            s.enable_tracing();
        }
        assert!(s.run(Time::from_secs(30)), "paxos-commit store stalled");
        s
    };
    let s = run(true);
    for shard in s.shards() {
        assert_balanced("paxos-commit store shard", shard);
    }
    let spans = s.causal_spans();
    assert!(
        spans.iter().any(|sp| sp.name.contains("vote")),
        "traced paxos-commit run recorded no vote-register spans"
    );
    assert_eq!(
        s.fingerprint(),
        run(false).fingerprint(),
        "enabling causal tracing changed the paxos-commit store run"
    );
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let run = |traced: bool| {
        let mut c = MultiPaxosCluster::new(
            QuorumSpec::Majority { n: 3 },
            3,
            1,
            CMDS,
            NetConfig::lan(),
            SEED,
        );
        if traced {
            c.enable_tracing(0);
        }
        assert!(c.run(Time::from_secs(30)), "multi-paxos did not finish");
        let m = c.metrics();
        (m.sent, m.delivered, m.spans_closed, c.latencies().mean() as u64)
    };
    assert_eq!(
        run(false),
        run(true),
        "enabling causal tracing changed the simulation"
    );
}
