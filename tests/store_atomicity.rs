//! Cross-shard atomicity matrix for the sharded store: every combination of
//! transaction span {1, 2, 3} × shard engine {Multi-Paxos, Raft} ×
//! coordinator crash {before, after} the prepare round must terminate with
//! recovery resolving the orphaned transaction, zero violations from the
//! nemesis atomicity checker, and all-or-nothing visibility of the
//! transaction's writes.
//!
//! The workload is seed-generated, so the matrix *probes* a fault-free run
//! first to learn which transaction number has which span, then re-runs the
//! same seed with a phase-accurate router crash on exactly that
//! transaction — determinism guarantees the probe and the faulted run see
//! the identical workload.

use forty::consensus_core::txn::{self, TxnDecision};
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::Time;
use forty::store::{RouterCrashPoint, ShardEngine, Store, StoreConfig, TxnOutcome, ROUTER_BASE};
use nemesis::checker::check_txn_atomicity;

const HORIZON: Time = Time(20_000_000);

/// Finds a seed whose router-0 workload contains transactions of every span
/// in 1..=3, and returns it with the fault-free outcomes. Bounded search
/// over a fixed window keeps the test deterministic.
fn seed_with_all_spans<E: ShardEngine>() -> (u64, Vec<TxnOutcome>) {
    for seed in 0..64 {
        let mut s: Store<E> = Store::new(StoreConfig::small(seed));
        assert!(s.run(HORIZON), "probe run stalled at seed {seed}");
        let outcomes = s.outcomes();
        let spans_of_r0 = |span: usize| {
            outcomes
                .iter()
                .any(|o| o.tid.client == ROUTER_BASE && o.span == span)
        };
        if (1..=3).all(spans_of_r0) {
            return (seed, outcomes);
        }
    }
    panic!("no seed in 0..64 generates spans 1..=3 on router 0");
}

/// Runs the matrix cell: crash router 0 on its transaction of span `span`
/// at `point`, then assert termination, recovery resolution, atomicity
/// (checker + direct visibility), and that the surviving router finished.
fn crash_cell<E: ShardEngine>(seed: u64, outcomes: &[TxnOutcome], span: usize, point: RouterCrashPoint) {
    let target = outcomes
        .iter()
        .find(|o| o.tid.client == ROUTER_BASE && o.span == span)
        .expect("probe guaranteed a txn of this span");
    let mut s: Store<E> = Store::new(StoreConfig::small(seed));
    s.crash_router_on_txn(0, target.tid.number, point);
    assert!(
        s.run(HORIZON),
        "store stalled: span {span}, {point:?}, seed {seed}"
    );

    // Recovery claimed the orphan; the decision was still open at both
    // crash points, so the abort-CAS wins — atomicity means *nothing* of
    // the transaction is visible.
    let resolved = s.recovered().iter().find(|(t, _)| *t == target.tid);
    assert_eq!(
        resolved,
        Some(&(target.tid, TxnDecision::Abort)),
        "span {span}, {point:?}: recovery must abort the undecided orphan"
    );
    for (_, key) in s.pool_keys() {
        if let Some(v) = s.peek(&key) {
            assert_ne!(
                txn::tagged_txn(&v),
                Some(target.tid),
                "span {span}, {point:?}: aborted txn's write leaked to {key}"
            );
        }
    }

    // The full history — routers, recovery, audit — passes the nemesis
    // cross-shard atomicity check.
    let violations = check_txn_atomicity(&s.history());
    assert!(
        violations.is_empty(),
        "span {span}, {point:?}: {violations:?}"
    );

    // Liveness for everyone else: the surviving router finished.
    assert!(s.router_done(1), "span {span}, {point:?}: router 1 stalled");
}

fn matrix<E: ShardEngine>() {
    let (seed, outcomes) = seed_with_all_spans::<E>();
    for span in 1..=3 {
        for point in [RouterCrashPoint::BeforePrepare, RouterCrashPoint::AfterPrepare] {
            crash_cell::<E>(seed, &outcomes, span, point);
        }
    }
}

#[test]
fn paxos_store_atomicity_matrix() {
    matrix::<MultiPaxosCluster>();
}

#[test]
fn raft_store_atomicity_matrix() {
    matrix::<RaftCluster>();
}

#[test]
fn fault_free_histories_are_atomic() {
    // No faults at all: both engines' full histories still satisfy the
    // checker (sound baseline for the matrix above).
    let mut p: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(3));
    assert!(p.run(HORIZON));
    assert!(check_txn_atomicity(&p.history()).is_empty());

    let mut r: Store<RaftCluster> = Store::new(StoreConfig::small(3));
    assert!(r.run(HORIZON));
    assert!(check_txn_atomicity(&r.history()).is_empty());
}
