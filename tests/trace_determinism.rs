//! Exported-trace determinism and schema validity.
//!
//! The causal trace is part of the reproducible artifact chain: the same
//! seed must export byte-identical Chrome `trace_event` JSON (and folded
//! flamegraph stacks), and that JSON must actually parse as the schema
//! Perfetto / `chrome://tracing` expect — complete events (`ph:"X"`) with
//! µs timestamps, `pid` = tracer site, `tid` = node, and the causal ids
//! in `args`.

use forty::paxos::MultiPaxosCluster;
use forty::simnet::causal::{chrome_trace, folded_stacks};
use forty::simnet::Time;
use forty::store::{Store, StoreConfig};

const SEED: u64 = 41;
const HORIZON_US: u64 = 30_000_000;

/// One traced store run (3 shards × 3 Multi-Paxos replicas, the default
/// small workload), returning the Chrome trace and the folded stacks.
fn traced_run() -> (String, String) {
    let mut s: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(SEED));
    s.enable_tracing();
    assert!(s.run(Time(HORIZON_US)), "store did not quiesce");
    let spans = s.causal_spans();
    assert!(!spans.is_empty(), "traced run recorded no spans");
    (chrome_trace(&spans), folded_stacks(&spans))
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let (chrome_a, folded_a) = traced_run();
    let (chrome_b, folded_b) = traced_run();
    assert_eq!(chrome_a, chrome_b, "Chrome trace export is nondeterministic");
    assert_eq!(folded_a, folded_b, "folded-stack export is nondeterministic");
}

#[test]
fn chrome_trace_export_matches_the_trace_event_schema() {
    let (chrome, folded) = traced_run();
    let doc = serde_json::from_str(&chrome).expect("export is not valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array missing");
    assert!(!events.is_empty(), "no events exported");
    for e in events {
        assert!(
            e.get("name").and_then(|v| v.as_str()).is_some(),
            "event without a name"
        );
        assert!(
            e.get("cat").and_then(|v| v.as_str()).is_some(),
            "event without a category"
        );
        assert_eq!(
            e.get("ph").and_then(|v| v.as_str()),
            Some("X"),
            "causal spans export as complete events"
        );
        for field in ["ts", "dur", "pid", "tid"] {
            assert!(
                e.get(field).and_then(|v| v.as_u64()).is_some(),
                "event missing numeric {field}"
            );
        }
        let args = e.get("args").expect("event without args");
        for field in ["trace", "span", "parent"] {
            assert!(
                args.get(field).and_then(|v| v.as_u64()).is_some(),
                "args missing numeric {field}"
            );
        }
    }

    // Folded stacks: every line is `frame(;frame)* self_µs`.
    for line in folded.lines() {
        let (stack, micros) = line.rsplit_once(' ').expect("malformed folded line");
        assert!(!stack.is_empty(), "empty stack in folded line");
        assert!(
            micros.parse::<u64>().is_ok(),
            "non-numeric self time in {line:?}"
        );
    }
}
