//! Batched-vs-unbatched equivalence, cross-protocol, through the uniform
//! [`ClusterDriver`] surface: for every SMR protocol, any batching
//! configuration must decide exactly the same per-client command sequence
//! as the unbatched baseline — batching may only change *how commands are
//! packed into slots*, never what is agreed or in what per-client order —
//! and every run must satisfy the full nemesis SMR safety battery.

use std::collections::BTreeMap;

use forty::bft::pbft::PbftCluster;
use forty::consensus_core::driver::{BatchConfig, ClusterDriver, DriverConfig};
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use nemesis::smr_safety;

const SEED: u64 = 7;
const N_CLIENTS: usize = 3;
/// 3 × 5 = 15 total commands: one below PBFT's checkpoint interval (16
/// slots), so no replica garbage-collects any unbatched slot before harvest.
const CMDS: usize = 5;

/// The knob settings under test, from "degenerate" corners (batch of 1
/// with a delay; window of 1, i.e. no pipelining) to realistic ones.
fn knobs() -> Vec<BatchConfig> {
    vec![
        BatchConfig::new(1, 200, usize::MAX),
        BatchConfig::new(4, 0, 2),
        BatchConfig::new(4, 300, 1),
        BatchConfig::new(8, 500, 8),
    ]
}

/// Runs one configuration to completion and returns each client's command
/// sequence (by client-assigned sequence number, the batching-independent
/// identity — Raft's op strings bake in terms, which may legally differ
/// between runs) as decided on node 0, after checking full SMR safety.
fn decided_per_client<D: ClusterDriver>(batch: BatchConfig) -> BTreeMap<u32, Vec<u64>> {
    let cfg = DriverConfig::new(4, N_CLIENTS, CMDS, SEED).with_batch(batch);
    let mut d = D::from_config(&cfg);
    assert!(
        d.run(forty::simnet::Time::from_secs(60)),
        "{} stalled under {}",
        d.protocol(),
        batch.label()
    );

    let entries = d.decided_log();
    let digests = d.state_digests();
    let history = d.history();
    let issued = d.issued();
    let violations = smr_safety(&entries, &digests, &history, Some(&issued));
    assert!(
        violations.is_empty(),
        "{} violated safety under {}: {violations:?}",
        d.protocol(),
        batch.label()
    );

    let mut per_client: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for e in entries.iter().filter(|e| e.node == 0) {
        if let Some((client, seq)) = e.origin {
            per_client.entry(client).or_default().push(seq);
        }
    }
    per_client
}

fn assert_equivalent<D: ClusterDriver>() {
    let baseline = decided_per_client::<D>(BatchConfig::unbatched());
    assert_eq!(baseline.len(), N_CLIENTS, "baseline missing clients");
    for (client, ops) in &baseline {
        assert_eq!(ops.len(), CMDS, "client {client} short in baseline");
    }
    for batch in knobs() {
        let batched = decided_per_client::<D>(batch);
        assert_eq!(
            baseline,
            batched,
            "per-client decided sequences differ under {}",
            batch.label()
        );
    }
}

#[test]
fn multi_paxos_batched_equals_unbatched() {
    assert_equivalent::<MultiPaxosCluster>();
}

#[test]
fn raft_batched_equals_unbatched() {
    assert_equivalent::<RaftCluster>();
}

#[test]
fn pbft_batched_equals_unbatched() {
    assert_equivalent::<PbftCluster>();
}

/// The same equivalence one layer up: per transaction, the sharded store's
/// outcome (commit/abort, span) must be identical under every batching
/// knob, and every run must pass the atomicity checker — batching may
/// repack the per-shard logs and reorder *concurrent* commits in time, but
/// it must not change what 2PC decides for any transaction.
fn store_equivalent<E: forty::store::ShardEngine>() {
    use forty::store::{Store, StoreConfig};
    use nemesis::checker::check_txn_atomicity;

    let run = |batch: BatchConfig| {
        let mut s: Store<E> = Store::new(StoreConfig::small(SEED).batch(batch));
        assert!(
            s.run(forty::simnet::Time(20_000_000)),
            "store stalled under {}",
            batch.label()
        );
        let violations = check_txn_atomicity(&s.history());
        assert!(violations.is_empty(), "{}: {violations:?}", batch.label());
        // Keyed by txn id: completion order across routers is timing and
        // thus legitimately batching-dependent; the decisions are not.
        s.outcomes()
            .iter()
            .map(|o| (o.tid, (o.decision, o.span)))
            .collect::<BTreeMap<_, _>>()
    };

    let baseline = run(BatchConfig::unbatched());
    assert!(!baseline.is_empty(), "baseline decided no transactions");
    for batch in knobs() {
        assert_eq!(
            baseline,
            run(batch),
            "store outcomes differ under {}",
            batch.label()
        );
    }
}

#[test]
fn paxos_store_batched_equals_unbatched() {
    store_equivalent::<MultiPaxosCluster>();
}

#[test]
fn raft_store_batched_equals_unbatched() {
    store_equivalent::<RaftCluster>();
}
