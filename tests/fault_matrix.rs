//! Fault-injection matrix across the zoo: each protocol against the fault
//! classes its card claims to tolerate — and against ones it doesn't.
//!
//! Safety assertions go through the nemesis checker API: the same harvests
//! (decided entries, state digests, client histories, transaction states)
//! and the same checks (agreement, validity, integrity, state-machine
//! consistency, linearizability, atomic commit) the randomized sweeps use,
//! here applied to hand-crafted worst-case schedules.

use forty::agreement::flp::{run_voting, Scheduler};
use forty::atomic_commit::three_phase::{self, CrashPoint};
use forty::atomic_commit::two_phase;
use forty::atomic_commit::TxnState;
use forty::bft::pbft::PbftCluster;
use forty::bft::xft::is_anarchy;
use forty::consensus_core::QuorumSpec;
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::{DropAll, NetConfig, NodeId, Time};
use nemesis::checker::check_atomic_commit;
use nemesis::{
    client_evidence, execute_plan, harvest_paxos, harvest_pbft, harvest_raft, smr_safety,
    FaultAction, FaultPlan,
};

#[test]
fn paxos_survives_f_crashes_but_not_f_plus_one() {
    let mut ok = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 5 },
        5,
        1,
        10,
        NetConfig::lan(),
        1,
    );
    // The crash schedule is a nemesis plan rather than raw sim calls — the
    // same vocabulary the randomized sweeps draw from.
    let plan = FaultPlan {
        actions: vec![
            FaultAction::Crash { node: 3, at: 0 },
            FaultAction::Crash { node: 4, at: 0 },
        ],
    };
    execute_plan(&mut ok.sim, &plan, 1_000, 0.0, |_, _| None);
    assert!(ok.run(Time::from_secs(30)), "f = 2 of 5 must be fine");
    let (entries, digests) = harvest_paxos(&ok);
    let (history, issued) = client_evidence(ok.clients().map(|c| &c.history));
    assert_eq!(smr_safety(&entries, &digests, &history, Some(&issued)), []);

    let mut dead = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 5 },
        5,
        1,
        10,
        NetConfig::lan(),
        2,
    );
    for id in [2u32, 3, 4] {
        dead.sim.crash_at(NodeId(id), Time::ZERO);
    }
    assert!(!dead.run(Time::from_millis(500)), "f+1 crashes must stall");
    assert_eq!(dead.total_completed(), 0, "but never decide wrongly");
    let (entries, digests) = harvest_paxos(&dead);
    let (history, issued) = client_evidence(dead.clients().map(|c| &c.history));
    assert_eq!(smr_safety(&entries, &digests, &history, Some(&issued)), []);
}

#[test]
fn raft_recovers_from_cascading_leader_crashes() {
    let mut c = RaftCluster::new(5, 1, 15, NetConfig::lan(), 3);
    // Kill each elected leader in sequence (two leaders may die; 2 = f).
    c.sim.run_until(Time::from_millis(100));
    if let Some(l1) = c.leader() {
        let at = c.sim.now() + 1;
        c.sim.crash_at(l1, at);
    }
    c.sim.run_until(Time::from_millis(500));
    if let Some(l2) = c.leader() {
        let at = c.sim.now() + 1;
        c.sim.crash_at(l2, at);
    }
    assert!(c.run(Time::from_secs(60)), "completed {}", c.total_completed());
    let (entries, digests) = harvest_raft(&c);
    let (history, issued) = client_evidence(c.clients().map(|cl| &cl.history));
    assert_eq!(smr_safety(&entries, &digests, &history, Some(&issued)), []);
}

#[test]
fn pbft_tolerates_a_fully_silent_byzantine_replica() {
    let mut c = PbftCluster::new(4, 1, 10, NetConfig::lan(), 4);
    c.sim.set_filter(NodeId(2), Box::new(DropAll));
    assert!(c.run(Time::from_secs(30)));
    let (entries, digests) = harvest_pbft(&c);
    let (history, _) = client_evidence(c.clients().map(|cl| &cl.history));
    // `issued: None` — no validity check, the sim crypto has no client
    // signatures (see `nemesis::smr_safety`).
    assert_eq!(smr_safety(&entries, &digests, &history, None), []);
}

#[test]
fn pbft_stalls_beyond_its_byzantine_bound() {
    // Two silent replicas out of four exceeds f = 1: quorums of 2f+1 = 3
    // can no longer form. Safety holds (nothing commits), liveness is lost.
    let mut c = PbftCluster::new(4, 1, 5, NetConfig::lan(), 5);
    c.sim.set_filter(NodeId(2), Box::new(DropAll));
    c.sim.set_filter(NodeId(3), Box::new(DropAll));
    assert!(!c.run(Time::from_secs(2)));
    assert_eq!(c.total_completed(), 0);
    let (entries, digests) = harvest_pbft(&c);
    let (history, _) = client_evidence(c.clients().map(|cl| &cl.history));
    assert_eq!(smr_safety(&entries, &digests, &history, None), []);
}

#[test]
fn two_pc_blocks_where_three_pc_terminates() {
    // Same fault (coordinator dies after unanimous yes votes), two
    // protocols, opposite outcomes — the tutorial's core commitment story.
    let votes = [true, true, true];
    let mut blocked = two_phase::build_with_crash(
        &votes,
        two_phase::CrashPoint::AfterVotes,
        NetConfig::lan(),
        6,
    );
    blocked.run_until(Time::from_secs(2));
    assert!(two_phase::participant_states(&blocked)
        .iter()
        .all(|s| *s == TxnState::Ready));
    let states: Vec<(u32, TxnState)> = blocked
        .nodes()
        .map(|(id, p)| {
            let s = match p {
                two_phase::TwoPcProc::Coordinator(c) => c.state,
                two_phase::TwoPcProc::Participant(p) => p.state,
            };
            (id.0, s)
        })
        .collect();
    assert_eq!(check_atomic_commit(&votes, &states), []);

    let mut free = three_phase::build(&votes, CrashPoint::AfterVotes, NetConfig::lan(), 6);
    free.run_until(Time::from_secs(3));
    assert!(three_phase::participant_states(&free)
        .iter()
        .all(|s| s.is_final()));
    let states: Vec<(u32, TxnState)> = free
        .nodes()
        .map(|(id, p)| {
            let s = match p {
                three_phase::ThreePcProc::Coordinator(c) => c.state,
                three_phase::ThreePcProc::Participant(p) => p.state,
            };
            (id.0, s)
        })
        .collect();
    assert_eq!(check_atomic_commit(&votes, &states), []);
}

#[test]
fn partitions_respect_quorum_boundaries() {
    // Majority side keeps committing; minority side stalls; heal unifies.
    // The partition is expressed as a nemesis plan: group {0, 1} against
    // everyone else (replicas 2–4 and the client), healed at 800ms.
    let mut c = RaftCluster::new(5, 1, 20, NetConfig::lan(), 7);
    let plan = FaultPlan {
        actions: vec![
            FaultAction::Partition {
                at: 51_000,
                group: vec![0, 1],
            },
            FaultAction::Heal { at: 800_000 },
        ],
    };
    execute_plan(&mut c.sim, &plan, 900_000, 0.0, |_, _| None);
    assert!(c.run(Time::from_secs(60)));
    let (entries, digests) = harvest_raft(&c);
    let (history, issued) = client_evidence(c.clients().map(|cl| &cl.history));
    assert_eq!(smr_safety(&entries, &digests, &history, Some(&issued)), []);
}

#[test]
fn flp_adversary_beats_determinism_at_any_horizon() {
    for horizon in [100usize, 2_000] {
        assert!(!run_voting(6, Scheduler::Adversarial, horizon).decided);
    }
    assert!(run_voting(6, Scheduler::Fair, 100).decided);
}

#[test]
fn xft_anarchy_boundary_is_sharp() {
    let n = 5; // threshold ⌊(n−1)/2⌋ = 2
    // Walk the fault lattice; anarchy iff malice present and total > 2.
    for c in 0..=3usize {
        for m in 0..=3usize {
            for p in 0..=3usize {
                let expected = m > 0 && c + m + p > 2;
                assert_eq!(is_anarchy(c, m, p, n), expected, "c={c} m={m} p={p}");
            }
        }
    }
}
