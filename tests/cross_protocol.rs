//! Cross-protocol integration: the same workload shape on every SMR
//! protocol in the zoo, under identical network conditions — the data
//! behind experiment T5's "who wins, by roughly what factor".

use forty::bft::hotstuff::{HsCluster, HsConfig};
use forty::bft::minbft::MinCluster;
use forty::bft::pbft::PbftCluster;
use forty::bft::zyzzyva::ZyzCluster;
use forty::consensus_core::QuorumSpec;
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::{NetConfig, Time};

const CMDS: usize = 20;
const SEED: u64 = 99;

struct Measured {
    name: &'static str,
    messages_per_cmd: f64,
    mean_latency: f64,
}

fn measure_all() -> Vec<Measured> {
    let mut out = Vec::new();

    let mut mp = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 3 },
        3,
        1,
        CMDS,
        NetConfig::lan(),
        SEED,
    );
    assert!(mp.run(Time::from_secs(30)), "multi-paxos");
    mp.check_log_consistency();
    out.push(Measured {
        name: "multi-paxos",
        messages_per_cmd: mp.sim.metrics().sent as f64 / CMDS as f64,
        mean_latency: mp.latencies().mean(),
    });

    let mut rf = RaftCluster::new(3, 1, CMDS, NetConfig::lan(), SEED);
    assert!(rf.run(Time::from_secs(30)), "raft");
    rf.check_log_matching();
    out.push(Measured {
        name: "raft",
        messages_per_cmd: rf.sim.metrics().sent as f64 / CMDS as f64,
        mean_latency: rf.latencies().mean(),
    });

    let mut pb = PbftCluster::new(4, 1, CMDS, NetConfig::lan(), SEED);
    assert!(pb.run(Time::from_secs(30)), "pbft");
    pb.check_state_agreement();
    out.push(Measured {
        name: "pbft",
        messages_per_cmd: pb.sim.metrics().sent as f64 / CMDS as f64,
        mean_latency: pb.latencies().mean(),
    });

    let mut hs = HsCluster::new(HsConfig::rotating(4), CMDS, 1, NetConfig::lan(), SEED);
    assert!(hs.run(Time::from_secs(30)), "hotstuff");
    out.push(Measured {
        name: "hotstuff",
        messages_per_cmd: hs.sim.metrics().sent as f64 / CMDS as f64,
        mean_latency: hs.client().latencies.mean(),
    });

    let mut zy = ZyzCluster::new(4, CMDS, NetConfig::lan(), SEED);
    assert!(zy.run(Time::from_secs(30)), "zyzzyva");
    out.push(Measured {
        name: "zyzzyva",
        messages_per_cmd: zy.sim.metrics().sent as f64 / CMDS as f64,
        mean_latency: zy.client().latencies.mean(),
    });

    let mut mb = MinCluster::new(3, CMDS, NetConfig::lan(), SEED);
    assert!(mb.run(Time::from_secs(30)), "minbft");
    out.push(Measured {
        name: "minbft",
        messages_per_cmd: mb.sim.metrics().sent as f64 / CMDS as f64,
        mean_latency: mb.client().latencies.mean(),
    });

    out
}

fn get<'a>(rows: &'a [Measured], name: &str) -> &'a Measured {
    rows.iter().find(|r| r.name == name).expect("row")
}

#[test]
fn every_protocol_completes_the_common_workload() {
    let rows = measure_all();
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!(r.messages_per_cmd > 0.0, "{}", r.name);
        assert!(r.mean_latency > 0.0, "{}", r.name);
    }
}

#[test]
fn pbft_costs_more_messages_than_every_leader_centric_protocol() {
    let rows = measure_all();
    let pbft = get(&rows, "pbft").messages_per_cmd;
    for name in ["multi-paxos", "raft", "zyzzyva", "minbft"] {
        let other = get(&rows, name).messages_per_cmd;
        assert!(
            pbft > other,
            "PBFT ({pbft:.1}) should exceed {name} ({other:.1})"
        );
    }
}

#[test]
fn zyzzyva_fault_free_latency_beats_pbft() {
    // Speculation: 3 one-way delays vs PBFT's 5.
    let rows = measure_all();
    let zyz = get(&rows, "zyzzyva").mean_latency;
    let pbft = get(&rows, "pbft").mean_latency;
    assert!(
        zyz < pbft,
        "Zyzzyva ({zyz:.0}µs) should beat PBFT ({pbft:.0}µs) fault-free"
    );
}

#[test]
fn crash_tolerant_protocols_use_fewer_messages_than_bft() {
    let rows = measure_all();
    let paxos = get(&rows, "multi-paxos").messages_per_cmd;
    let pbft = get(&rows, "pbft").messages_per_cmd;
    assert!(
        pbft > 1.5 * paxos,
        "BFT overhead expected: pbft {pbft:.1} vs paxos {paxos:.1}"
    );
}

#[test]
fn minbft_with_trusted_component_runs_fewer_replicas_and_messages_than_pbft() {
    let rows = measure_all();
    let minbft = get(&rows, "minbft").messages_per_cmd;
    let pbft = get(&rows, "pbft").messages_per_cmd;
    // Same f = 1, but 3 replicas instead of 4 and 2 linear phases
    // instead of 3 (one quadratic).
    assert!(
        minbft < pbft,
        "minbft {minbft:.1} should undercut pbft {pbft:.1}"
    );
}
