//! Randomized fault-schedule sweeps: for many seeds, derive a random (but
//! deterministic) crash/restart schedule within each protocol's fault
//! budget, run the workload, and check the safety invariants. This is the
//! closest thing to model-checking the zoo affords — every failure is
//! reproducible from its seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use forty::bft::pbft::PbftCluster;
use forty::consensus_core::QuorumSpec;
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::{NetConfig, NodeId, Time};

const SEEDS: u64 = 8;
const CMDS: usize = 12;

/// A deterministic fault plan drawn from `seed`: one replica crashes at a
/// random time in the first 200 ms and restarts (or not) later.
struct Plan {
    victim: u32,
    crash_at: u64,
    restart_at: Option<u64>,
}

fn plan(seed: u64, n_replicas: u32) -> Plan {
    let mut rng = ChaCha20Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    Plan {
        victim: rng.gen_range(0..n_replicas),
        crash_at: rng.gen_range(1_000..200_000),
        restart_at: if rng.gen_bool(0.5) {
            Some(rng.gen_range(250_000..500_000))
        } else {
            None
        },
    }
}

#[test]
fn multipaxos_sweep_single_crash_schedules() {
    for seed in 0..SEEDS {
        let p = plan(seed, 5);
        let mut c = MultiPaxosCluster::new(
            QuorumSpec::Majority { n: 5 },
            5,
            2,
            CMDS,
            NetConfig::lan(),
            seed,
        );
        c.sim.crash_at(NodeId(p.victim), Time(p.crash_at));
        if let Some(r) = p.restart_at {
            c.sim.restart_at(NodeId(p.victim), Time(r));
        }
        let done = c.run(Time::from_secs(120));
        assert!(
            done,
            "seed {seed}: plan crash n{} at {}µs restart {:?} — only {} completed",
            p.victim,
            p.crash_at,
            p.restart_at,
            c.total_completed()
        );
        // Safety: logs agree on the common applied prefix (panics inside
        // on violation).
        c.check_log_consistency();
    }
}

#[test]
fn raft_sweep_single_crash_schedules() {
    for seed in 0..SEEDS {
        let p = plan(seed.wrapping_add(100), 5);
        let mut c = RaftCluster::new(5, 2, CMDS, NetConfig::lan(), seed);
        c.sim.crash_at(NodeId(p.victim), Time(p.crash_at));
        if let Some(r) = p.restart_at {
            c.sim.restart_at(NodeId(p.victim), Time(r));
        }
        let done = c.run(Time::from_secs(120));
        assert!(
            done,
            "seed {seed}: crash n{} at {}µs restart {:?} — only {} completed",
            p.victim,
            p.crash_at,
            p.restart_at,
            c.total_completed()
        );
        c.check_log_matching();
    }
}

#[test]
fn raft_sweep_double_crash_with_restart_keeps_safety() {
    // Two crashes (= f for n=5) with staggered restarts: liveness may come
    // and go, but Log Matching must hold at every end state.
    for seed in 0..SEEDS {
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let v1 = rng.gen_range(0..5u32);
        let v2 = (v1 + 1 + rng.gen_range(0..4u32)) % 5;
        let mut c = RaftCluster::new(5, 1, CMDS, NetConfig::lan(), seed + 500);
        c.sim.crash_at(NodeId(v1), Time(rng.gen_range(1_000..100_000)));
        c.sim.crash_at(NodeId(v2), Time(rng.gen_range(100_000..200_000)));
        c.sim
            .restart_at(NodeId(v1), Time(rng.gen_range(300_000..400_000)));
        let done = c.run(Time::from_secs(120));
        assert!(done, "seed {seed}: v1=n{v1} v2=n{v2}");
        c.check_log_matching();
    }
}

#[test]
fn pbft_sweep_backup_crash_schedules() {
    for seed in 0..SEEDS {
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 0xBF7);
        // Crash any replica (primary included) at a random instant.
        let victim = rng.gen_range(0..4u32);
        let at = rng.gen_range(1_000..150_000u64);
        let mut c = PbftCluster::new(4, 1, CMDS, NetConfig::lan(), seed);
        c.sim.crash_at(NodeId(victim), Time(at));
        let done = c.run(Time::from_secs(120));
        assert!(
            done,
            "seed {seed}: crash n{victim} at {at}µs — only {} completed",
            c.total_completed()
        );
        c.check_state_agreement();
    }
}

#[test]
fn lossy_network_sweep() {
    // 3% message loss on top of a follower crash: retries must win.
    for seed in 0..4 {
        let mut c = RaftCluster::new(
            3,
            1,
            8,
            NetConfig::lan().with_drop_prob(0.03),
            seed,
        );
        c.sim.crash_at(NodeId(2), Time(50_000));
        assert!(c.run(Time::from_secs(180)), "seed {seed}");
        c.check_log_matching();
    }
}
