//! Permissionless consensus end-to-end: mine a real (reduced-difficulty)
//! proof-of-work chain, race miners over a gossip network, watch forks
//! form and resolve, then contrast with proof of stake and a permissioned
//! BFT chain.
//!
//! ```sh
//! cargo run --example blockchain_sim
//! ```

use forty::blockchain::network::run_mining_network;
use forty::blockchain::permissioned::run_permissioned;
use forty::blockchain::pos::{run_pos, PosMode};
use forty::blockchain::pow::{expected_hashes, mine_block, MiningParams};
use forty::blockchain::{Blockchain, Transaction};
use forty::simnet::{DelayModel, NetConfig, NodeId, Time};

fn main() {
    // ---- 1. Mine a real chain, single miner -------------------------
    let params = MiningParams::trivial();
    let mut chain = Blockchain::new(params);
    let mut total_hashes = 0u64;
    for height in 1..=10u64 {
        let txs = vec![Transaction::transfer(height, 1, 2, height * 10, 1)];
        let mined = mine_block(
            &params,
            chain.tip(),
            height,
            /*miner*/ 0,
            txs,
            chain.next_bits(),
            (height * 600) as u32,
        );
        total_hashes += mined.hashes_tried;
        chain.add_block(mined.block);
    }
    println!("── Solo mining ────────────────────────────────────────");
    println!(
        "mined {} blocks with {} total hashes (expected ≈ {:.0}/block)",
        chain.height(),
        total_hashes,
        expected_hashes(params.initial_bits)
    );
    println!("chain integrity: {}", chain.verify_integrity());
    println!("miner balance  : {} (rewards halve every {} blocks)", chain.balance(0), params.halving_interval);

    // ---- 2. A mining network: forks vs propagation delay ------------
    println!();
    println!("── Mining race: fork rate vs propagation delay ───────");
    for delay_us in [100u64, 5_000, 15_000] {
        let report = run_mining_network(
            &[0.25, 0.25, 0.25, 0.25],
            30_000, // 30ms mean block interval
            NetConfig::synchronous().with_delay(DelayModel::Fixed(delay_us)),
            5_000_000,
            42,
        );
        println!(
            "propagation {:>6}µs → {} blocks mined, height {}, fork rate {:.1}%, {} txs aborted",
            delay_us,
            report.total_mined,
            report.best_height,
            report.fork_rate() * 100.0,
            report.txs_aborted
        );
    }

    // ---- 3. Centralization: blocks won track hashrate ---------------
    println!();
    println!("── Mining centralization (the 81% pool) ──────────────");
    let shares = [0.81, 0.10, 0.05, 0.04];
    let report = run_mining_network(
        &shares,
        20_000,
        NetConfig::synchronous().with_delay(DelayModel::Fixed(500)),
        8_000_000,
        7,
    );
    let total: u64 = report.chain_blocks_per_miner.iter().sum();
    for (i, (&share, &won)) in shares
        .iter()
        .zip(report.chain_blocks_per_miner.iter())
        .enumerate()
    {
        println!(
            "pool {i}: hashrate {:>4.0}% → {:>5.1}% of chain blocks",
            share * 100.0,
            won as f64 * 100.0 / total.max(1) as f64
        );
    }

    // ---- 4. Proof of stake -------------------------------------------
    println!();
    println!("── Proof of stake ────────────────────────────────────");
    let stakes = [500u64, 300, 200];
    let r = run_pos(&stakes, 10_000, PosMode::Randomized, 0, false, 9);
    let blocks: u64 = r.blocks.iter().sum();
    for (i, (&stake, &b)) in stakes.iter().zip(r.blocks.iter()).enumerate() {
        println!(
            "validator {i}: stake {:>4.0}% → minted {:>5.1}% of blocks",
            stake as f64 / 10.0,
            b as f64 * 100.0 / blocks as f64
        );
    }
    let whale = run_pos(&[900, 50, 50], 10_000, PosMode::CoinAge, 0, false, 9);
    let wb: u64 = whale.blocks.iter().sum();
    println!(
        "coin-age vs a 90% whale: whale mints only {:.1}% (age resets on every win)",
        whale.blocks[0] as f64 * 100.0 / wb as f64
    );

    // ---- 5. Permissioned chain ---------------------------------------
    println!();
    println!("── Permissioned (Tendermint-style) chain ─────────────");
    let sim = run_permissioned(4, 10, NetConfig::lan(), 3, Time::from_secs(10));
    let v = sim.node(NodeId(0));
    println!(
        "4 known validators committed {} blocks with {} messages — no mining, quorum votes instead",
        v.chain.height(),
        sim.metrics().sent
    );
}
