//! Hybrid-cloud consensus: SeeMoRe's three modes and the UpRight fault
//! model — `m` malicious public-cloud nodes and `c` crash-prone private
//! nodes on `3m + 2c + 1` machines.
//!
//! ```sh
//! cargo run --example hybrid_cloud
//! ```

use forty::bft::seemore::{Mode, SeeMoReConfig, SmCluster};
use forty::bft::upright::UpRightConfig;
use forty::simnet::{DropAll, NetConfig, NodeId, Time};

fn main() {
    let (m, c) = (1usize, 1usize);
    println!("Hybrid cloud: m = {m} malicious (public), c = {c} crash (private)");
    let u = UpRightConfig::new(m, c);
    println!(
        "fault-model arithmetic: network {}  quorum {}  intersection {}  (execution tier {})",
        u.agreement_nodes(),
        u.quorum(),
        u.intersection(),
        u.execution_nodes()
    );
    println!();
    println!(
        "{:<28} {:>7} {:>7} {:>10} {:>12}",
        "mode", "phases", "quorum", "committed", "messages"
    );

    for (mode, label) in [
        (Mode::One, "1: trusted, centralized"),
        (Mode::Two, "2: trusted, decentralized"),
        (Mode::Three, "3: untrusted, decentralized"),
    ] {
        let cfg = SeeMoReConfig { m, c, mode };
        let mut cluster = SmCluster::new(cfg, 12, NetConfig::lan(), 3);

        // Stress it: crash one private node and mute one public node.
        cluster.sim.crash_at(NodeId(1), Time::ZERO);
        if mode != Mode::Three {
            // (In mode 3 the muted node would sometimes be the primary —
            // the full protocol handles that with a view change, which this
            // engine models only for the primary-in-private modes.)
            cluster.sim.set_filter(NodeId(5), Box::new(DropAll));
        }

        let ok = cluster.run(Time::from_secs(30));
        println!(
            "{:<28} {:>7} {:>7} {:>10} {:>12}{}",
            label,
            cfg.phases(),
            cfg.quorum(),
            cluster.client().completed,
            cluster.sim.metrics().sent,
            if ok { "" } else { "  (incomplete)" }
        );
    }

    println!();
    println!("Mode 1 keeps traffic linear but loads the private cloud;");
    println!("modes 2–3 move coordination to public proxies at O(n²) cost,");
    println!("and an untrusted primary (mode 3) pays one extra validation phase.");
}
