//! The same replicated KV workload on four different consensus modules —
//! Multi-Paxos, Raft, PBFT, and HotStuff — with a leader/primary crash in
//! the middle of each run. Prints a who-costs-what comparison (the shape of
//! experiment T5).
//!
//! ```sh
//! cargo run --example replicated_kv
//! ```

use forty::bft::hotstuff::{HsCluster, HsConfig};
use forty::bft::pbft::PbftCluster;
use forty::consensus_core::QuorumSpec;
use forty::paxos::MultiPaxosCluster;
use forty::raft::RaftCluster;
use forty::simnet::{NetConfig, NodeId, Time};

const CMDS: usize = 30;
const SEED: u64 = 11;

struct Row {
    name: &'static str,
    replicas: usize,
    completed: usize,
    messages: u64,
    mean_latency_ms: f64,
    survived_crash: bool,
}

fn print_row(r: &Row) {
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>14.2} {:>9}",
        r.name,
        r.replicas,
        r.completed,
        r.messages,
        r.mean_latency_ms,
        if r.survived_crash { "yes" } else { "NO" }
    );
}

fn main() {
    println!("Replicated KV under a mid-run leader crash (f = 1 everywhere)");
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>14} {:>9}",
        "protocol", "replicas", "committed", "messages", "mean lat (ms)", "recovered"
    );

    // Multi-Paxos: 2f+1 = 3 replicas.
    {
        let mut c = MultiPaxosCluster::new(
            QuorumSpec::Majority { n: 3 },
            3,
            1,
            CMDS,
            NetConfig::lan(),
            SEED,
        );
        c.sim.run_until(Time::from_millis(20));
        c.sim.crash_at(NodeId(0), Time::from_millis(21));
        let ok = c.run(Time::from_secs(60));
        c.check_log_consistency();
        print_row(&Row {
            name: "Multi-Paxos",
            replicas: 3,
            completed: c.total_completed(),
            messages: c.sim.metrics().sent,
            mean_latency_ms: c.latencies().mean() / 1_000.0,
            survived_crash: ok,
        });
    }

    // Raft: 2f+1 = 3 replicas.
    {
        let mut c = RaftCluster::new(3, 1, CMDS, NetConfig::lan(), SEED);
        c.sim.run_until(Time::from_millis(20));
        c.sim.crash_at(NodeId(0), Time::from_millis(21));
        let ok = c.run(Time::from_secs(60));
        c.check_log_matching();
        print_row(&Row {
            name: "Raft",
            replicas: 3,
            completed: c.total_completed(),
            messages: c.sim.metrics().sent,
            mean_latency_ms: c.latencies().mean() / 1_000.0,
            survived_crash: ok,
        });
    }

    // PBFT: 3f+1 = 4 replicas (tolerates Byzantine faults, pays O(n²)).
    {
        let mut c = PbftCluster::new(4, 1, CMDS, NetConfig::lan(), SEED);
        c.sim.run_until(Time::from_millis(20));
        c.sim.crash_at(NodeId(0), Time::from_millis(21));
        let ok = c.run(Time::from_secs(60));
        c.check_state_agreement();
        print_row(&Row {
            name: "PBFT",
            replicas: 4,
            completed: c.total_completed(),
            messages: c.sim.metrics().sent,
            mean_latency_ms: c.latencies().mean() / 1_000.0,
            survived_crash: ok,
        });
    }

    // HotStuff: 3f+1 = 4 replicas, linear messages. Fixed-leader config
    // here (this engine has no pacemaker, so a crashed rotating leader
    // would stall its round); crash a follower — QCs still form at 2f+1.
    {
        let cfg = HsConfig {
            n_replicas: 4,
            rotate: false,
            pipeline: false,
        };
        let mut c = HsCluster::new(cfg, CMDS, 1, NetConfig::lan(), SEED);
        c.sim.run_until(Time::from_millis(20));
        c.sim.crash_at(NodeId(2), Time::from_millis(21));
        let ok = c.run(Time::from_secs(60));
        print_row(&Row {
            name: "HotStuff",
            replicas: 4,
            completed: c.client().completed,
            messages: c.sim.metrics().sent,
            mean_latency_ms: c.client().latencies.mean() / 1_000.0,
            survived_crash: ok,
        });
    }

    println!();
    println!("Shapes to notice (the tutorial's claims):");
    println!(" • crash-tolerant protocols need 3 replicas; BFT needs 4 (3f+1)");
    println!(" • PBFT's all-to-all phases cost noticeably more messages");
    println!(" • HotStuff stays linear despite tolerating Byzantine faults");
}
