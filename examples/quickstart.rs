//! Quickstart: a replicated key-value store on Multi-Paxos in ~20 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use forty::consensus_core::QuorumSpec;
use forty::paxos::MultiPaxosCluster;
use forty::simnet::{NetConfig, Time};

fn main() {
    // Three replicas (tolerates one crash), one closed-loop client
    // issuing 20 key-value commands, on a simulated datacenter LAN.
    let mut cluster = MultiPaxosCluster::new(
        QuorumSpec::Majority { n: 3 },
        3,
        1,
        20,
        NetConfig::lan(),
        7, // seed: every run of this example is identical
    );

    let done = cluster.run(Time::from_secs(10));
    assert!(done, "the workload should finish well within 10s");

    let consistent_prefix = cluster.check_log_consistency();
    let latencies = cluster.latencies();
    let metrics = cluster.sim.metrics();

    println!("── Multi-Paxos quickstart ─────────────────────────────");
    println!("replicas          : 3 (majority quorums of 2)");
    println!("commands committed: {}", cluster.total_completed());
    println!("consistent prefix : {consistent_prefix} log entries on every replica");
    println!(
        "client latency    : mean {:.1}ms, p99 {:.1}ms",
        latencies.mean() / 1_000.0,
        latencies.percentile(99.0) as f64 / 1_000.0
    );
    println!(
        "network traffic   : {} messages ({})",
        metrics.sent,
        metrics.kinds_summary()
    );
    println!(
        "simulated time    : {:.1}ms",
        cluster.sim.now().as_micros() as f64 / 1_000.0
    );

    // Peek at the replicated state machine on one replica.
    let replica = cluster.replicas().next().expect("replica 0");
    let kv = replica.log.machine().kv();
    println!("keys in the store : {}", kv.len());
}
