//! A guided tour through the tutorial's theory: the C&C framework, Paxos'
//! message flow and livelock, the PSL lower bound, Byzantine generals, and
//! FLP with its randomized escape hatch.
//!
//! ```sh
//! cargo run --example protocol_tour
//! ```

use std::collections::BTreeSet;

use forty::agreement::ben_or::run_ben_or;
use forty::agreement::flp::{run_voting, Scheduler};
use forty::agreement::oral_messages::{om, ConsistentLiar, ParitySplit, ATTACK};
use forty::agreement::interactive_consistency;
use forty::consensus_core::cnc::{CncConfig, CncEngine};
use forty::paxos::livelock::run_duel;
use forty::paxos::{PaxosNode, RetryPolicy};
use forty::simnet::{NetConfig, NodeId, Sim, Time, TraceEvent};

fn main() {
    // ---- 1. Single-decree Paxos, message flow --------------------------
    println!("── 1. Paxos message flow (prepare→ack→accept→accepted→decide)");
    let mut sim: Sim<PaxosNode> = Sim::new(NetConfig::synchronous(), 1);
    for _ in 0..3 {
        sim.add_node(PaxosNode::acceptor(3));
    }
    *sim.node_mut(NodeId(0)) = PaxosNode::proposer(3, 42, 0, RetryPolicy::Never);
    sim.record_trace(true);
    sim.run_until(Time::from_secs(1));
    for entry in sim
        .trace()
        .iter()
        .filter(|t| t.event == TraceEvent::Deliver)
        .take(10)
    {
        println!("   {}", entry.render());
    }
    println!("   decided: {:?} at every node", sim.node(NodeId(1)).decided);

    // ---- 2. The livelock figure ----------------------------------------
    println!();
    println!("── 2. Duelling proposers (the liveness figure)");
    let stuck = run_duel(RetryPolicy::Fixed(0), 100, 1);
    let fixed = run_duel(
        RetryPolicy::Randomized {
            min: 500,
            max: 5_000,
        },
        100,
        1,
    );
    println!(
        "   deterministic retry : {} attempts by each proposer, decided: {:?}",
        stuck.attempts_p1, stuck.decided
    );
    println!(
        "   randomized backoff  : {} + {} attempts, decided: {:?} ✓",
        fixed.attempts_p1, fixed.attempts_p2, fixed.decided
    );

    // ---- 3. The C&C framework ------------------------------------------
    println!();
    println!("── 3. C&C framework: Paxos and 2PC as four-phase instances");
    for (name, cfg, votes) in [
        ("abstract Paxos", CncConfig::abstract_paxos(5), vec![true; 5]),
        ("abstract 2PC  ", CncConfig::abstract_2pc(5), vec![true; 5]),
        (
            "abstract 3PC  ",
            CncConfig::abstract_3pc(5),
            vec![true, true, true, true, false],
        ),
    ] {
        let mut sim: Sim<CncEngine> = Sim::new(NetConfig::lan(), 5);
        for &v in &votes {
            sim.add_node(CncEngine::new(cfg, 42, v));
        }
        sim.run_until(Time::from_secs(2));
        let phases: Vec<&str> = ["elect-req", "discover", "propose", "decide"]
            .into_iter()
            .filter(|k| sim.metrics().kind(k) > 0)
            .collect();
        let decision = sim.nodes().find_map(|(_, n)| n.decided);
        println!("   {name}: phases {phases:?} → {decision:?}");
    }

    // ---- 4. PSL interactive consistency --------------------------------
    println!();
    println!("── 4. Pease–Shostak–Lamport: agreement iff N ≥ 3f+1");
    for n in [3usize, 4] {
        let values: Vec<u64> = (1..=n as u64).collect();
        let faulty: BTreeSet<usize> = [n - 1].into_iter().collect();
        let report = interactive_consistency(&values, &faulty, 1);
        println!(
            "   N = {n}, f = 1: agreement = {}, validity = {} {}",
            report.agreement,
            report.validity,
            if n >= 4 { "✓" } else { "✗ (below the bound)" }
        );
    }

    // ---- 5. Byzantine generals OM(m) ------------------------------------
    println!();
    println!("── 5. OM(m) Byzantine generals");
    let ok = om(4, 1, ATTACK, &[3].into_iter().collect(), &mut ParitySplit);
    let broken = om(3, 1, ATTACK, &[2].into_iter().collect(), &mut ConsistentLiar);
    println!(
        "   n=4, m=1: IC1 {} IC2 {} ({} messages)",
        ok.ic1, ok.ic2, ok.messages
    );
    println!(
        "   n=3, m=1: IC1 {} IC2 {} — three generals cannot handle one traitor",
        broken.ic1, broken.ic2
    );

    // ---- 6. FLP and the randomized escape --------------------------------
    println!();
    println!("── 6. FLP: the adversarial scheduler, and Ben-Or's coin");
    let fair = run_voting(6, Scheduler::Fair, 1_000);
    let adv = run_voting(6, Scheduler::Adversarial, 1_000);
    println!(
        "   deterministic voting: fair scheduler decides in {} rounds; the adversary keeps it undecided after {} rounds",
        fair.rounds, adv.rounds
    );
    let sim = run_ben_or(
        &[0, 1, 0, 1, 0, 1],
        2,
        &[],
        NetConfig::asynchronous(),
        3,
        Time::from_secs(60),
    );
    let decided: Vec<_> = sim.nodes().filter_map(|(_, n)| n.decided).collect();
    let flips: u64 = sim.nodes().map(|(_, n)| n.coin_flips).sum();
    println!(
        "   Ben-Or (randomized), split inputs, async net: everyone decided {:?} after {} coin flips",
        decided[0], flips
    );
}
