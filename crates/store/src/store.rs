//! The sharded store harness: routers, 2PC over consensus, recovery, audit.
//!
//! One [`crate::ShardEngine`] consensus group per shard, all stepped in
//! lockstep quanta of simulated time. Routers live *between* the groups:
//! at every step boundary they poll for replies and inject follow-up
//! commands. A router is the 2PC coordinator *process*, but — following
//! Gray & Lamport's *Consensus on Transaction Commit* — every piece of 2PC
//! state it produces is a replicated log entry in some shard:
//!
//! 1. **Intent** — `~txn.<tid> = "<participant shards>"` on the coordinator
//!    shard (who is involved, for recovery).
//! 2. **Init** — `~dec.<tid> = "pending"` on the coordinator shard.
//! 3. **Prepare** — `~prep.<tid>.s<k> = "<write-set>"` on every participant
//!    shard (the participant's yes vote *and* its redo log).
//! 4. **Decide** — compare-and-swap `~dec.<tid>: pending → commit|abort` on
//!    the coordinator shard. Log order serializes concurrent deciders;
//!    exactly one CAS swaps. *This entry is the commit point.*
//! 5. **Apply** — data writes `key = value@<tid>`, issued only after the
//!    decision entry is observed durable.
//!
//! If the router crashes at *any* point, a recovery actor re-derives the
//! outcome purely from replicated state: it CASes the decision to `abort`
//! (winning iff the decision was still open), and otherwise completes the
//! writes recorded in the prepare entries. Unreplicated 2PC blocks in this
//! exact scenario — `atomic_commit::two_phase` with
//! `CrashPoint::AfterVotes` demonstrates the contrast.
//!
//! The `buggy_early_writes` knob re-creates the classic early-dissemination
//! bug: the coordinator applies the decision — it disseminates the data
//! writes — *before* its decision entry is replicated. A router crash in
//! that window leaves the txn formally undecided, recovery's abort-CAS
//! wins, and the "committed" writes are already visible as orphaned aborted
//! state — the nemesis atomicity checker catches exactly this.

use consensus_core::driver::BatchConfig;
use consensus_core::history::{ClientRecord, HistorySink};
use consensus_core::smr::{Command, KvCommand, KvResponse};
use consensus_core::txn::{self, TxnDecision, TxnId, TxnPhase};
use consensus_core::workload::LatencyRecorder;
use consensus_core::ReadMode;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use simnet::causal::cat;
use simnet::{CausalSpan, DiskModel, NetConfig, Time, TraceCtx, Tracer};

use crate::engine::{ShardEngine, ShardGeo};
use crate::geo::{compute_placement, GeoConfig, ReadOutcome};
use crate::shard_map::ShardMap;

/// Lockstep step size: shards run this many µs between harness polls.
pub const QUANTUM_US: u64 = 500;
/// Retransmit interval for unacknowledged submissions.
pub const RETRY_US: u64 = 25_000;
/// How long a crashed router's transaction stays untouched before the
/// recovery actor claims it.
pub const RECOVERY_DELAY_US: u64 = 40_000;
/// How long a router waits on a silent fast-path geo read before falling
/// back to the ordinary log path. Generous enough to cover a WAN round
/// trip plus a read-index confirmation; a NACK falls back immediately.
pub const GEO_READ_TIMEOUT_US: u64 = 120_000;
/// Client id of router `r` is `ROUTER_BASE + r`.
pub const ROUTER_BASE: u32 = 100;
/// Client id of the recovery actor.
pub const RECOVERY_CLIENT: u32 = 200;
/// Client id of the post-run audit reader.
pub const AUDIT_CLIENT: u32 = 300;

/// The coordinator-shard key registering `tid`'s participant set.
pub fn intent_key(tid: TxnId) -> String {
    format!("~txn.{tid}")
}

fn encode_participants(shards: &[usize]) -> String {
    shards
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(";")
}

fn decode_participants(s: &str) -> Vec<usize> {
    s.split(';').filter_map(|p| p.parse().ok()).collect()
}

/// The commitment protocol a transaction runs over the shard logs. The
/// three backends share the intent/data-write plumbing and differ only in
/// how the commit point is reached — which is exactly the Gray–Lamport
/// spectrum:
///
/// * [`TwoPhase`](CommitBackend::TwoPhase) — raw blocking 2PC: the
///   decision exists only in the coordinator *process* until it writes a
///   plain decision record. A coordinator crash after the votes leaves the
///   transaction **stalled forever** (recovery finds no durable decision
///   and no vote registers to force).
/// * [`TwoPhaseOverConsensus`](CommitBackend::TwoPhaseOverConsensus) — the
///   store's historical protocol: decision entry initialized to `pending`
///   and resolved by a log-serialized CAS; recovery can always close the
///   decision with its abort-CAS.
/// * [`PaxosCommit`](CommitBackend::PaxosCommit) — Gray & Lamport's Paxos
///   Commit mapped onto the shard logs: one *vote register*
///   `~vote.<tid>.s<k>` per participant, each resolved by a CAS
///   `pending → prepared|aborted` that the shard's consensus group
///   serializes (one Paxos instance per vote). Prepared votes carry the
///   shard-local write-set, so *any* coordinator — here the recovery
///   actor — can finish the transaction from the replicated votes alone,
///   committing prepared work instead of aborting it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitBackend {
    /// Raw blocking 2PC (decision record is a plain put; no recovery CAS).
    TwoPhase,
    /// 2PC with the decision as a log-serialized CAS (the default).
    TwoPhaseOverConsensus,
    /// Paxos Commit: per-participant vote registers in the shard logs.
    PaxosCommit,
}

impl CommitBackend {
    /// Stable short tag used in intent records and trace lines.
    pub fn tag(&self) -> &'static str {
        match self {
            CommitBackend::TwoPhase => "2pc",
            CommitBackend::TwoPhaseOverConsensus => "2pcoc",
            CommitBackend::PaxosCommit => "pc",
        }
    }

    /// Parses a [`CommitBackend::tag`] rendering.
    pub fn parse(s: &str) -> Option<CommitBackend> {
        match s {
            "2pc" => Some(CommitBackend::TwoPhase),
            "2pcoc" => Some(CommitBackend::TwoPhaseOverConsensus),
            "pc" => Some(CommitBackend::PaxosCommit),
            _ => None,
        }
    }
}

/// Encodes an intent record: participants, prefixed with the backend tag
/// for non-default backends. The default backend keeps the legacy untagged
/// encoding so historical fingerprints are unchanged.
pub fn encode_intent(backend: CommitBackend, shards: &[usize]) -> String {
    match backend {
        CommitBackend::TwoPhaseOverConsensus => encode_participants(shards),
        other => format!("{}!{}", other.tag(), encode_participants(shards)),
    }
}

/// Decodes an intent record into `(backend, participants)`. Untagged
/// records are the legacy default backend.
pub fn decode_intent(s: &str) -> (CommitBackend, Vec<usize>) {
    match s.split_once('!') {
        Some((tag, rest)) => match CommitBackend::parse(tag) {
            Some(b) => (b, decode_participants(rest)),
            None => (CommitBackend::TwoPhaseOverConsensus, decode_participants(s)),
        },
        None => (CommitBackend::TwoPhaseOverConsensus, decode_participants(s)),
    }
}

/// Store-wide configuration. Serialized (including the shard map) and
/// re-parsed by every router, so all routers provably share one routing
/// view.
///
/// Every builder knob in one place (all start from [`StoreConfig::new`]'s
/// canonical small store and return `self`):
///
/// | Builder | Default | Effect |
/// |---|---|---|
/// | [`shards`](StoreConfig::shards) | 3 | Number of shards = consensus groups. |
/// | [`replicas`](StoreConfig::replicas) | 3 | Replicas per consensus group. |
/// | [`routers`](StoreConfig::routers) | 2 | Router (coordinator) clients. |
/// | [`txns_per_router`](StoreConfig::txns_per_router) | 3 | Cross-shard transactions each router issues. |
/// | [`singles_per_router`](StoreConfig::singles_per_router) | 2 | Single-key ops each router issues. |
/// | [`ranges_per_router`](StoreConfig::ranges_per_router) | 0 | Fan-out range scans each router issues (after txns/singles). |
/// | [`keys_per_shard`](StoreConfig::keys_per_shard) | 4 | Workload key-pool size per shard. |
/// | [`batch`](StoreConfig::batch) | unbatched | Batching/pipelining knob forwarded to every shard group. |
/// | [`net`](StoreConfig::net) | LAN | Network profile of every shard group. |
/// | [`buggy_early_writes`](StoreConfig::buggy_early_writes) | off | Inject the early-dissemination coordinator bug. |
/// | [`durable`](StoreConfig::durable) | off | Durable shard storage: `(snapshot_threshold, disk model)`. |
/// | [`backend`](StoreConfig::backend) | 2PC-over-consensus | Default commitment protocol for generated transactions. |
/// | [`txn_backend`](StoreConfig::txn_backend) | — | Per-transaction backend override `(router, txn_number, backend)`. |
/// | [`geo`](StoreConfig::geo) | off | WAN regions, shard placement, and the fast geo read path. |
///
/// `max_span` (default 3) has no builder: set the field directly. The
/// master `seed` is [`StoreConfig::new`]'s argument.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of shards = consensus groups.
    pub n_shards: usize,
    /// Replicas per consensus group.
    pub replicas_per_shard: usize,
    /// Number of router clients.
    pub n_routers: usize,
    /// Cross-shard transactions each router issues.
    pub txns_per_router: usize,
    /// Single-key operations each router issues.
    pub singles_per_router: usize,
    /// Range scans each router issues (after its txns/singles, so the
    /// default of 0 leaves historical workloads bit-identical).
    pub ranges_per_router: usize,
    /// Maximum shards a generated transaction spans.
    pub max_span: usize,
    /// Data keys per shard in the workload pool.
    pub keys_per_shard: usize,
    /// Batching/pipelining knob forwarded to every shard group.
    pub batch: BatchConfig,
    /// Network profile of every shard group.
    pub net: NetConfig,
    /// Master seed; shard groups and routers derive their own.
    pub seed: u64,
    /// Inject the early-dissemination bug (see module docs).
    pub buggy_early_writes: bool,
    /// Durable shard storage: `(snapshot_threshold, disk model)`. When set,
    /// every shard group that supports it persists its state through a
    /// [`storage::StorageEngine`] — 2PC prepare/decision records become WAL
    /// entries that are durable *before* the acks that release them, and
    /// replica recovery is a real WAL-replay + snapshot-load. `None` keeps
    /// the historical RAM-durability model.
    pub durability: Option<(usize, DiskModel)>,
    /// Commitment protocol generated transactions run (overridable
    /// per-transaction via [`StoreConfig::txn_backend`]).
    pub backend: CommitBackend,
    /// Per-transaction backend overrides `(router, txn_number, backend)`,
    /// applied to the generated workload at build time.
    pub backend_overrides: Vec<(usize, u64, CommitBackend)>,
    /// Geo deployment: WAN topology, shard placement, leases, and the
    /// region-local fast read path. `None` keeps the single-datacenter
    /// store bit-identical to its historical behavior.
    pub geo: Option<GeoConfig>,
}

impl StoreConfig {
    /// The canonical small store — 3 shards × 3 replicas, 2 routers — that
    /// every builder method refines.
    pub fn new(seed: u64) -> Self {
        StoreConfig {
            n_shards: 3,
            replicas_per_shard: 3,
            n_routers: 2,
            txns_per_router: 3,
            singles_per_router: 2,
            ranges_per_router: 0,
            max_span: 3,
            keys_per_shard: 4,
            batch: BatchConfig::unbatched(),
            net: NetConfig::lan(),
            seed,
            buggy_early_writes: false,
            durability: None,
            backend: CommitBackend::TwoPhaseOverConsensus,
            backend_overrides: Vec::new(),
            geo: None,
        }
    }

    /// A small default store (alias of [`StoreConfig::new`], kept for the
    /// historical name).
    pub fn small(seed: u64) -> Self {
        Self::new(seed)
    }

    /// The same store with `n` shards.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.n_shards = n;
        self
    }

    /// The same store with `n` replicas per shard.
    #[must_use]
    pub fn replicas(mut self, n: usize) -> Self {
        self.replicas_per_shard = n;
        self
    }

    /// The same store with `n` routers.
    #[must_use]
    pub fn routers(mut self, n: usize) -> Self {
        self.n_routers = n;
        self
    }

    /// The same store with `n` cross-shard transactions per router.
    #[must_use]
    pub fn txns_per_router(mut self, n: usize) -> Self {
        self.txns_per_router = n;
        self
    }

    /// The same store with `n` single-key operations per router.
    #[must_use]
    pub fn singles_per_router(mut self, n: usize) -> Self {
        self.singles_per_router = n;
        self
    }

    /// The same store with `n` range scans per router (issued after the
    /// router's transactions and singles).
    #[must_use]
    pub fn ranges_per_router(mut self, n: usize) -> Self {
        self.ranges_per_router = n;
        self
    }

    /// The same store with a different workload key-pool size per shard.
    #[must_use]
    pub fn keys_per_shard(mut self, n: usize) -> Self {
        self.keys_per_shard = n;
        self
    }

    /// The same store with a batching/pipelining knob on every shard.
    #[must_use]
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// The same store with a different network profile on every shard.
    #[must_use]
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// The same store with the early-dissemination coordinator bug
    /// injected (see the module docs).
    #[must_use]
    pub fn buggy_early_writes(mut self, on: bool) -> Self {
        self.buggy_early_writes = on;
        self
    }

    /// The same store with durable shard storage enabled.
    #[must_use]
    pub fn durable(mut self, snapshot_threshold: usize, disk: DiskModel) -> Self {
        self.durability = Some((snapshot_threshold, disk));
        self
    }

    /// The same store with a different default commit backend.
    #[must_use]
    pub fn backend(mut self, backend: CommitBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The same store with router `router`'s transaction number
    /// `txn_number` running `backend` instead of the default. Panics at
    /// build time if that transaction does not exist in the generated
    /// workload.
    #[must_use]
    pub fn txn_backend(mut self, router: usize, txn_number: u64, backend: CommitBackend) -> Self {
        self.backend_overrides.push((router, txn_number, backend));
        self
    }

    /// The same store deployed across WAN regions: installs the topology
    /// into every shard group's network, computes and serializes the shard
    /// placement, homes router `r` in region `r mod n_regions`, and appends
    /// each router's fast-path geo reads to its workload.
    #[must_use]
    pub fn geo(mut self, geo: GeoConfig) -> Self {
        self.geo = Some(geo);
        self
    }
}

/// Where a router may be crashed relative to a transaction's lifecycle,
/// mirroring `atomic_commit::three_phase::CrashPoint` one layer up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterCrashPoint {
    /// After the decision entry is initialized, before any prepare.
    BeforePrepare,
    /// After all prepare records are durable, before the decision CAS.
    AfterPrepare,
    /// After the commit decision is durable, before any data write.
    AfterDecide,
    /// Buggy mode only: after the early data writes are applied, before
    /// the decision CAS is even submitted — the maximal-damage window of
    /// the early-dissemination bug.
    AfterEarlyWrites,
}

/// A completed transaction as the issuing router saw it.
#[derive(Clone, Debug)]
pub struct TxnOutcome {
    /// Transaction id.
    pub tid: TxnId,
    /// Final decision.
    pub decision: TxnDecision,
    /// Number of shards the transaction spanned.
    pub span: usize,
    /// Completion time (µs).
    pub at: u64,
    /// Begin-to-outcome latency (µs).
    pub latency_us: u64,
}

/// One generated workload item.
#[derive(Clone, Debug)]
enum WorkItem {
    Single(KvCommand),
    /// A key-interval scan, fanned out across every shard and merged.
    Range {
        start: String,
        end: String,
        limit: usize,
    },
    Txn {
        writes: Vec<(String, String)>,
        abort: bool,
        backend: CommitBackend,
    },
    /// A fast-path linearizable read (geo stores only): tries the lease /
    /// read-index path first, falls back to the log on NACK or silence.
    GeoRead { key: String },
}

/// A completed merged range scan as the issuing router saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeOutcome {
    /// Issuing router's client id.
    pub client: u32,
    /// Scan start key (inclusive).
    pub start: String,
    /// Scan end key (exclusive).
    pub end: String,
    /// Maximum entries requested.
    pub limit: usize,
    /// Merged result: per-shard scans concatenated, sorted by key, and
    /// truncated to `limit` — the deterministic global top-`limit`.
    pub entries: Vec<(String, String)>,
    /// Completion time (µs).
    pub at: u64,
}

/// A range scan's in-flight accumulator: per-shard partial results awaiting
/// the merge.
#[derive(Clone, Debug)]
struct RangeAcc {
    start: String,
    end: String,
    limit: usize,
    entries: Vec<(String, String)>,
}

/// An in-flight geo fast read. One per router at a time (the router is a
/// sequential client); the history invoke opened at issue time is closed by
/// whichever path answers — fast reply or log fallback — never both.
#[derive(Clone, Debug)]
struct FastRead {
    key: String,
    shard: usize,
    seq: u64,
    /// Region of the replica the read was aimed at.
    target_region: Option<usize>,
    issued: u64,
    last_sent: u64,
    /// The fast path NACKed or went silent; the read now rides the log as
    /// an ordinary pending op under the *same* `(client, seq)`.
    fell_back: bool,
    tc: Option<TraceCtx>,
}

/// An outstanding submission awaiting its reply.
#[derive(Clone, Debug)]
struct Pending {
    shard: usize,
    seq: u64,
    op: KvCommand,
    /// Last (re)transmission time — drives the retry clock.
    sent: u64,
    /// First submission time — the op's root-span start.
    issued: u64,
    /// Root trace context, when tracing is on.
    tc: Option<TraceCtx>,
}

/// One completed harness-level operation: which trace to attribute, over
/// what window, routed where. The raw material of the critical-path
/// analyzer.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Issuing harness client id (router / recovery / audit).
    pub client: u32,
    /// Client sequence number.
    pub seq: u64,
    /// Shard the op was routed to.
    pub shard: usize,
    /// Trace id of the op's root span.
    pub trace_id: u64,
    /// First-submission time (µs).
    pub started: u64,
    /// Reply-observed time (µs).
    pub finished: u64,
    /// Short label, e.g. `cas:decision`.
    pub label: String,
}

/// Classifies an op for span/record labels: verb plus the 2PC key class it
/// touches (`intent`/`decision`/`prepare`), if any.
fn op_label(op: &KvCommand) -> String {
    let (verb, key) = match op {
        KvCommand::Put { key, .. } => ("put", key),
        KvCommand::Get { key } => ("get", key),
        KvCommand::Delete { key } => ("del", key),
        KvCommand::Cas { key, .. } => ("cas", key),
        KvCommand::Range { start, .. } => ("range", start),
    };
    let class = if key.starts_with("~txn.") {
        ":intent"
    } else if key.starts_with("~dec.") {
        ":decision"
    } else if key.starts_with("~prep.") {
        ":prepare"
    } else if key.starts_with("~vote.") {
        ":vote"
    } else {
        ""
    };
    format!("{verb}{class}")
}

/// Harness-side causal tracing: the site-0 tracer that mints per-operation
/// root spans, plus the completed-op records. Disabled — and free — unless
/// [`Store::enable_tracing`] ran.
struct StoreTrace {
    tracer: Tracer,
    records: Vec<OpRecord>,
}

impl StoreTrace {
    fn new() -> Self {
        StoreTrace {
            tracer: Tracer::new(),
            records: Vec::new(),
        }
    }

    /// Opens a root span for a submitted op and returns the context the
    /// shard-level spans will chain under.
    fn begin_op(&mut self, client: u32, seq: u64, op: &KvCommand, now: u64) -> Option<TraceCtx> {
        if !self.tracer.is_enabled() {
            return None;
        }
        let name = format!("{} c{client}.{seq}", op_label(op));
        let id = self.tracer.record(0, 0, client, name, cat::OP, now, now);
        self.tracer.retag_root(id);
        Some(TraceCtx {
            trace_id: id,
            parent_span: 0,
            span_id: id,
        })
    }

    /// Closes the op's root span at reply time and records the op window.
    fn finish_op(&mut self, p: &Pending, client: u32, now: u64) {
        if let Some(tc) = p.tc {
            self.tracer.close(tc.span_id, now);
            self.records.push(OpRecord {
                client,
                seq: p.seq,
                shard: p.shard,
                trace_id: tc.trace_id,
                started: p.issued,
                finished: now,
                label: op_label(&p.op),
            });
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Single,
    /// Range scan: per-shard sub-scans in flight, merge pending.
    Range,
    /// Geo fast read in flight (or its log fallback after a NACK/timeout).
    GeoRead,
    Intent,
    Init,
    Prepare,
    /// Paxos Commit: vote registers being initialized to `pending`.
    VoteInit,
    /// Paxos Commit: per-participant vote CASes in flight.
    Vote,
    /// Buggy mode only: data writes in flight *before* the decision CAS.
    EarlyWrite,
    Decide,
    ReadDecision,
    Write,
}

#[derive(Clone, Debug)]
struct ActiveTxn {
    tid: TxnId,
    writes: Vec<(String, String)>,
    coord: usize,
    participants: Vec<usize>,
    backend: CommitBackend,
    intend_abort: bool,
    decided: Option<TxnDecision>,
    /// What the plain decision put (non-CAS backends) will record once
    /// acked.
    planned: Option<TxnDecision>,
    /// Paxos Commit: resolved vote per participant (`true` = prepared).
    votes: Vec<Option<bool>>,
    /// Remaining data writes per participant (parallel to `participants`).
    queues: Vec<Vec<(String, String)>>,
    /// Buggy mode: the data writes already applied before the decision.
    wrote_early: bool,
    started: u64,
}

struct Router {
    idx: usize,
    client: u32,
    map: ShardMap,
    /// Home region (always 0 on non-geo stores).
    region: usize,
    items: Vec<WorkItem>,
    next_item: usize,
    txn_counter: u64,
    seq: u64,
    phase: Phase,
    txn: Option<ActiveTxn>,
    range: Option<RangeAcc>,
    ranges: Vec<RangeOutcome>,
    fast_read: Option<FastRead>,
    geo_reads: Vec<ReadOutcome>,
    pending: Vec<Pending>,
    crashed: Option<u64>,
    crash_at: Option<u64>,
    restart_at: Option<u64>,
    crash_on: Option<(u64, RouterCrashPoint)>,
    history: HistorySink,
    txn_latencies: LatencyRecorder,
    outcomes: Vec<TxnOutcome>,
}

impl Router {
    fn bump(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn done(&self) -> bool {
        self.phase == Phase::Idle && self.next_item >= self.items.len() && self.pending.is_empty()
    }

    fn should_crash(&self, point: RouterCrashPoint) -> bool {
        match (self.crash_on, &self.txn) {
            (Some((num, p)), Some(t)) => p == point && t.tid.number == num,
            _ => false,
        }
    }
}

/// A crashed router's in-flight transaction, queued for recovery.
#[derive(Clone, Debug)]
struct Abandoned {
    tid: TxnId,
    coord: usize,
    at: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecPhase {
    Idle,
    Intent,
    AbortCas,
    GetDecision,
    GetPrepare,
    /// Paxos Commit: free-abort CAS on the current vote register.
    VoteCas,
    /// Paxos Commit: reading a vote register another coordinator resolved.
    VoteGet,
    /// Non-CAS backends: writing the derived decision record.
    PutDecision,
    Write,
}

struct RecTask {
    tid: TxnId,
    coord: usize,
    backend: CommitBackend,
    participants: Vec<usize>,
    writes: Vec<(String, String)>,
    prep_idx: usize,
    /// Paxos Commit: index of the vote register being terminated.
    vote_idx: usize,
    /// Outcome derived from the vote registers (Paxos Commit).
    decision: Option<TxnDecision>,
    write_idx: usize,
}

struct Recovery {
    seq: u64,
    queue: Vec<Abandoned>,
    phase: RecPhase,
    task: Option<RecTask>,
    pending: Vec<Pending>,
    history: HistorySink,
    recovered: Vec<(TxnId, TxnDecision)>,
    /// Raw-2PC transactions recovery had to give up on: the coordinator
    /// died holding the only copy of the open decision. These block
    /// forever — the availability gap the replicated backends close.
    stalled: Vec<TxnId>,
}

struct Audit {
    seq: u64,
    keys: Vec<(usize, String)>,
    idx: usize,
    started: bool,
    pending: Vec<Pending>,
    history: HistorySink,
}

/// The sharded transactional store.
pub struct Store<E: ShardEngine> {
    /// Configuration the store was built from.
    pub cfg: StoreConfig,
    map: ShardMap,
    shards: Vec<E>,
    routers: Vec<Router>,
    recovery: Recovery,
    audit: Audit,
    now: u64,
    trace: Vec<String>,
    causal: StoreTrace,
}

#[allow(clippy::too_many_arguments)]
fn submit<E: ShardEngine>(
    shards: &mut [E],
    tr: &mut StoreTrace,
    history: &mut HistorySink,
    client: u32,
    seq: u64,
    shard: usize,
    op: KvCommand,
    now: u64,
) -> Pending {
    history.invoke(client, seq, op.clone(), now);
    let tc = tr.begin_op(client, seq, &op, now);
    shards[shard].submit_traced(
        Command {
            client,
            seq,
            op: op.clone(),
        },
        tc,
    );
    Pending {
        shard,
        seq,
        op,
        sent: now,
        issued: now,
        tc,
    }
}

/// Polls outstanding ops: completes those with replies, retransmits stale
/// ones. Returns the completed `(op, response)` pairs.
fn poll<E: ShardEngine>(
    shards: &mut [E],
    tr: &mut StoreTrace,
    history: &mut HistorySink,
    client: u32,
    pending: &mut Vec<Pending>,
    now: u64,
) -> Vec<(Pending, KvResponse)> {
    let mut done = Vec::new();
    let mut i = 0;
    while i < pending.len() {
        if let Some(resp) = shards[pending[i].shard].reply_for(client, pending[i].seq) {
            history.complete(client, pending[i].seq, now, resp.clone());
            let p = pending.remove(i);
            tr.finish_op(&p, client, now);
            done.push((p, resp));
        } else {
            let p = &mut pending[i];
            if now.saturating_sub(p.sent) >= RETRY_US {
                // Retransmissions continue the op's original trace.
                shards[p.shard].submit_traced(
                    Command {
                        client,
                        seq: p.seq,
                        op: p.op.clone(),
                    },
                    p.tc,
                );
                p.sent = now;
            }
            i += 1;
        }
    }
    done
}

fn crash_router(r: &mut Router, now: u64, trace: &mut Vec<String>, queue: &mut Vec<Abandoned>) {
    r.crashed = Some(now);
    r.pending.clear();
    r.range = None;
    r.fast_read = None;
    if let Some(t) = r.txn.take() {
        trace.push(format!(
            "t={now} r{} crash mid-txn {} (to recovery)",
            r.idx, t.tid
        ));
        queue.push(Abandoned {
            tid: t.tid,
            coord: t.coord,
            at: now,
        });
    } else {
        trace.push(format!("t={now} r{} crash", r.idx));
    }
    r.phase = Phase::Idle;
}

/// Splits `writes` into per-participant queues of *tagged* values, ordered
/// like `participants`.
fn tagged_queues(
    map: &ShardMap,
    writes: &[(String, String)],
    participants: &[usize],
    tid: TxnId,
) -> Vec<Vec<(String, String)>> {
    participants
        .iter()
        .map(|&s| {
            writes
                .iter()
                .filter(|(k, _)| map.group_of(k) == s)
                .map(|(k, v)| (k.clone(), txn::tag_value(v, tid)))
                .collect()
        })
        .collect()
}

fn start_writes<E: ShardEngine>(r: &mut Router, shards: &mut [E], tr: &mut StoreTrace, now: u64) {
    let t = r.txn.as_mut().expect("writes need an active txn");
    if t.queues.iter().all(|q| q.is_empty()) {
        return;
    }
    // One outstanding op per shard: submit the head of each queue.
    let heads: Vec<(usize, (String, String))> = t
        .queues
        .iter_mut()
        .zip(t.participants.clone())
        .filter_map(|(q, s)| (!q.is_empty()).then(|| (s, q.remove(0))))
        .collect();
    for (s, (key, value)) in heads {
        let seq = r.bump();
        let op = KvCommand::Put { key, value };
        r.pending
            .push(submit(shards, tr, &mut r.history, r.client, seq, s, op, now));
    }
}

fn finish_txn(r: &mut Router, decision: TxnDecision, now: u64, trace: &mut Vec<String>) {
    let t = r.txn.take().expect("finishing without an active txn");
    let latency = now - t.started;
    trace.push(format!(
        "t={now} r{} {} phase={} decision={} span={}",
        r.idx,
        t.tid,
        TxnPhase::Decide.label(),
        decision.as_str(),
        t.participants.len()
    ));
    r.txn_latencies.record_micros(latency);
    r.outcomes.push(TxnOutcome {
        tid: t.tid,
        decision,
        span: t.participants.len(),
        at: now,
        latency_us: latency,
    });
    r.phase = Phase::Idle;
}

/// Submits one prepare record per participant shard: the participant's yes
/// vote *and* its redo log, shared by the consensus-2PC and raw-2PC
/// backends.
fn submit_prepares<E: ShardEngine>(
    r: &mut Router,
    shards: &mut [E],
    tr: &mut StoreTrace,
    now: u64,
    trace: &mut Vec<String>,
) {
    let t = r.txn.as_ref().expect("prepares need an active txn");
    let tid = t.tid;
    let participants = t.participants.clone();
    let prepares: Vec<(usize, String)> = participants
        .iter()
        .map(|&s| {
            let writes: Vec<(String, String)> = t
                .writes
                .iter()
                .filter(|(k, _)| r.map.group_of(k) == s)
                .cloned()
                .collect();
            (s, txn::encode_writes(&writes))
        })
        .collect();
    trace.push(format!(
        "t={now} r{} {tid} phase={} shards={participants:?}",
        r.idx,
        TxnPhase::Prepare.label(),
    ));
    for (s, value) in prepares {
        let seq = r.bump();
        let op = KvCommand::Put {
            key: txn::prepare_key(tid, s),
            value,
        };
        r.pending
            .push(submit(shards, tr, &mut r.history, r.client, seq, s, op, now));
    }
}

fn start_next<E: ShardEngine>(
    r: &mut Router,
    shards: &mut [E],
    tr: &mut StoreTrace,
    now: u64,
    trace: &mut Vec<String>,
) {
    if r.next_item >= r.items.len() {
        return;
    }
    let item = r.items[r.next_item].clone();
    r.next_item += 1;
    match item {
        WorkItem::Single(op) => {
            let key = match &op {
                KvCommand::Put { key, .. }
                | KvCommand::Get { key }
                | KvCommand::Delete { key }
                | KvCommand::Cas { key, .. } => key.clone(),
                // Scans span shards and are their own work item.
                KvCommand::Range { .. } => unreachable!("ranges use WorkItem::Range"),
            };
            let shard = r.map.group_of(&key);
            let seq = r.bump();
            r.pending
                .push(submit(shards, tr, &mut r.history, r.client, seq, shard, op, now));
            r.phase = Phase::Single;
        }
        WorkItem::Range { start, end, limit } => {
            // Hash partitioning scatters any key interval across every
            // shard, so the scan fans out to all of them with the same
            // limit: the global top-`limit` is always contained in the
            // union of the per-shard top-`limit`s.
            trace.push(format!(
                "t={now} r{} range [{start},{end}) limit={limit} fanout={}",
                r.idx,
                shards.len()
            ));
            for shard in 0..shards.len() {
                let seq = r.bump();
                let op = KvCommand::Range {
                    start: start.clone(),
                    end: end.clone(),
                    limit,
                };
                r.pending
                    .push(submit(shards, tr, &mut r.history, r.client, seq, shard, op, now));
            }
            r.range = Some(RangeAcc {
                start,
                end,
                limit,
                entries: Vec::new(),
            });
            r.phase = Phase::Range;
        }
        WorkItem::Txn {
            writes,
            abort,
            backend,
        } => {
            let tid = TxnId::new(r.client, r.txn_counter);
            r.txn_counter += 1;
            let coord = r.map.group_of(&writes[0].0);
            let mut participants: Vec<usize> = writes.iter().map(|(k, _)| r.map.group_of(k)).collect();
            participants.sort_unstable();
            participants.dedup();
            let span = participants.len();
            // The default backend keeps the historical trace line (and
            // therefore historical fingerprints) byte-identical.
            let suffix = if backend == CommitBackend::TwoPhaseOverConsensus {
                String::new()
            } else {
                format!(" backend={}", backend.tag())
            };
            trace.push(format!(
                "t={now} r{} {tid} begin span={span} coord=s{coord}{suffix}",
                r.idx
            ));
            let n_participants = participants.len();
            r.txn = Some(ActiveTxn {
                tid,
                writes,
                coord,
                participants: participants.clone(),
                backend,
                intend_abort: abort,
                decided: None,
                planned: None,
                votes: vec![None; n_participants],
                queues: Vec::new(),
                wrote_early: false,
                started: now,
            });
            let seq = r.bump();
            let op = KvCommand::Put {
                key: intent_key(tid),
                value: encode_intent(backend, &participants),
            };
            r.pending
                .push(submit(shards, tr, &mut r.history, r.client, seq, coord, op, now));
            r.phase = Phase::Intent;
        }
        WorkItem::GeoRead { key } => {
            let shard = r.map.group_of(&key);
            let seq = r.bump();
            let target = shards[shard].read_target(r.region);
            let target_region = shards[shard].replica_region(target);
            let op = KvCommand::Get { key: key.clone() };
            // One history invoke for the whole read: the fast reply or the
            // log fallback completes it, never both.
            r.history.invoke(r.client, seq, op.clone(), now);
            let tc = tr.begin_op(r.client, seq, &op, now);
            shards[shard].submit_read(r.client, seq, &key, target, r.region);
            trace.push(format!(
                "t={now} r{} georead {key} shard=s{shard} target={target} region={}",
                r.idx, r.region
            ));
            r.fast_read = Some(FastRead {
                key,
                shard,
                seq,
                target_region,
                issued: now,
                last_sent: now,
                fell_back: false,
                tc,
            });
            r.phase = Phase::GeoRead;
        }
    }
}

/// Closes out a completed geo read: trace line, outcome record, root span.
#[allow(clippy::too_many_arguments)]
fn finish_geo_read(
    r: &mut Router,
    tr: &mut StoreTrace,
    fr: FastRead,
    mode: ReadMode,
    value: Option<String>,
    local: bool,
    now: u64,
    trace: &mut Vec<String>,
) {
    trace.push(format!(
        "t={now} r{} georead {} -> mode={mode:?} local={local}",
        r.idx, fr.key
    ));
    if mode != ReadMode::Log {
        // The log fallback's root span was already closed by `poll`; the
        // fast path closes it here.
        tr.finish_op(
            &Pending {
                shard: fr.shard,
                seq: fr.seq,
                op: KvCommand::Get {
                    key: fr.key.clone(),
                },
                sent: fr.last_sent,
                issued: fr.issued,
                tc: fr.tc,
            },
            r.client,
            now,
        );
    }
    r.geo_reads.push(ReadOutcome {
        client: r.client,
        key: fr.key,
        shard: fr.shard,
        region: r.region,
        target_region: fr.target_region,
        mode,
        value,
        at: now,
        latency_us: now - fr.issued,
        local,
    });
    r.phase = Phase::Idle;
}

#[allow(clippy::too_many_lines)]
fn step_router<E: ShardEngine>(
    r: &mut Router,
    shards: &mut [E],
    tr: &mut StoreTrace,
    now: u64,
    buggy: bool,
    trace: &mut Vec<String>,
    queue: &mut Vec<Abandoned>,
) {
    if let Some(t) = r.crash_at {
        if now >= t && r.crashed.is_none() {
            r.crash_at = None;
            crash_router(r, now, trace, queue);
        }
    }
    if let Some(t) = r.restart_at {
        if now >= t {
            r.restart_at = None;
            if r.crashed.is_some() {
                // The restarted router does not resume its in-flight
                // transaction — that already belongs to recovery. It picks
                // up the rest of its workload.
                r.crashed = None;
                r.txn = None;
                r.pending.clear();
                r.phase = Phase::Idle;
                trace.push(format!("t={now} r{} restart", r.idx));
            }
        }
    }
    if r.crashed.is_some() {
        return;
    }

    let done = poll(shards, tr, &mut r.history, r.client, &mut r.pending, now);

    match r.phase {
        Phase::Idle => start_next(r, shards, tr, now, trace),
        Phase::Single => {
            if !done.is_empty() {
                r.phase = Phase::Idle;
            }
        }
        Phase::Range => {
            for (_, resp) in &done {
                if let KvResponse::Entries(entries) = resp {
                    let acc = r.range.as_mut().expect("range phase has an accumulator");
                    acc.entries.extend(entries.iter().cloned());
                }
            }
            if r.pending.is_empty() {
                let acc = r.range.take().expect("range phase has an accumulator");
                // Shards own disjoint key sets, so a plain sort is a
                // duplicate-free merge; the global result is its first
                // `limit` keys.
                let mut merged = acc.entries;
                merged.sort();
                merged.truncate(acc.limit);
                trace.push(format!(
                    "t={now} r{} range [{},{}) -> {} entries",
                    r.idx,
                    acc.start,
                    acc.end,
                    merged.len()
                ));
                r.ranges.push(RangeOutcome {
                    client: r.client,
                    start: acc.start,
                    end: acc.end,
                    limit: acc.limit,
                    entries: merged,
                    at: now,
                });
                r.phase = Phase::Idle;
            }
        }
        Phase::GeoRead => {
            let fr = r.fast_read.as_ref().expect("geo-read phase has a read");
            if fr.fell_back {
                // The read rides the log as an ordinary pending op; `poll`
                // already completed the history when the reply landed.
                if let Some((_, resp)) = done.into_iter().find(|(p, _)| p.seq == fr.seq) {
                    let fr = r.fast_read.take().expect("geo-read phase has a read");
                    let value = match resp {
                        KvResponse::Value(v) => v,
                        _ => None,
                    };
                    finish_geo_read(r, tr, fr, ReadMode::Log, value, false, now, trace);
                }
            } else {
                match shards[fr.shard].read_reply(r.client, fr.seq) {
                    Some((value, mode)) if mode != ReadMode::Nack => {
                        let fr = r.fast_read.take().expect("geo-read phase has a read");
                        r.history.complete(
                            r.client,
                            fr.seq,
                            now,
                            KvResponse::Value(value.clone()),
                        );
                        let local = fr.target_region == Some(r.region);
                        finish_geo_read(r, tr, fr, mode, value, local, now, trace);
                    }
                    reply => {
                        let nacked = reply.is_some();
                        let timed_out = now.saturating_sub(fr.issued) >= GEO_READ_TIMEOUT_US;
                        let fr = r.fast_read.as_mut().expect("geo-read phase has a read");
                        if nacked || timed_out {
                            // Fall back to the log under the same
                            // `(client, seq)`: no second history invoke, so
                            // the checker sees one read however it is served.
                            fr.fell_back = true;
                            fr.last_sent = now;
                            let op = KvCommand::Get { key: fr.key.clone() };
                            shards[fr.shard].submit_traced(
                                Command {
                                    client: r.client,
                                    seq: fr.seq,
                                    op: op.clone(),
                                },
                                fr.tc,
                            );
                            r.pending.push(Pending {
                                shard: fr.shard,
                                seq: fr.seq,
                                op,
                                sent: now,
                                issued: fr.issued,
                                tc: fr.tc,
                            });
                        } else if now.saturating_sub(fr.last_sent) >= RETRY_US {
                            // Retransmit, re-resolving the target: leadership
                            // may have moved since the first attempt.
                            fr.last_sent = now;
                            let (key, shard, seq) = (fr.key.clone(), fr.shard, fr.seq);
                            let target = shards[shard].read_target(r.region);
                            fr.target_region = shards[shard].replica_region(target);
                            shards[shard].submit_read(r.client, seq, &key, target, r.region);
                        }
                    }
                }
            }
        }
        Phase::Intent => {
            if !done.is_empty() {
                let t = r.txn.as_ref().expect("intent phase has a txn");
                let (tid, coord, backend) = (t.tid, t.coord, t.backend);
                let participants = t.participants.clone();
                match backend {
                    CommitBackend::TwoPhaseOverConsensus => {
                        let seq = r.bump();
                        let op = KvCommand::Put {
                            key: txn::decision_key(tid),
                            value: txn::DECISION_PENDING.to_string(),
                        };
                        r.pending
                            .push(submit(shards, tr, &mut r.history, r.client, seq, coord, op, now));
                        r.phase = Phase::Init;
                    }
                    CommitBackend::TwoPhase => {
                        // Raw 2PC has no replicated pending-init: the open
                        // decision lives only in this router process.
                        if r.should_crash(RouterCrashPoint::BeforePrepare) {
                            crash_router(r, now, trace, queue);
                            return;
                        }
                        submit_prepares(r, shards, tr, now, trace);
                        r.phase = Phase::Prepare;
                    }
                    CommitBackend::PaxosCommit => {
                        // One vote register per participant, initialized to
                        // `pending` in that participant's own shard log —
                        // one Paxos instance per vote.
                        for &s in &participants {
                            let seq = r.bump();
                            let op = KvCommand::Put {
                                key: txn::vote_key(tid, s),
                                value: txn::VOTE_PENDING.to_string(),
                            };
                            r.pending
                                .push(submit(shards, tr, &mut r.history, r.client, seq, s, op, now));
                        }
                        r.phase = Phase::VoteInit;
                    }
                }
            }
        }
        Phase::Init => {
            if !done.is_empty() {
                if r.should_crash(RouterCrashPoint::BeforePrepare) {
                    crash_router(r, now, trace, queue);
                    return;
                }
                submit_prepares(r, shards, tr, now, trace);
                r.phase = Phase::Prepare;
            }
        }
        Phase::VoteInit => {
            if r.pending.is_empty() {
                if r.should_crash(RouterCrashPoint::BeforePrepare) {
                    crash_router(r, now, trace, queue);
                    return;
                }
                let t = r.txn.as_ref().expect("vote-init phase has a txn");
                let tid = t.tid;
                let participants = t.participants.clone();
                let intend_abort = t.intend_abort;
                trace.push(format!(
                    "t={now} r{} {tid} phase=vote shards={participants:?}",
                    r.idx,
                ));
                // Cast each participant's vote: a CAS the shard log
                // serializes against any recovery free-abort. Prepared
                // votes carry the shard-local write-set (the redo log).
                let votes: Vec<(usize, String)> = participants
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| {
                        let value = if intend_abort && i == 0 {
                            txn::VOTE_ABORTED.to_string()
                        } else {
                            let writes: Vec<(String, String)> = r
                                .txn
                                .as_ref()
                                .expect("vote-init phase has a txn")
                                .writes
                                .iter()
                                .filter(|(k, _)| r.map.group_of(k) == s)
                                .cloned()
                                .collect();
                            txn::vote_prepared(&writes)
                        };
                        (s, value)
                    })
                    .collect();
                for (s, value) in votes {
                    let seq = r.bump();
                    let op = KvCommand::Cas {
                        key: txn::vote_key(tid, s),
                        expect: txn::VOTE_PENDING.to_string(),
                        new: value,
                    };
                    r.pending
                        .push(submit(shards, tr, &mut r.history, r.client, seq, s, op, now));
                }
                r.phase = Phase::Vote;
            }
        }
        Phase::Vote => {
            for (p, resp) in &done {
                let t = r.txn.as_mut().expect("vote phase has a txn");
                let (key, outcome) = match (&p.op, resp) {
                    (KvCommand::Cas { key, new, .. }, KvResponse::CasResult { swapped: true }) => {
                        (key, txn::parse_vote(new).map(|v| v.is_some()))
                    }
                    (KvCommand::Cas { key, .. }, KvResponse::CasResult { swapped: false }) => {
                        // Someone else (recovery's free abort) resolved this
                        // register first; learn the chosen value from the log.
                        (key, None)
                    }
                    (KvCommand::Get { key }, KvResponse::Value(Some(v))) => {
                        (key, txn::parse_vote(v).map(|w| w.is_some()))
                    }
                    _ => continue,
                };
                let Some((_, shard)) = txn::parse_vote_key(key) else {
                    continue;
                };
                let Some(i) = t.participants.iter().position(|&s| s == shard) else {
                    continue;
                };
                match outcome {
                    Some(prepared) => t.votes[i] = Some(prepared),
                    None => {
                        // Register resolved by another coordinator (or still
                        // unparsed): read it.
                        let tid = t.tid;
                        let seq = r.bump();
                        let op = KvCommand::Get {
                            key: txn::vote_key(tid, shard),
                        };
                        r.pending
                            .push(submit(shards, tr, &mut r.history, r.client, seq, shard, op, now));
                    }
                }
            }
            let t = r.txn.as_ref().expect("vote phase has a txn");
            if r.pending.is_empty() && t.votes.iter().all(Option::is_some) {
                if r.should_crash(RouterCrashPoint::AfterPrepare) {
                    crash_router(r, now, trace, queue);
                    return;
                }
                let all_prepared = t.votes.iter().all(|v| *v == Some(true));
                let decision = if all_prepared {
                    TxnDecision::Commit
                } else {
                    TxnDecision::Abort
                };
                let (tid, coord) = (t.tid, t.coord);
                let t = r.txn.as_mut().expect("vote phase has a txn");
                t.planned = Some(decision);
                // The commit point already happened — it is the log-ordered
                // resolution of the vote registers. The decision record is
                // derived state any coordinator re-computes identically.
                let seq = r.bump();
                let op = KvCommand::Put {
                    key: txn::decision_key(tid),
                    value: decision.as_str().to_string(),
                };
                r.pending
                    .push(submit(shards, tr, &mut r.history, r.client, seq, coord, op, now));
                r.phase = Phase::Decide;
            }
        }
        Phase::Prepare => {
            if r.pending.is_empty() {
                if r.should_crash(RouterCrashPoint::AfterPrepare) {
                    crash_router(r, now, trace, queue);
                    return;
                }
                let t = r.txn.as_mut().expect("prepare phase has a txn");
                let tid = t.tid;
                let coord = t.coord;
                let decision = if t.intend_abort {
                    TxnDecision::Abort
                } else {
                    TxnDecision::Commit
                };
                if buggy && decision == TxnDecision::Commit {
                    // BUG (opt-in): disseminate the data writes *now*, before
                    // the decision entry is replicated. Until the CAS lands,
                    // the txn is still formally undecided — a router crash in
                    // this window lets recovery's abort-CAS win while the
                    // "committed" writes are already visible.
                    t.queues = tagged_queues(&r.map, &t.writes, &t.participants, tid);
                    start_writes(r, shards, tr, now);
                    r.phase = Phase::EarlyWrite;
                    return;
                }
                let backend = t.backend;
                if backend == CommitBackend::TwoPhase {
                    t.planned = Some(decision);
                }
                let seq = r.bump();
                let op = if backend == CommitBackend::TwoPhase {
                    // Raw 2PC: the decision is a plain record. Until this
                    // put is durable, the outcome exists only in this
                    // process — the classic blocking window.
                    KvCommand::Put {
                        key: txn::decision_key(tid),
                        value: decision.as_str().to_string(),
                    }
                } else {
                    KvCommand::Cas {
                        key: txn::decision_key(tid),
                        expect: txn::DECISION_PENDING.to_string(),
                        new: decision.as_str().to_string(),
                    }
                };
                r.pending
                    .push(submit(shards, tr, &mut r.history, r.client, seq, coord, op, now));
                r.phase = Phase::Decide;
            }
        }
        Phase::EarlyWrite => {
            for (p, _) in &done {
                let t = r.txn.as_mut().expect("early-write phase has a txn");
                if let Some(i) = t.participants.iter().position(|&s| s == p.shard) {
                    if let Some((key, value)) =
                        (!t.queues[i].is_empty()).then(|| t.queues[i].remove(0))
                    {
                        let seq = r.bump();
                        let op = KvCommand::Put { key, value };
                        r.pending
                            .push(submit(shards, tr, &mut r.history, r.client, seq, p.shard, op, now));
                    }
                }
            }
            let t = r.txn.as_mut().expect("early-write phase has a txn");
            if r.pending.is_empty() && t.queues.iter().all(Vec::is_empty) {
                t.wrote_early = true;
                let (tid, coord) = (t.tid, t.coord);
                if r.should_crash(RouterCrashPoint::AfterEarlyWrites) {
                    crash_router(r, now, trace, queue);
                    return;
                }
                let seq = r.bump();
                let op = KvCommand::Cas {
                    key: txn::decision_key(tid),
                    expect: txn::DECISION_PENDING.to_string(),
                    new: TxnDecision::Commit.as_str().to_string(),
                };
                r.pending
                    .push(submit(shards, tr, &mut r.history, r.client, seq, coord, op, now));
                r.phase = Phase::Decide;
            }
        }
        Phase::Decide => {
            let mut read_decision = false;
            for (p, resp) in &done {
                match (&p.op, resp) {
                    (KvCommand::Cas { key, .. }, KvResponse::CasResult { swapped })
                        if txn::parse_decision_key(key).is_some() =>
                    {
                        let t = r.txn.as_mut().expect("decide phase has a txn");
                        if *swapped {
                            t.decided = Some(if t.intend_abort {
                                TxnDecision::Abort
                            } else {
                                TxnDecision::Commit
                            });
                        } else {
                            // Someone else (recovery) resolved the decision
                            // first; learn it from the log.
                            read_decision = true;
                        }
                    }
                    (KvCommand::Put { key, .. }, KvResponse::Ok)
                        if txn::parse_decision_key(key).is_some() =>
                    {
                        // Non-CAS backends: the planned decision record is
                        // durable.
                        let t = r.txn.as_mut().expect("decide phase has a txn");
                        t.decided = t.planned;
                    }
                    _ => {}
                }
            }
            if read_decision {
                let t = r.txn.as_ref().expect("decide phase has a txn");
                let (tid, coord) = (t.tid, t.coord);
                let seq = r.bump();
                let op = KvCommand::Get {
                    key: txn::decision_key(tid),
                };
                r.pending
                    .push(submit(shards, tr, &mut r.history, r.client, seq, coord, op, now));
                r.phase = Phase::ReadDecision;
                return;
            }
            let decided = r.txn.as_ref().expect("decide phase has a txn").decided;
            match decided {
                Some(TxnDecision::Abort) if r.pending.is_empty() => {
                    finish_txn(r, TxnDecision::Abort, now, trace);
                }
                Some(TxnDecision::Commit) => {
                    if r.should_crash(RouterCrashPoint::AfterDecide) {
                        crash_router(r, now, trace, queue);
                        return;
                    }
                    let t = r.txn.as_mut().expect("decide phase has a txn");
                    if !t.wrote_early {
                        t.queues = tagged_queues(&r.map, &t.writes, &t.participants, t.tid);
                        start_writes(r, shards, tr, now);
                    }
                    r.phase = Phase::Write;
                }
                // Abort with replies still outstanding, or undecided: wait.
                Some(TxnDecision::Abort) | None => {}
            }
        }
        Phase::ReadDecision => {
            if let Some((p, resp)) = done.into_iter().next() {
                let t = r.txn.as_mut().expect("read-decision phase has a txn");
                match resp {
                    KvResponse::Value(Some(v)) => match TxnDecision::parse(&v) {
                        Some(TxnDecision::Commit) => {
                            t.decided = Some(TxnDecision::Commit);
                            if !t.wrote_early {
                                t.queues =
                                    tagged_queues(&r.map, &t.writes, &t.participants, t.tid);
                            }
                            start_writes(r, shards, tr, now);
                            r.phase = Phase::Write;
                        }
                        Some(TxnDecision::Abort) => {
                            t.decided = Some(TxnDecision::Abort);
                            finish_txn(r, TxnDecision::Abort, now, trace);
                        }
                        None => {
                            // Still pending (only possible transiently);
                            // re-read.
                            let seq = r.bump();
                            r.pending.push(submit(shards, tr, &mut r.history,
                                r.client,
                                seq,
                                p.shard,
                                p.op.clone(),
                                now,
                            ));
                        }
                    },
                    _ => {
                        let seq = r.bump();
                        r.pending.push(submit(shards, tr, &mut r.history,
                            r.client,
                            seq,
                            p.shard,
                            p.op.clone(),
                            now,
                        ));
                    }
                }
            }
        }
        Phase::Write => {
            for (p, _) in &done {
                let t = r.txn.as_mut().expect("write phase has a txn");
                if let Some(i) = t.participants.iter().position(|&s| s == p.shard) {
                    if let Some((key, value)) =
                        (!t.queues[i].is_empty()).then(|| t.queues[i].remove(0))
                    {
                        let seq = r.bump();
                        let op = KvCommand::Put { key, value };
                        r.pending
                            .push(submit(shards, tr, &mut r.history, r.client, seq, p.shard, op, now));
                    }
                }
            }
            let t = r.txn.as_ref().expect("write phase has a txn");
            if r.pending.is_empty() && t.queues.iter().all(|q| q.is_empty()) {
                finish_txn(r, TxnDecision::Commit, now, trace);
            }
        }
    }
}

fn finish_recovery(
    rec: &mut Recovery,
    decision: TxnDecision,
    now: u64,
    trace: &mut Vec<String>,
) {
    let task = rec.task.take().expect("finishing without a task");
    trace.push(format!(
        "t={now} recovery {} phase={} decision={}",
        task.tid,
        TxnPhase::Decide.label(),
        decision.as_str()
    ));
    rec.recovered.push((task.tid, decision));
    rec.phase = RecPhase::Idle;
}

/// Gives up on a raw-2PC transaction whose only decision copy died with
/// its coordinator: there is nothing in any log that can resolve it.
fn stall_recovery(rec: &mut Recovery, now: u64, trace: &mut Vec<String>) {
    let task = rec.task.take().expect("stalling without a task");
    trace.push(format!(
        "t={now} recovery {} stalled (no durable decision; raw 2pc blocks)",
        task.tid
    ));
    rec.stalled.push(task.tid);
    rec.phase = RecPhase::Idle;
}

/// Records the outcome recovery derived from the vote registers and makes
/// it durable as a plain decision record. Every coordinator derives the
/// same outcome from the same (immutable once resolved) registers, so
/// concurrent writers always write the same value.
fn rec_put_decision<E: ShardEngine>(
    rec: &mut Recovery,
    shards: &mut [E],
    tr: &mut StoreTrace,
    decision: TxnDecision,
    now: u64,
) {
    let task = rec.task.as_mut().expect("deriving a decision needs a task");
    task.decision = Some(decision);
    let (tid, coord) = (task.tid, task.coord);
    rec.seq += 1;
    let op = KvCommand::Put {
        key: txn::decision_key(tid),
        value: decision.as_str().to_string(),
    };
    rec.pending.push(submit(shards, tr, &mut rec.history,
        RECOVERY_CLIENT,
        rec.seq,
        coord,
        op,
        now,
    ));
    rec.phase = RecPhase::PutDecision;
}

fn step_recovery<E: ShardEngine>(
    rec: &mut Recovery,
    shards: &mut [E],
    tr: &mut StoreTrace,
    map: &ShardMap,
    now: u64,
    trace: &mut Vec<String>,
) {
    let done = poll(shards, tr, &mut rec.history, RECOVERY_CLIENT, &mut rec.pending, now);
    let mut resubmit: Option<(usize, KvCommand)> = None;

    match rec.phase {
        RecPhase::Idle => {
            if let Some(pos) = rec
                .queue
                .iter()
                .position(|a| now >= a.at + RECOVERY_DELAY_US)
            {
                let a = rec.queue.remove(pos);
                trace.push(format!("t={now} recovery {} claim", a.tid));
                rec.task = Some(RecTask {
                    tid: a.tid,
                    coord: a.coord,
                    backend: CommitBackend::TwoPhaseOverConsensus,
                    participants: Vec::new(),
                    writes: Vec::new(),
                    prep_idx: 0,
                    vote_idx: 0,
                    decision: None,
                    write_idx: 0,
                });
                rec.seq += 1;
                let op = KvCommand::Get {
                    key: intent_key(a.tid),
                };
                rec.pending.push(submit(shards, tr, &mut rec.history,
                    RECOVERY_CLIENT,
                    rec.seq,
                    a.coord,
                    op,
                    now,
                ));
                rec.phase = RecPhase::Intent;
            }
        }
        RecPhase::Intent => {
            if let Some((_, resp)) = done.into_iter().next() {
                match resp {
                    KvResponse::Value(Some(v)) => {
                        let task = rec.task.as_mut().expect("intent phase has a task");
                        let (backend, participants) = decode_intent(&v);
                        task.backend = backend;
                        task.participants = participants;
                        let (tid, coord) = (task.tid, task.coord);
                        let first = task.participants.first().copied();
                        rec.seq += 1;
                        match backend {
                            CommitBackend::TwoPhaseOverConsensus => {
                                let op = KvCommand::Cas {
                                    key: txn::decision_key(tid),
                                    expect: txn::DECISION_PENDING.to_string(),
                                    new: TxnDecision::Abort.as_str().to_string(),
                                };
                                rec.pending.push(submit(shards, tr, &mut rec.history,
                                    RECOVERY_CLIENT,
                                    rec.seq,
                                    coord,
                                    op,
                                    now,
                                ));
                                rec.phase = RecPhase::AbortCas;
                            }
                            CommitBackend::TwoPhase => {
                                // Raw 2PC leaves nothing to force: either a
                                // decision record survived or the
                                // transaction is stuck.
                                let op = KvCommand::Get {
                                    key: txn::decision_key(tid),
                                };
                                rec.pending.push(submit(shards, tr, &mut rec.history,
                                    RECOVERY_CLIENT,
                                    rec.seq,
                                    coord,
                                    op,
                                    now,
                                ));
                                rec.phase = RecPhase::GetDecision;
                            }
                            CommitBackend::PaxosCommit => {
                                // Gray–Lamport termination: walk the vote
                                // registers, free-aborting any that is
                                // still open. The shard log serializes the
                                // race with the (possibly in-flight) vote.
                                let shard =
                                    first.expect("paxos-commit intent has participants");
                                let op = KvCommand::Cas {
                                    key: txn::vote_key(tid, shard),
                                    expect: txn::VOTE_PENDING.to_string(),
                                    new: txn::VOTE_ABORTED.to_string(),
                                };
                                rec.pending.push(submit(shards, tr, &mut rec.history,
                                    RECOVERY_CLIENT,
                                    rec.seq,
                                    shard,
                                    op,
                                    now,
                                ));
                                rec.phase = RecPhase::VoteCas;
                            }
                        }
                    }
                    _ => {
                        // The intent never became durable: the transaction
                        // registered nothing, so nothing can ever commit.
                        finish_recovery(rec, TxnDecision::Abort, now, trace);
                    }
                }
            }
        }
        RecPhase::AbortCas => {
            if let Some((_, resp)) = done.into_iter().next() {
                if resp == (KvResponse::CasResult { swapped: true }) {
                    // We closed the decision: abort is durable, and the
                    // router (sound) never wrote data without a durable
                    // commit — nothing to undo.
                    finish_recovery(rec, TxnDecision::Abort, now, trace);
                } else {
                    let task = rec.task.as_ref().expect("abort-cas phase has a task");
                    let (tid, coord) = (task.tid, task.coord);
                    rec.seq += 1;
                    let op = KvCommand::Get {
                        key: txn::decision_key(tid),
                    };
                    rec.pending.push(submit(shards, tr, &mut rec.history,
                        RECOVERY_CLIENT,
                        rec.seq,
                        coord,
                        op,
                        now,
                    ));
                    rec.phase = RecPhase::GetDecision;
                }
            }
        }
        RecPhase::GetDecision => {
            if let Some((_, resp)) = done.into_iter().next() {
                let task = rec.task.as_ref().expect("get-decision phase has a task");
                let (tid, coord, backend) = (task.tid, task.coord, task.backend);
                match resp {
                    KvResponse::Value(Some(v)) => match TxnDecision::parse(&v) {
                        Some(TxnDecision::Commit) => {
                            let shard = task.participants[0];
                            rec.seq += 1;
                            let op = KvCommand::Get {
                                key: txn::prepare_key(tid, shard),
                            };
                            rec.pending.push(submit(shards, tr, &mut rec.history,
                                RECOVERY_CLIENT,
                                rec.seq,
                                shard,
                                op,
                                now,
                            ));
                            rec.phase = RecPhase::GetPrepare;
                        }
                        Some(TxnDecision::Abort) => {
                            finish_recovery(rec, TxnDecision::Abort, now, trace);
                        }
                        None => {
                            if backend == CommitBackend::TwoPhase {
                                // Unresolvable garbage — nothing to force.
                                stall_recovery(rec, now, trace);
                                return;
                            }
                            // Back to pending is impossible, but an
                            // interleaved init can surface it transiently:
                            // retry the abort CAS.
                            rec.seq += 1;
                            let op = KvCommand::Cas {
                                key: txn::decision_key(tid),
                                expect: txn::DECISION_PENDING.to_string(),
                                new: TxnDecision::Abort.as_str().to_string(),
                            };
                            rec.pending.push(submit(shards, tr, &mut rec.history,
                                RECOVERY_CLIENT,
                                rec.seq,
                                coord,
                                op,
                                now,
                            ));
                            rec.phase = RecPhase::AbortCas;
                        }
                    },
                    _ => {
                        if backend == CommitBackend::TwoPhase {
                            // No durable decision anywhere: the only copy
                            // died with the coordinator process. Blocked.
                            stall_recovery(rec, now, trace);
                            return;
                        }
                        // Decision key absent: the init write never became
                        // durable, so no commit CAS can ever succeed.
                        finish_recovery(rec, TxnDecision::Abort, now, trace);
                    }
                }
            }
        }
        RecPhase::VoteCas => {
            if let Some((_, resp)) = done.into_iter().next() {
                let task = rec.task.as_ref().expect("vote-cas phase has a task");
                let (tid, shard) = (task.tid, task.participants[task.vote_idx]);
                if resp == (KvResponse::CasResult { swapped: true }) {
                    // We closed this vote register as aborted; the whole
                    // transaction aborts, and the (durable) register makes
                    // every future coordinator agree.
                    rec_put_decision(rec, shards, tr, TxnDecision::Abort, now);
                } else {
                    // The register was already resolved (vote or free
                    // abort); learn the chosen value from the log.
                    rec.seq += 1;
                    let op = KvCommand::Get {
                        key: txn::vote_key(tid, shard),
                    };
                    rec.pending.push(submit(shards, tr, &mut rec.history,
                        RECOVERY_CLIENT,
                        rec.seq,
                        shard,
                        op,
                        now,
                    ));
                    rec.phase = RecPhase::VoteGet;
                }
            }
        }
        RecPhase::VoteGet => {
            if let Some((p, resp)) = done.into_iter().next() {
                match resp {
                    KvResponse::Value(Some(v)) => match txn::parse_vote(&v) {
                        Some(Some(writes)) => {
                            // Prepared: harvest the shard-local redo log and
                            // terminate the next register.
                            let task = rec.task.as_mut().expect("vote-get phase has a task");
                            let tid = task.tid;
                            for (k, val) in writes {
                                task.writes.push((k, txn::tag_value(&val, tid)));
                            }
                            task.vote_idx += 1;
                            if task.vote_idx < task.participants.len() {
                                let shard = task.participants[task.vote_idx];
                                rec.seq += 1;
                                let op = KvCommand::Cas {
                                    key: txn::vote_key(tid, shard),
                                    expect: txn::VOTE_PENDING.to_string(),
                                    new: txn::VOTE_ABORTED.to_string(),
                                };
                                rec.pending.push(submit(shards, tr, &mut rec.history,
                                    RECOVERY_CLIENT,
                                    rec.seq,
                                    shard,
                                    op,
                                    now,
                                ));
                                rec.phase = RecPhase::VoteCas;
                            } else {
                                // Every register resolved prepared: the
                                // transaction had already passed its commit
                                // point when the coordinator died. Commit it.
                                rec_put_decision(rec, shards, tr, TxnDecision::Commit, now);
                            }
                        }
                        Some(None) => {
                            rec_put_decision(rec, shards, tr, TxnDecision::Abort, now);
                        }
                        None => {
                            // Transiently pending/garbage: re-read.
                            resubmit = Some((p.shard, p.op.clone()));
                        }
                    },
                    KvResponse::Value(None) => {
                        // The register was never initialized durably — the
                        // coordinator died before the vote phase and no vote
                        // can ever be cast. Free abort.
                        rec_put_decision(rec, shards, tr, TxnDecision::Abort, now);
                    }
                    _ => {
                        resubmit = Some((p.shard, p.op.clone()));
                    }
                }
            }
        }
        RecPhase::PutDecision => {
            if let Some((_, resp)) = done.into_iter().next() {
                if resp == KvResponse::Ok {
                    let task = rec.task.as_mut().expect("put-decision phase has a task");
                    let decision = task.decision.expect("put-decision has an outcome");
                    if decision == TxnDecision::Commit && !task.writes.is_empty() {
                        rec.phase = RecPhase::Write;
                    } else {
                        finish_recovery(rec, decision, now, trace);
                    }
                }
            }
        }
        RecPhase::GetPrepare => {
            if let Some((p, resp)) = done.into_iter().next() {
                let task = rec.task.as_mut().expect("get-prepare phase has a task");
                match resp {
                    KvResponse::Value(Some(v)) => {
                        let tid = task.tid;
                        for (k, val) in txn::decode_writes(&v) {
                            task.writes.push((k, txn::tag_value(&val, tid)));
                        }
                        task.prep_idx += 1;
                        if task.prep_idx < task.participants.len() {
                            let shard = task.participants[task.prep_idx];
                            rec.seq += 1;
                            let op = KvCommand::Get {
                                key: txn::prepare_key(tid, shard),
                            };
                            rec.pending.push(submit(shards, tr, &mut rec.history,
                                RECOVERY_CLIENT,
                                rec.seq,
                                shard,
                                op,
                                now,
                            ));
                        } else if task.writes.is_empty() {
                            finish_recovery(rec, TxnDecision::Commit, now, trace);
                        } else {
                            rec.phase = RecPhase::Write;
                        }
                    }
                    _ => {
                        // A committed transaction always has durable prepare
                        // records; a transient miss just means the replica
                        // we read lagged. Retry.
                        resubmit = Some((p.shard, p.op.clone()));
                    }
                }
            }
        }
        RecPhase::Write => {
            if !done.is_empty() {
                let task = rec.task.as_mut().expect("write phase has a task");
                task.write_idx += 1;
                if task.write_idx >= task.writes.len() {
                    finish_recovery(rec, TxnDecision::Commit, now, trace);
                }
            }
        }
    }

    if let Some((shard, op)) = resubmit {
        rec.seq += 1;
        rec.pending.push(submit(shards, tr, &mut rec.history,
            RECOVERY_CLIENT,
            rec.seq,
            shard,
            op,
            now,
        ));
    }

    // The write phase issues one write at a time (sequential, idempotent
    // re-application of the prepare records), routed by the shard map.
    if rec.phase == RecPhase::Write && rec.pending.is_empty() {
        if let Some(task) = rec.task.as_ref() {
            if task.write_idx < task.writes.len() {
                let (key, value) = task.writes[task.write_idx].clone();
                let shard = map.group_of(&key);
                let op = KvCommand::Put { key, value };
                rec.seq += 1;
                rec.pending.push(submit(shards, tr, &mut rec.history,
                    RECOVERY_CLIENT,
                    rec.seq,
                    shard,
                    op,
                    now,
                ));
            }
        }
    }
}

impl<E: ShardEngine> Store<E> {
    /// Builds the store: `n_shards` consensus groups, deterministic
    /// workloads, and one routing map serialized into the config and
    /// re-parsed by every router (asserted identical).
    pub fn new(cfg: StoreConfig) -> Self {
        assert!(cfg.n_shards > 0 && cfg.replicas_per_shard > 0 && cfg.n_routers > 0);
        let mut map = ShardMap::even(cfg.n_shards);
        if let Some(geo) = &cfg.geo {
            map = map.with_placement(compute_placement(
                geo.placement,
                cfg.n_shards,
                cfg.replicas_per_shard,
                geo.topology.n_regions(),
            ));
        }
        let wire = map.serialize();
        let shards: Vec<E> = (0..cfg.n_shards)
            .map(|s| {
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(s as u64 + 1);
                let net = match &cfg.geo {
                    Some(g) => cfg.net.clone().with_wan(g.topology.clone()),
                    None => cfg.net.clone(),
                };
                let mut spec = crate::engine::ShardBuildSpec::new(
                    cfg.replicas_per_shard,
                    cfg.batch,
                    net,
                    seed,
                );
                if let Some(g) = &cfg.geo {
                    spec = spec.geo(ShardGeo {
                        n_regions: g.topology.n_regions(),
                        regions: map.placement().expect("geo store has a placement")[s].clone(),
                        lease_us: g.lease_us,
                        max_skew_us: g.max_skew_us,
                    });
                }
                if let Some((threshold, disk)) = cfg.durability {
                    spec = spec.durable(threshold, disk);
                }
                E::build_shard(&spec)
            })
            .collect();
        let trace = Vec::new();
        let pool = key_pool(&map, cfg.n_shards, cfg.keys_per_shard);
        let n_regions = cfg.geo.as_ref().map_or(1, |g| g.topology.n_regions());
        let routers: Vec<Router> = (0..cfg.n_routers)
            .map(|r| {
                let router_map =
                    ShardMap::deserialize(&wire).expect("store config shard map corrupt");
                assert_eq!(router_map, map, "router {r} decoded a different shard map");
                Router {
                    idx: r,
                    client: ROUTER_BASE + r as u32,
                    map: router_map,
                    region: r % n_regions,
                    items: generate_items(&cfg, &pool, r, &map),
                    next_item: 0,
                    txn_counter: 0,
                    seq: 0,
                    phase: Phase::Idle,
                    txn: None,
                    range: None,
                    ranges: Vec::new(),
                    fast_read: None,
                    geo_reads: Vec::new(),
                    pending: Vec::new(),
                    crashed: None,
                    crash_at: None,
                    restart_at: None,
                    crash_on: None,
                    history: HistorySink::new(),
                    txn_latencies: LatencyRecorder::new(),
                    outcomes: Vec::new(),
                }
            })
            .collect();
        let audit_keys: Vec<(usize, String)> = pool
            .iter()
            .enumerate()
            .flat_map(|(s, keys)| keys.iter().map(move |k| (s, k.clone())))
            .collect();
        let mut store = Store {
            cfg,
            map,
            shards,
            routers,
            recovery: Recovery {
                seq: 0,
                queue: Vec::new(),
                phase: RecPhase::Idle,
                task: None,
                pending: Vec::new(),
                history: HistorySink::new(),
                recovered: Vec::new(),
                stalled: Vec::new(),
            },
            audit: Audit {
                seq: 0,
                keys: audit_keys,
                idx: 0,
                started: false,
                pending: Vec::new(),
                history: HistorySink::new(),
            },
            now: 0,
            trace,
            causal: StoreTrace::new(),
        };
        let overrides = store.cfg.backend_overrides.clone();
        for (router, txn_number, backend) in overrides {
            store.set_txn_backend(router, txn_number, backend);
        }
        store
    }

    /// Current simulated time (µs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Turns on end-to-end causal tracing: the harness becomes tracer site
    /// 0 (minting one root span per submitted op) and shard `s` becomes
    /// site `s + 1`, so span ids never collide when the traces merge.
    /// Recording is pure accounting — message timing is unchanged.
    pub fn enable_tracing(&mut self) {
        self.causal.tracer.enable(0);
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.enable_tracing(s as u32 + 1);
        }
    }

    /// Advances every shard to (at least) `micros` *without* stepping
    /// routers, so shard-local startup (leader elections, initial no-ops)
    /// happens before the workload's first op — and therefore outside every
    /// op's latency window.
    pub fn warm_up(&mut self, micros: u64) {
        while self.now < micros {
            self.now += QUANTUM_US;
            for s in &mut self.shards {
                s.run_until(Time(self.now));
            }
        }
    }

    /// Every causal span across the harness and all shard sims (empty
    /// unless [`Store::enable_tracing`] ran).
    pub fn causal_spans(&self) -> Vec<CausalSpan> {
        let mut all: Vec<CausalSpan> = self.causal.tracer.spans().to_vec();
        for s in &self.shards {
            all.extend(s.causal_spans());
        }
        all
    }

    /// Completed harness ops with their trace ids and latency windows.
    pub fn op_records(&self) -> &[OpRecord] {
        &self.causal.records
    }

    /// The canonical routing map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard groups (read-only introspection for checkers).
    pub fn shards(&self) -> &[E] {
        &self.shards
    }

    /// Advances every shard one quantum, then runs router/recovery/audit
    /// logic at the boundary.
    pub fn step(&mut self) {
        self.now += QUANTUM_US;
        for s in &mut self.shards {
            s.run_until(Time(self.now));
        }
        let now = self.now;
        let buggy = self.cfg.buggy_early_writes;
        for r in self.routers.iter_mut() {
            step_router(
                r,
                &mut self.shards,
                &mut self.causal,
                now,
                buggy,
                &mut self.trace,
                &mut self.recovery.queue,
            );
        }
        step_recovery(
            &mut self.recovery,
            &mut self.shards,
            &mut self.causal,
            &self.map,
            now,
            &mut self.trace,
        );
        if self.audit.started {
            step_audit(&mut self.audit, &mut self.shards, &mut self.causal, now);
        }
    }

    /// Whether routers and recovery have no more work (crashed routers with
    /// no scheduled restart count as finished).
    pub fn main_quiesced(&self) -> bool {
        self.routers.iter().all(|r| {
            if r.crashed.is_some() {
                r.restart_at.is_none()
            } else {
                r.done() && r.crash_at.is_none()
            }
        }) && self.recovery.queue.is_empty()
            && self.recovery.phase == RecPhase::Idle
    }

    /// Starts the post-run audit: one serializable `Get` per pool key,
    /// through the owning shard's log.
    pub fn start_audit(&mut self) {
        self.audit.started = true;
    }

    /// Whether the audit pass has read every pool key.
    pub fn audit_done(&self) -> bool {
        self.audit.started
            && self.audit.idx >= self.audit.keys.len()
            && self.audit.pending.is_empty()
    }

    /// Runs the whole workload plus the audit pass. Returns `true` iff all
    /// routers finished (or crashed for good), recovery drained, and the
    /// audit completed before `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        while self.now + QUANTUM_US <= horizon.0 && !self.main_quiesced() {
            self.step();
        }
        self.start_audit();
        while self.now + QUANTUM_US <= horizon.0 && !self.audit_done() {
            self.step();
        }
        self.main_quiesced() && self.audit_done()
    }

    /// Merged invoke/response history of routers, recovery, and audit.
    pub fn history(&self) -> Vec<ClientRecord> {
        let sinks: Vec<&HistorySink> = self
            .routers
            .iter()
            .map(|r| &r.history)
            .chain([&self.recovery.history, &self.audit.history])
            .collect();
        HistorySink::merge(sinks)
    }

    /// All transaction outcomes routers observed, in completion order.
    pub fn outcomes(&self) -> Vec<TxnOutcome> {
        let mut all: Vec<TxnOutcome> = self
            .routers
            .iter()
            .flat_map(|r| r.outcomes.iter().cloned())
            .collect();
        all.sort_by_key(|o| (o.at, o.tid));
        all
    }

    /// All merged range-scan results routers observed, ordered by
    /// completion time then client.
    pub fn range_results(&self) -> Vec<RangeOutcome> {
        let mut all: Vec<RangeOutcome> = self
            .routers
            .iter()
            .flat_map(|r| r.ranges.iter().cloned())
            .collect();
        all.sort_by_key(|o| (o.at, o.client));
        all
    }

    /// All completed geo fast-path reads (with their log fallbacks),
    /// ordered by completion time then client. Empty on non-geo stores.
    pub fn read_outcomes(&self) -> Vec<ReadOutcome> {
        let mut all: Vec<ReadOutcome> = self
            .routers
            .iter()
            .flat_map(|r| r.geo_reads.iter().cloned())
            .collect();
        all.sort_by_key(|o| (o.at, o.client));
        all
    }

    /// Transactions the recovery actor resolved, in resolution order.
    pub fn recovered(&self) -> &[(TxnId, TxnDecision)] {
        &self.recovery.recovered
    }

    /// Raw-2PC transactions recovery gave up on: no durable decision
    /// exists anywhere, so they block forever.
    pub fn stalled(&self) -> &[TxnId] {
        &self.recovery.stalled
    }

    /// Overrides the commit backend of router `r`'s transaction number
    /// `txn_number` (its `TxnId.number`). Panics if that transaction does
    /// not exist in the generated workload. The builder-style home for
    /// this knob is [`StoreConfig::txn_backend`], which applies it at
    /// build time; this method remains for overriding after construction.
    pub fn set_txn_backend(&mut self, r: usize, txn_number: u64, backend: CommitBackend) {
        let mut n = 0u64;
        for item in &mut self.routers[r].items {
            if let WorkItem::Txn { backend: b, .. } = item {
                if n == txn_number {
                    *b = backend;
                    return;
                }
                n += 1;
            }
        }
        panic!("router {r} has no transaction number {txn_number}");
    }

    /// Begin-to-outcome transaction latencies across all routers.
    pub fn txn_latencies(&self) -> LatencyRecorder {
        let mut agg = LatencyRecorder::new();
        for r in &self.routers {
            for &s in r.txn_latencies.samples() {
                agg.record_micros(s);
            }
        }
        agg
    }

    /// Messages sent across all shard groups.
    pub fn messages_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.metrics().sent).sum()
    }

    /// Harness event trace (deterministic; feeds [`Store::fingerprint`]).
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Reads `key` from its shard's most-caught-up replica (no log entry).
    pub fn peek(&self, key: &str) -> Option<String> {
        self.shards[self.map.group_of(key)].peek(key)
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        self.map.group_of(key)
    }

    /// Per-replica `(global id, applied len, state digest)` across shards;
    /// global replica id = `shard * replicas_per_shard + local`.
    pub fn state_digests(&self) -> Vec<(u32, u64, u64)> {
        let rps = self.cfg.replicas_per_shard as u32;
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(s, e)| {
                e.state_digests()
                    .into_iter()
                    .filter(move |(id, _, _)| *id < rps)
                    .map(move |(id, len, dig)| (s as u32 * rps + id, len, dig))
            })
            .collect()
    }

    /// Order-sensitive digest of the run: trace, outcomes, final replica
    /// digests. Equal fingerprints ⇒ bit-for-bit identical runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for line in &self.trace {
            eat(line.as_bytes());
        }
        for o in self.outcomes() {
            eat(format!("{} {} {}", o.tid, o.decision.as_str(), o.at).as_bytes());
        }
        for (id, len, dig) in self.state_digests() {
            eat(format!("{id}:{len}:{dig}").as_bytes());
        }
        h
    }

    // ---- fault injection -------------------------------------------------

    /// Total fault-addressable nodes: all shard replicas, then routers.
    pub fn n_fault_nodes(&self) -> u32 {
        (self.cfg.n_shards * self.cfg.replicas_per_shard + self.cfg.n_routers) as u32
    }

    fn split_node(&self, global: u32) -> Result<(usize, usize), usize> {
        let rps = self.cfg.replicas_per_shard as u32;
        let n_replicas = self.cfg.n_shards as u32 * rps;
        if global < n_replicas {
            Ok(((global / rps) as usize, (global % rps) as usize))
        } else {
            Err((global - n_replicas) as usize)
        }
    }

    /// Crashes a global node (replica or router) at absolute time `at`.
    pub fn crash_node_at(&mut self, global: u32, at: u64) {
        match self.split_node(global) {
            Ok((shard, replica)) => {
                self.shards[shard].crash_at(simnet::NodeId::from(replica), Time(at));
            }
            Err(router) => {
                if router < self.routers.len() {
                    self.routers[router].crash_at = Some(at);
                }
            }
        }
    }

    /// Restarts a global node (replica or router) at absolute time `at`.
    pub fn restart_node_at(&mut self, global: u32, at: u64) {
        match self.split_node(global) {
            Ok((shard, replica)) => {
                self.shards[shard].restart_at(simnet::NodeId::from(replica), Time(at));
            }
            Err(router) => {
                if router < self.routers.len() {
                    self.routers[router].restart_at = Some(at);
                }
            }
        }
    }

    /// Partitions each shard group along `group` (global replica ids):
    /// replicas in `group` on one side, the rest (plus every stub client)
    /// on the other. Shards with an empty side are untouched.
    pub fn partition_at(&mut self, at: u64, group: &[u32]) {
        let rps = self.cfg.replicas_per_shard;
        let n_stubs = self.cfg.geo.as_ref().map_or(1, |g| g.topology.n_regions());
        for s in 0..self.cfg.n_shards {
            let side_a: Vec<simnet::NodeId> = group
                .iter()
                .filter_map(|&g| match self.split_node(g) {
                    Ok((shard, replica)) if shard == s => Some(simnet::NodeId::from(replica)),
                    _ => None,
                })
                .collect();
            // The stub clients (ids rps..) stay with the complement side.
            let side_b: Vec<simnet::NodeId> = (0..rps + n_stubs)
                .map(simnet::NodeId::from)
                .filter(|id| !side_a.contains(id))
                .collect();
            if side_a.is_empty() || side_b.is_empty() {
                continue;
            }
            self.shards[s].partition_at(Time(at), vec![side_a, side_b]);
        }
    }

    /// Partitions region `region` away from the rest of the WAN at absolute
    /// time `at`: in every shard group, the replicas homed in `region`
    /// (plus that region's stub client) land on one side and everything
    /// else on the other. No-op on non-geo stores.
    pub fn partition_region_at(&mut self, at: u64, region: usize) {
        let rps = self.cfg.replicas_per_shard;
        let n_stubs = self.cfg.geo.as_ref().map_or(1, |g| g.topology.n_regions());
        let Some(placement) = self.map.placement().cloned() else {
            return;
        };
        for (s, shard_regions) in placement.iter().enumerate().take(self.cfg.n_shards) {
            let side_a: Vec<simnet::NodeId> = (0..rps)
                .filter(|&r| shard_regions[r] as usize == region)
                .map(simnet::NodeId::from)
                .chain((region < n_stubs).then(|| simnet::NodeId::from(rps + region)))
                .collect();
            let side_b: Vec<simnet::NodeId> = (0..rps + n_stubs)
                .map(simnet::NodeId::from)
                .filter(|id| !side_a.contains(id))
                .collect();
            if side_a.is_empty() || side_b.is_empty() {
                continue;
            }
            self.shards[s].partition_at(Time(at), vec![side_a, side_b]);
        }
    }

    /// Skews the local clock of a global replica id forward by `offset_us`
    /// — the lever for driving a lease holder past its skew bound. Ignored
    /// for router ids (routers have no protocol clock).
    pub fn set_replica_skew(&mut self, global: u32, offset_us: u64) {
        if let Ok((shard, replica)) = self.split_node(global) {
            self.shards[shard].set_replica_skew(replica, offset_us);
        }
    }

    /// Heals all shard partitions at absolute time `at`.
    pub fn heal_at(&mut self, at: u64) {
        for s in &mut self.shards {
            s.heal_at(Time(at));
        }
    }

    /// Sets the random-loss probability on every shard network now.
    pub fn set_drop_prob(&mut self, p: f64) {
        for s in &mut self.shards {
            s.set_drop_prob(p);
        }
    }

    /// Crashes router `r` at absolute time `at` (µs).
    pub fn crash_router_at(&mut self, r: usize, at: u64) {
        self.routers[r].crash_at = Some(at);
    }

    /// Restarts router `r` at absolute time `at` (µs). The router abandons
    /// any in-flight transaction to recovery and resumes its workload.
    pub fn restart_router_at(&mut self, r: usize, at: u64) {
        self.routers[r].restart_at = Some(at);
    }

    /// Crashes router `r` when its transaction number `txn` reaches
    /// `point` — phase-accurate coordinator-crash injection.
    pub fn crash_router_on_txn(&mut self, r: usize, txn: u64, point: RouterCrashPoint) {
        self.routers[r].crash_on = Some((txn, point));
    }

    /// Whether router `r` finished its workload.
    pub fn router_done(&self, r: usize) -> bool {
        self.routers[r].crashed.is_none() && self.routers[r].done()
    }

    /// The generated data-key pool, grouped by shard (for tests).
    pub fn pool_keys(&self) -> Vec<(usize, String)> {
        self.audit.keys.clone()
    }
}

fn step_audit<E: ShardEngine>(audit: &mut Audit, shards: &mut [E], tr: &mut StoreTrace, now: u64) {
    let done = poll(shards, tr, &mut audit.history, AUDIT_CLIENT, &mut audit.pending, now);
    let _ = done;
    if audit.pending.is_empty() && audit.idx < audit.keys.len() {
        let (shard, key) = audit.keys[audit.idx].clone();
        audit.idx += 1;
        audit.seq += 1;
        let op = KvCommand::Get { key };
        audit.pending.push(submit(shards, tr, &mut audit.history,
            AUDIT_CLIENT,
            audit.seq,
            shard,
            op,
            now,
        ));
    }
}

/// `keys_per_shard` data keys per shard, found by probing the hash map.
fn key_pool(map: &ShardMap, n_shards: usize, keys_per_shard: usize) -> Vec<Vec<String>> {
    let mut pool: Vec<Vec<String>> = vec![Vec::new(); n_shards];
    let mut i = 0u64;
    while pool.iter().any(|p| p.len() < keys_per_shard) {
        let key = format!("k{i}");
        let s = map.group_of(&key);
        if pool[s].len() < keys_per_shard {
            pool[s].push(key);
        }
        i += 1;
        assert!(i < 100_000, "hash map never filled some shard's pool");
    }
    pool
}

/// Deterministic per-router workload: alternating cross-shard transactions
/// and single-key operations.
fn generate_items(
    cfg: &StoreConfig,
    pool: &[Vec<String>],
    router: usize,
    map: &ShardMap,
) -> Vec<WorkItem> {
    let mut rng = ChaCha20Rng::seed_from_u64(
        cfg.seed ^ (router as u64 + 0x5707).rotate_left(17),
    );
    let mut items = Vec::new();
    let rounds = cfg.txns_per_router.max(cfg.singles_per_router);
    let mut txns = 0;
    let mut singles = 0;
    for i in 0..rounds {
        if txns < cfg.txns_per_router {
            let span = 1 + rng.gen_range(0..cfg.max_span.min(cfg.n_shards).max(1));
            let span = span.min(cfg.n_shards);
            let mut shards: Vec<usize> = (0..cfg.n_shards).collect();
            // Deterministic partial shuffle.
            for j in 0..span {
                let k = j + rng.gen_range(0..cfg.n_shards - j);
                shards.swap(j, k);
            }
            let writes: Vec<(String, String)> = shards[..span]
                .iter()
                .map(|&s| {
                    let key = pool[s][rng.gen_range(0..pool[s].len())].clone();
                    (key, format!("w{router}.{i}"))
                })
                .collect();
            let abort = rng.gen_range(0..5) == 0;
            items.push(WorkItem::Txn {
                writes,
                abort,
                backend: cfg.backend,
            });
            txns += 1;
        }
        if singles < cfg.singles_per_router {
            let s = rng.gen_range(0..cfg.n_shards);
            let key = pool[s][rng.gen_range(0..pool[s].len())].clone();
            let op = if rng.gen_range(0..2) == 0 {
                KvCommand::Put {
                    key,
                    value: format!("s{router}.{i}"),
                }
            } else {
                KvCommand::Get { key }
            };
            items.push(WorkItem::Single(op));
            singles += 1;
        }
    }
    // Range scans come last, both in the item list and in RNG draw order,
    // so `ranges_per_router = 0` leaves historical workloads bit-identical.
    if cfg.ranges_per_router > 0 {
        let mut all_keys: Vec<String> = pool.iter().flatten().cloned().collect();
        all_keys.sort();
        for _ in 0..cfg.ranges_per_router {
            let a = rng.gen_range(0..all_keys.len());
            let b = rng.gen_range(0..all_keys.len());
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            // `"!"` sorts below every pool-key character, so this end bound
            // includes `all_keys[hi]` itself but none of its extensions.
            let end = format!("{}!", all_keys[hi]);
            let limit = 1 + rng.gen_range(0..all_keys.len());
            items.push(WorkItem::Range {
                start: all_keys[lo].clone(),
                end,
                limit,
            });
        }
    }
    // Geo fast reads come last of all (zero extra RNG draws without a geo
    // config, so non-geo workloads stay bit-identical).
    if let Some(geo) = &cfg.geo {
        let n_regions = geo.topology.n_regions();
        let my_region = router % n_regions;
        let local: Vec<usize> = (0..cfg.n_shards)
            .filter(|&s| map.primary_region(s) == Some(my_region))
            .collect();
        let remote: Vec<usize> = (0..cfg.n_shards)
            .filter(|&s| map.primary_region(s) != Some(my_region))
            .collect();
        for _ in 0..geo.reads_per_router {
            let pick_local = rng.gen_range(0..100) < geo.local_read_pct && !local.is_empty();
            let from = if pick_local || remote.is_empty() {
                &local
            } else {
                &remote
            };
            let s = from[rng.gen_range(0..from.len())];
            // Mild key skew (zipf-ish): the minimum of two uniform draws
            // biases reads toward the front of the shard's pool.
            let a = rng.gen_range(0..pool[s].len());
            let b = rng.gen_range(0..pool[s].len());
            items.push(WorkItem::GeoRead {
                key: pool[s][a.min(b)].clone(),
            });
        }
    }
    items
}
