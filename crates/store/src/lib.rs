//! # forty-store — a sharded transactional KV store over consensus groups
//!
//! The paper's closing argument is that modern large-scale data management
//! systems are *compositions* of the classic protocols: data is partitioned
//! into shards, each shard is a consensus group (Multi-Paxos or Raft), and
//! cross-shard transactions run atomic commitment **on top of** the groups.
//! This crate builds exactly that composition on the deterministic simnet
//! substrate:
//!
//! * [`ShardMap`] — hash-range key routing, serialized into the store
//!   config so every router provably shares one view
//!   ([`shard_map`]).
//! * [`ShardEngine`] — any [`consensus_core::ClusterDriver`] usable as a
//!   replicated shard log; implemented for `paxos::MultiPaxosCluster` and
//!   `raft::RaftCluster` ([`engine`]).
//! * [`Store`] — routers, 2PC-over-consensus (Gray & Lamport's *Consensus
//!   on Transaction Commit*), a recovery actor, and a post-run audit pass,
//!   all stepped in deterministic lockstep ([`store`]).
//! * [`GeoConfig`] — WAN regions, shard placement, and the region-local
//!   linearizable read path (leader leases / read index) ([`geo`]).
//!
//! The punchline mirrors the tutorial's commitment story one layer up:
//! unreplicated 2PC (`atomic_commit::two_phase`) **blocks forever** when
//! its coordinator dies after collecting votes, while this store's
//! coordinator state is replicated log entries — the same crash only delays
//! the transaction until recovery re-derives the outcome from the logs.

pub mod engine;
pub mod geo;
pub mod shard_map;
pub mod store;

pub use engine::{ShardBuildSpec, ShardEngine, ShardGeo};
pub use geo::{compute_placement, GeoConfig, PlacementPolicy, ReadOutcome};
pub use shard_map::{key_hash, ShardMap};
pub use store::{
    decode_intent, encode_intent, intent_key, CommitBackend, OpRecord, RangeOutcome,
    RouterCrashPoint, Store, StoreConfig, TxnOutcome, AUDIT_CLIENT, QUANTUM_US, RECOVERY_CLIENT,
    RECOVERY_DELAY_US, ROUTER_BASE,
};
