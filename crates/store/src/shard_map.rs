//! Key → shard routing: a hash-range map shared by every router.
//!
//! Keys are hashed (FNV-1a, stable across platforms) onto the `u64` ring,
//! which is cut into contiguous ranges; each range is owned by one consensus
//! *group*. The indirection from range to group — rather than `hash % n` —
//! is what makes the map rebalancing-ready: a future split/move only edits
//! the range table, it never changes the hash function, and the assignment
//! travels inside the serialized store config so every router provably
//! routes identically (the store asserts the per-router copies are equal).

/// Deterministic shard map: `ranges[i]` is the *exclusive* upper bound of
/// range `i` on the hash ring, owned by consensus group `groups[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Exclusive upper bound of each hash range, strictly increasing; the
    /// last bound is always `u64::MAX` (the ring has no gaps).
    bounds: Vec<u64>,
    /// Owning consensus group of each range.
    groups: Vec<u32>,
    /// Geo placement: `placement[group][replica]` is that replica's region.
    /// `None` for single-datacenter stores — and absent from the serialized
    /// form, so pre-geo map strings parse (and fingerprint) unchanged.
    placement: Option<Vec<Vec<u32>>>,
}

/// The store's stable key hash: FNV-1a with a 64-bit finalizer. Raw FNV
/// barely stirs the high bits on short keys, and range partitioning reads
/// exactly those bits — the avalanche pass spreads them.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

impl ShardMap {
    /// An even split of the ring into `n_groups` ranges, range `i` owned by
    /// group `i`. The starting point before any rebalancing.
    pub fn even(n_groups: usize) -> Self {
        assert!(n_groups > 0, "store needs at least one shard");
        let n = n_groups as u64;
        let width = u64::MAX / n;
        let mut bounds: Vec<u64> = (1..n).map(|i| i * width).collect();
        bounds.push(u64::MAX);
        ShardMap {
            bounds,
            groups: (0..n_groups as u32).collect(),
            placement: None,
        }
    }

    /// The same map with a geo placement attached:
    /// `placement[group][replica]` is that replica's region (see
    /// [`crate::geo::compute_placement`]).
    #[must_use]
    pub fn with_placement(mut self, placement: Vec<Vec<u32>>) -> Self {
        assert_eq!(
            placement.len(),
            self.n_groups(),
            "placement must cover every consensus group"
        );
        self.placement = Some(placement);
        self
    }

    /// The geo placement, if one is attached.
    pub fn placement(&self) -> Option<&Vec<Vec<u32>>> {
        self.placement.as_ref()
    }

    /// The region of `replica` in `group`'s consensus group (`None` when no
    /// placement is attached).
    pub fn replica_region(&self, group: usize, replica: usize) -> Option<usize> {
        Some(*self.placement.as_ref()?.get(group)?.get(replica)? as usize)
    }

    /// The primary region of `group`: where its replica 0 — the likely
    /// initial leader — is homed (`None` when no placement is attached).
    pub fn primary_region(&self, group: usize) -> Option<usize> {
        self.replica_region(group, 0)
    }

    /// The consensus group owning `key`.
    pub fn group_of(&self, key: &str) -> usize {
        let h = key_hash(key);
        let i = self.bounds.partition_point(|&b| b < h);
        self.groups[i.min(self.groups.len() - 1)] as usize
    }

    /// Number of distinct consensus groups.
    pub fn n_groups(&self) -> usize {
        let mut gs: Vec<u32> = self.groups.clone();
        gs.sort_unstable();
        gs.dedup();
        gs.len()
    }

    /// Serializes the map for the store config (`bound:group,...`). A geo
    /// placement, when attached, rides in an appended `|`-separated section
    /// (`|r.r.r,r.r.r,...` — one dot-joined region list per group), so
    /// placement-free maps serialize exactly as they always have.
    pub fn serialize(&self) -> String {
        let ranges = self
            .bounds
            .iter()
            .zip(&self.groups)
            .map(|(b, g)| format!("{b:x}:{g}"))
            .collect::<Vec<_>>()
            .join(",");
        match &self.placement {
            None => ranges,
            Some(p) => {
                let rows = p
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(u32::to_string)
                            .collect::<Vec<_>>()
                            .join(".")
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{ranges}|{rows}")
            }
        }
    }

    /// Parses [`ShardMap::serialize`] output. Returns `None` on malformed
    /// input or a map that does not cover the whole ring.
    pub fn deserialize(s: &str) -> Option<ShardMap> {
        let (ranges, placement_part) = match s.split_once('|') {
            Some((r, p)) => (r, Some(p)),
            None => (s, None),
        };
        let mut bounds = Vec::new();
        let mut groups = Vec::new();
        for part in ranges.split(',') {
            let (b, g) = part.split_once(':')?;
            bounds.push(u64::from_str_radix(b, 16).ok()?);
            groups.push(g.parse().ok()?);
        }
        let covers = bounds.last() == Some(&u64::MAX);
        let sorted = bounds.windows(2).all(|w| w[0] < w[1]);
        if !(covers && sorted && !bounds.is_empty()) {
            return None;
        }
        let mut map = ShardMap {
            bounds,
            groups,
            placement: None,
        };
        if let Some(p) = placement_part {
            let rows: Option<Vec<Vec<u32>>> = p
                .split(',')
                .map(|row| row.split('.').map(|r| r.parse().ok()).collect())
                .collect();
            let rows = rows?;
            if rows.len() != map.n_groups() || rows.iter().any(Vec::is_empty) {
                return None;
            }
            map.placement = Some(rows);
        }
        Some(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_map_covers_ring_and_uses_all_groups() {
        let map = ShardMap::even(4);
        let mut seen = [false; 4];
        for i in 0..256 {
            seen[map.group_of(&format!("k{i}"))] = true;
        }
        assert_eq!(seen, [true; 4], "256 keys should hit all 4 shards");
    }

    #[test]
    fn serialization_round_trips() {
        let map = ShardMap::even(3);
        let copy = ShardMap::deserialize(&map.serialize()).unwrap();
        assert_eq!(copy, map);
        for i in 0..64 {
            let k = format!("key-{i}");
            assert_eq!(copy.group_of(&k), map.group_of(&k));
        }
    }

    #[test]
    fn malformed_maps_are_rejected() {
        assert_eq!(ShardMap::deserialize(""), None);
        assert_eq!(ShardMap::deserialize("10:0,5:1"), None, "unsorted");
        assert_eq!(ShardMap::deserialize("10:0,20:1"), None, "uncovered ring");
        assert_eq!(ShardMap::deserialize("zz"), None);
    }

    #[test]
    fn placement_round_trips_and_stays_backward_compatible() {
        let plain = ShardMap::even(3);
        let placed = plain
            .clone()
            .with_placement(vec![vec![0, 0, 1], vec![1, 1, 2], vec![2, 2, 0]]);
        // Placement-free serialization is byte-identical to the historical
        // form and parses back without a placement.
        assert!(!plain.serialize().contains('|'));
        let wire = placed.serialize();
        assert_eq!(wire.split('|').next().unwrap(), plain.serialize());
        let copy = ShardMap::deserialize(&wire).unwrap();
        assert_eq!(copy, placed);
        assert_eq!(copy.replica_region(1, 2), Some(2));
        assert_eq!(copy.primary_region(2), Some(2));
        assert_eq!(plain.primary_region(0), None);
        // Malformed placements are rejected, not silently dropped.
        let base = plain.serialize();
        assert_eq!(ShardMap::deserialize(&format!("{base}|0.0")), None);
        assert_eq!(ShardMap::deserialize(&format!("{base}|a,b,c")), None);
    }

    #[test]
    fn rebalancing_edits_ranges_without_moving_the_hash() {
        // Moving a range to another group re-routes exactly that range.
        let map = ShardMap::even(2);
        let mut moved = map.clone();
        moved.groups[0] = 1; // group 1 absorbs range 0
        for i in 0..64 {
            let k = format!("k{i}");
            if map.group_of(&k) == 0 {
                assert_eq!(moved.group_of(&k), 1);
            } else {
                assert_eq!(moved.group_of(&k), map.group_of(&k));
            }
        }
        assert_eq!(moved.n_groups(), 1);
    }
}
