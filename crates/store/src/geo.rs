//! Geo-scale deployment: WAN regions, shard placement, and local reads.
//!
//! The paper's systems section ends where most deployments begin: the store
//! is not in one datacenter. This module stretches the sharded store across
//! named WAN regions (simnet's [`WanTopology`]): every shard's consensus
//! group is *placed* onto a region subset by a [`PlacementPolicy`], the
//! placement travels inside the serialized [`crate::ShardMap`] so all
//! routers provably agree on it, and routers gain a **fast read path** that
//! serves linearizable reads from the client's own region when the
//! protocol can prove it is legal:
//!
//! * **Multi-Paxos** — clock-bound leader leases, renewed through the log
//!   (`paxos::multi::Replica::with_lease`). A lease-holding leader answers
//!   reads from applied state without a log round; reads are region-local
//!   exactly when the leader is homed in the client's region.
//! * **Raft** — read-index follower reads: any replica parks the read,
//!   confirms a commit index with the leader, waits until its own applied
//!   state covers it, and answers locally. Reads are region-local whenever
//!   *any* replica is homed in the client's region — the WAN hop moves off
//!   the critical path into the (pipelined) index confirmation.
//!
//! Either way the replica refuses ([`ReadMode::Nack`]) whenever it cannot
//! prove safety — clock skew past the lease bound, an unconfirmable
//! leadership, a partition — and the router falls back to the ordinary
//! log path. The fallback is always correct, only slower; the invariant
//! the nemesis `store-geo` target checks is that a *served* fast read is
//! never stale.

use consensus_core::ReadMode;
use simnet::WanTopology;

/// How a shard's consensus group is assigned to regions.
///
/// Placement is computed once at store build time, serialized into the
/// shard map, and re-derived by every router (asserted identical) — the
/// same treatment the key ranges get, because a router that disagrees
/// about placement would route "local" reads to the wrong region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Every replica of shard `s` lives in region `s mod n_regions`:
    /// shard-local traffic never crosses the WAN, but a region outage
    /// takes its shards down whole.
    SingleRegion,
    /// A majority of shard `s` (including replica 0, the likely initial
    /// leader) lives in the primary region `s mod n_regions`; the minority
    /// remainder is spread over the other regions as witnesses. Commits
    /// stay region-local (the majority is), while the witnesses preserve
    /// the data through a primary-region outage.
    PrimaryWitness,
    /// Replica `r` of shard `s` lives in region `(s + r) mod n_regions`:
    /// maximal survivability, but every commit quorum crosses the WAN.
    Spread,
}

impl PlacementPolicy {
    /// Stable short tag used in serialized placements and trace lines.
    pub fn tag(&self) -> &'static str {
        match self {
            PlacementPolicy::SingleRegion => "single",
            PlacementPolicy::PrimaryWitness => "witness",
            PlacementPolicy::Spread => "spread",
        }
    }
}

/// Computes the region of every replica: `placement[shard][replica]`.
pub fn compute_placement(
    policy: PlacementPolicy,
    n_shards: usize,
    replicas_per_shard: usize,
    n_regions: usize,
) -> Vec<Vec<u32>> {
    assert!(n_regions >= 1, "placement needs at least one region");
    (0..n_shards)
        .map(|s| {
            let primary = (s % n_regions) as u32;
            (0..replicas_per_shard)
                .map(|r| match policy {
                    PlacementPolicy::SingleRegion => primary,
                    PlacementPolicy::PrimaryWitness => {
                        let majority = replicas_per_shard / 2 + 1;
                        if r < majority || n_regions == 1 {
                            primary
                        } else {
                            // Witnesses round-robin over the *other* regions.
                            let other = (r - majority) % (n_regions - 1);
                            ((primary as usize + 1 + other) % n_regions) as u32
                        }
                    }
                    PlacementPolicy::Spread => ((s + r) % n_regions) as u32,
                })
                .collect()
        })
        .collect()
}

/// Geo deployment configuration for [`crate::StoreConfig::geo`].
#[derive(Clone, Debug)]
pub struct GeoConfig {
    /// The WAN topology: named regions, intra-region and (possibly
    /// asymmetric) inter-region delay models. Installed into every shard
    /// group's network.
    pub topology: WanTopology,
    /// How shard groups are assigned to regions.
    pub placement: PlacementPolicy,
    /// Multi-Paxos leader-lease length in µs (`0` disables leases; Raft
    /// ignores this and uses read-index confirmation instead).
    pub lease_us: u64,
    /// Maximum tolerated clock skew for lease reads in µs: when the sim's
    /// skew oracle reports a bound above this, lease reads NACK.
    pub max_skew_us: u64,
    /// Fast-path reads each router issues (appended after its transactions,
    /// singles, and ranges, so `0` leaves historical workloads untouched).
    pub reads_per_router: usize,
    /// Percentage (0–100) of geo reads aimed at keys whose owning shard is
    /// primary-homed in the router's own region — the locality knob of the
    /// multi-region workload.
    pub local_read_pct: u32,
}

impl GeoConfig {
    /// The canonical three-datacenter deployment: [`WanTopology::three_dc`]
    /// regions, primary-witness placement, 30 ms leases with a 5 ms skew
    /// budget, and an 80%-region-local read mix.
    pub fn three_dc() -> Self {
        GeoConfig {
            topology: WanTopology::three_dc(),
            placement: PlacementPolicy::PrimaryWitness,
            lease_us: 30_000,
            max_skew_us: 5_000,
            reads_per_router: 8,
            local_read_pct: 80,
        }
    }

    /// The same deployment with a different placement policy.
    #[must_use]
    pub fn placement(mut self, policy: PlacementPolicy) -> Self {
        self.placement = policy;
        self
    }

    /// The same deployment with `n` fast-path reads per router.
    #[must_use]
    pub fn reads_per_router(mut self, n: usize) -> Self {
        self.reads_per_router = n;
        self
    }

    /// The same deployment with a different region-local read percentage.
    #[must_use]
    pub fn local_read_pct(mut self, pct: u32) -> Self {
        self.local_read_pct = pct.min(100);
        self
    }

    /// The same deployment with different lease parameters.
    #[must_use]
    pub fn lease(mut self, lease_us: u64, max_skew_us: u64) -> Self {
        self.lease_us = lease_us;
        self.max_skew_us = max_skew_us;
        self
    }
}

/// One completed fast-path read as the issuing router saw it.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// Issuing router's client id.
    pub client: u32,
    /// Key read.
    pub key: String,
    /// Shard owning the key.
    pub shard: usize,
    /// The router's home region.
    pub region: usize,
    /// Region of the replica that was asked (`None` when unplaced).
    pub target_region: Option<usize>,
    /// How the read was ultimately served: [`ReadMode::Lease`] or
    /// [`ReadMode::ReadIndex`] on the fast path, [`ReadMode::Log`] after a
    /// fallback. Never [`ReadMode::Nack`] — a NACK *causes* the fallback.
    pub mode: ReadMode,
    /// The value read (`None` = key absent).
    pub value: Option<String>,
    /// Completion time (µs).
    pub at: u64,
    /// Issue-to-answer latency (µs).
    pub latency_us: u64,
    /// Whether the read was served inside the router's own region (fast
    /// path answered by a replica homed there). Log fallbacks are never
    /// local — they pay the full consensus round.
    pub local: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_region_keeps_each_shard_whole() {
        let p = compute_placement(PlacementPolicy::SingleRegion, 4, 3, 3);
        for (s, row) in p.iter().enumerate() {
            assert!(row.iter().all(|&r| r == (s % 3) as u32), "shard {s}: {row:?}");
        }
    }

    #[test]
    fn primary_witness_homes_a_majority_with_the_likely_leader() {
        let p = compute_placement(PlacementPolicy::PrimaryWitness, 6, 5, 3);
        for (s, row) in p.iter().enumerate() {
            let primary = (s % 3) as u32;
            assert_eq!(row[0], primary, "replica 0 must be primary-homed");
            let in_primary = row.iter().filter(|&&r| r == primary).count();
            assert!(in_primary > 5 / 2, "shard {s} majority not primary: {row:?}");
            assert!(
                row.iter().any(|&r| r != primary),
                "shard {s} has no witness: {row:?}"
            );
        }
    }

    #[test]
    fn spread_uses_every_region_per_shard() {
        let p = compute_placement(PlacementPolicy::Spread, 3, 3, 3);
        for row in &p {
            let mut regions: Vec<u32> = row.clone();
            regions.sort_unstable();
            assert_eq!(regions, vec![0, 1, 2]);
        }
    }

    #[test]
    fn one_region_degenerates_to_everything_local() {
        for policy in [
            PlacementPolicy::SingleRegion,
            PlacementPolicy::PrimaryWitness,
            PlacementPolicy::Spread,
        ] {
            let p = compute_placement(policy, 3, 3, 1);
            assert!(p.iter().flatten().all(|&r| r == 0), "{policy:?}");
        }
    }
}
