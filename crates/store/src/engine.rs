//! The shard engine abstraction: one consensus group serving one shard.
//!
//! A [`ShardEngine`] is any [`ClusterDriver`] the store can additionally
//! *drive as a log service*: the router harness injects client commands into
//! the group, observes replies by reading the replicas' dedup tables, and
//! peeks at applied state. Multi-Paxos and Raft both qualify — the store is
//! deliberately engine-agnostic, which is the tutorial's point that 2PC
//! layered over consensus does not care which consensus it is layered over.
//!
//! Submission model: every injected command is broadcast to all replicas
//! from a *stub client* node (a workload client with zero commands). Only
//! the leader proposes it; followers answer `NotLeader`, which the stub
//! ignores. The `(client, seq)` dedup table guarantees at-most-once apply,
//! so the harness may re-broadcast the same command forever until some
//! replica shows a cached reply for it — "applied on one replica" implies
//! "decided in the shard log".

use consensus_core::driver::{BatchConfig, ClusterDriver};
use consensus_core::smr::{Command, KvCommand, KvResponse};
use consensus_core::workload::WorkloadMode;
use consensus_core::{QuorumSpec, ReadMode};
use paxos::multi::{MpMsg, MultiPaxosCluster};
use raft::msg::RaftMsg;
use raft::RaftCluster;
use simnet::{DiskModel, NetConfig, NodeId, TraceCtx};

/// Geo deployment of one shard group: which region each replica lives in,
/// plus the fast-read protocol parameters. The group's WAN topology itself
/// travels in [`ShardBuildSpec::net`] (`NetConfig::wan`); this struct binds
/// the group's nodes to it.
#[derive(Clone, Debug)]
pub struct ShardGeo {
    /// Number of regions in the topology. The engine builds one *regional
    /// stub client* per region (node ids `n_replicas..n_replicas +
    /// n_regions`), each homed in its region, so fast reads injected "from
    /// region g" pay that region's network distances.
    pub n_regions: usize,
    /// Region of each replica (`regions[r]` for replica `r`).
    pub regions: Vec<u32>,
    /// Multi-Paxos leader-lease length in µs (`0` disables; Raft ignores
    /// this and serves fast reads through read-index confirmation).
    pub lease_us: u64,
    /// Maximum tolerated clock skew for lease reads in µs.
    pub max_skew_us: u64,
}

/// Everything needed to build one shard group, in one place. Collapsing the
/// old `build_shard` / `build_shard_durable` pair into a single spec-driven
/// constructor removed the silent-fallback duality: an engine either builds
/// what the spec asks for or fails to compile, never "quietly builds
/// something else".
#[derive(Clone, Debug)]
pub struct ShardBuildSpec {
    /// Replicas in the consensus group (the stub client gets id
    /// `n_replicas`).
    pub n_replicas: usize,
    /// Batching/pipelining knob for the group's proposer.
    pub batch: BatchConfig,
    /// Network profile of the group's simulation.
    pub net: NetConfig,
    /// Seed of the group's simulation.
    pub seed: u64,
    /// Durable storage: `(snapshot_threshold, disk model)`. `None` keeps
    /// the RAM-durability model.
    pub durability: Option<(usize, DiskModel)>,
    /// Causal-tracing site id to enable at build time (`None` = tracing
    /// off; the store also enables tracing post-build via
    /// [`ClusterDriver::enable_tracing`]).
    pub trace_site: Option<u32>,
    /// Geo deployment: regional replica homes, regional stub clients, and
    /// fast-read parameters. `None` builds the classic single-datacenter
    /// shard, bit-identical to every pre-geo configuration.
    pub geo: Option<ShardGeo>,
}

impl ShardBuildSpec {
    /// A RAM-durability, untraced spec — the historical `build_shard`
    /// arguments.
    pub fn new(n_replicas: usize, batch: BatchConfig, net: NetConfig, seed: u64) -> Self {
        ShardBuildSpec {
            n_replicas,
            batch,
            net,
            seed,
            durability: None,
            trace_site: None,
            geo: None,
        }
    }

    /// The same shard persisted through a durable storage engine,
    /// checkpointing every `threshold` applied entries over `disk`.
    #[must_use]
    pub fn durable(mut self, threshold: usize, disk: DiskModel) -> Self {
        self.durability = Some((threshold, disk));
        self
    }

    /// The same shard with causal tracing enabled as tracer site `site`.
    #[must_use]
    pub fn tracing(mut self, site: u32) -> Self {
        self.trace_site = Some(site);
        self
    }

    /// The same shard deployed across regions (see [`ShardGeo`]).
    #[must_use]
    pub fn geo(mut self, geo: ShardGeo) -> Self {
        assert_eq!(
            geo.regions.len(),
            self.n_replicas,
            "geo placement must assign every replica a region"
        );
        self.geo = Some(geo);
        self
    }
}

/// A consensus group that the store can use as a replicated shard log.
pub trait ShardEngine: ClusterDriver {
    /// Builds one shard group from `spec`: `spec.n_replicas` replicas plus
    /// one stub client (node id `n_replicas`) whose identity the harness
    /// borrows as the sender of injected submissions. A durable spec
    /// attaches a real storage engine to every replica — there is no
    /// fallback path.
    fn build_shard(spec: &ShardBuildSpec) -> Self
    where
        Self: Sized;

    /// Whether durable specs actually persist state. Both engines now
    /// answer `true`; the method remains so tests can assert the invariant
    /// and future engines must declare themselves.
    fn supports_durable() -> bool
    where
        Self: Sized;

    /// Broadcasts `cmd` to every replica, sent from the stub client node.
    /// Safe to call repeatedly with the same command (dedup applies once).
    fn submit(&mut self, cmd: Command<KvCommand>);

    /// [`ShardEngine::submit`] carrying a causal trace context: the injected
    /// messages (and everything the shard does on their behalf) chain under
    /// the harness-minted root span. The default drops the context, so
    /// engines without tracing support still compose.
    fn submit_traced(&mut self, cmd: Command<KvCommand>, tc: Option<TraceCtx>) {
        let _ = tc;
        self.submit(cmd);
    }

    /// The reply for `(client, seq)` if some replica already applied it.
    /// Valid only while `(client, seq)` is the client's newest command on
    /// this shard — the dedup table keeps one slot per client.
    fn reply_for(&self, client: u32, seq: u64) -> Option<KvResponse>;

    /// Reads `key` from the most-caught-up replica's applied state, without
    /// going through the log. Harness-side introspection only.
    fn peek(&self, key: &str) -> Option<String>;

    // ---- geo fast-read path (active only on geo-built shards) ----------

    /// Injects a fast-path linearizable read of `key` addressed to replica
    /// `target`, sent from region `region`'s stub client so the reply pays
    /// that region's network distance. The replica answers with a
    /// [`ReadMode`]-tagged reply ([`ShardEngine::read_reply`]) — or NACKs
    /// when it cannot prove the read safe. Idempotent per `(client, seq)`.
    fn submit_read(&mut self, client: u32, seq: u64, key: &str, target: usize, region: usize);

    /// The fast-read reply for `(client, seq)`, if one has arrived at any
    /// regional stub: `(value, mode)`.
    fn read_reply(&self, client: u32, seq: u64) -> Option<(Option<String>, ReadMode)>;

    /// The replica a region-`region` client should aim its fast reads at:
    /// for Multi-Paxos the (lease-holding) leader — only it can serve; for
    /// Raft a replica homed in `region` when one exists (read-index lets
    /// followers serve), falling back to the leader.
    fn read_target(&self, region: usize) -> usize;

    /// The region replica `replica` is homed in (`None` on non-geo shards).
    fn replica_region(&self, replica: usize) -> Option<usize>;

    /// Skews replica `replica`'s local clock forward by `offset_us` — the
    /// nemesis lever for driving lease clocks past their safety bound.
    fn set_replica_skew(&mut self, replica: usize, offset_us: u64);
}

impl ShardEngine for MultiPaxosCluster {
    fn build_shard(spec: &ShardBuildSpec) -> Self {
        let n_stubs = spec.geo.as_ref().map_or(1, |g| g.n_regions);
        let mut cluster = MultiPaxosCluster::new_with(
            QuorumSpec::Majority {
                n: spec.n_replicas,
            },
            spec.n_replicas,
            n_stubs,
            0,
            spec.net.clone(),
            spec.seed,
            spec.batch,
            WorkloadMode::Closed,
        );
        if let Some(geo) = &spec.geo {
            cluster = cluster.with_lease(geo.lease_us, geo.max_skew_us);
            for (r, &region) in geo.regions.iter().enumerate() {
                cluster.sim.set_node_region(NodeId::from(r), region as usize);
            }
            for g in 0..geo.n_regions {
                cluster
                    .sim
                    .set_node_region(NodeId::from(spec.n_replicas + g), g);
            }
        }
        if let Some((threshold, disk)) = spec.durability {
            cluster = cluster.with_durability(threshold, disk);
        }
        if let Some(site) = spec.trace_site {
            cluster.enable_tracing(site);
        }
        cluster
    }

    fn supports_durable() -> bool {
        true
    }

    fn submit(&mut self, cmd: Command<KvCommand>) {
        self.submit_traced(cmd, None);
    }

    fn submit_traced(&mut self, cmd: Command<KvCommand>, tc: Option<TraceCtx>) {
        let stub = NodeId::from(self.n_replicas);
        let at = self.sim.now();
        for r in 0..self.n_replicas {
            let msg = MpMsg::Request { cmd: cmd.clone() };
            self.sim.inject_traced(stub, NodeId::from(r), msg, at, tc);
        }
    }

    fn reply_for(&self, client: u32, seq: u64) -> Option<KvResponse> {
        self.replicas()
            .find_map(|r| r.log.machine().cached(client, seq).cloned())
    }

    fn peek(&self, key: &str) -> Option<String> {
        self.replicas()
            .max_by_key(|r| r.log.applied_len())
            .and_then(|r| r.log.machine().kv().get(key).cloned())
    }

    fn submit_read(&mut self, client: u32, seq: u64, key: &str, target: usize, region: usize) {
        let stub = NodeId::from(self.n_replicas + region);
        let at = self.sim.now();
        let msg = MpMsg::ReadReq {
            client,
            seq,
            key: key.to_string(),
        };
        self.sim.inject(stub, NodeId::from(target), msg, at);
    }

    fn read_reply(&self, client: u32, seq: u64) -> Option<(Option<String>, ReadMode)> {
        self.clients()
            .find_map(|c| c.read_replies.get(&(client, seq)).cloned())
    }

    fn read_target(&self, _region: usize) -> usize {
        // Only the lease-holding leader can serve Multi-Paxos fast reads;
        // locality falls out of placement homing the leader near clients.
        self.leader().map_or(0, NodeId::index)
    }

    fn replica_region(&self, replica: usize) -> Option<usize> {
        self.sim.node_region(NodeId::from(replica))
    }

    fn set_replica_skew(&mut self, replica: usize, offset_us: u64) {
        self.sim.set_clock_skew(NodeId::from(replica), offset_us);
    }
}

impl ShardEngine for RaftCluster {
    fn build_shard(spec: &ShardBuildSpec) -> Self {
        let n_stubs = spec.geo.as_ref().map_or(1, |g| g.n_regions);
        let mut cluster = RaftCluster::new_with(
            spec.n_replicas,
            n_stubs,
            0,
            spec.net.clone(),
            spec.seed,
            spec.batch,
            WorkloadMode::Closed,
        );
        if let Some(geo) = &spec.geo {
            for (r, &region) in geo.regions.iter().enumerate() {
                cluster.sim.set_node_region(NodeId::from(r), region as usize);
            }
            for g in 0..geo.n_regions {
                cluster
                    .sim
                    .set_node_region(NodeId::from(spec.n_replicas + g), g);
            }
        }
        if let Some((threshold, disk)) = spec.durability {
            cluster = cluster.with_durability(threshold, disk);
        }
        if let Some(site) = spec.trace_site {
            cluster.enable_tracing(site);
        }
        cluster
    }

    fn supports_durable() -> bool {
        true
    }

    fn submit(&mut self, cmd: Command<KvCommand>) {
        self.submit_traced(cmd, None);
    }

    fn submit_traced(&mut self, cmd: Command<KvCommand>, tc: Option<TraceCtx>) {
        let stub = NodeId::from(self.n_replicas);
        let at = self.sim.now();
        for r in 0..self.n_replicas {
            let msg = RaftMsg::Request { cmd: cmd.clone() };
            self.sim.inject_traced(stub, NodeId::from(r), msg, at, tc);
        }
    }

    fn reply_for(&self, client: u32, seq: u64) -> Option<KvResponse> {
        self.replicas()
            .find_map(|r| r.machine().cached(client, seq).cloned())
    }

    fn peek(&self, key: &str) -> Option<String> {
        self.replicas()
            .max_by_key(|r| r.last_applied)
            .and_then(|r| r.machine().kv().get(key).cloned())
    }

    fn submit_read(&mut self, client: u32, seq: u64, key: &str, target: usize, region: usize) {
        let stub = NodeId::from(self.n_replicas + region);
        let at = self.sim.now();
        let msg = RaftMsg::ReadReq {
            client,
            seq,
            key: key.to_string(),
        };
        self.sim.inject(stub, NodeId::from(target), msg, at);
    }

    fn read_reply(&self, client: u32, seq: u64) -> Option<(Option<String>, ReadMode)> {
        self.clients()
            .find_map(|c| c.read_replies.get(&(client, seq)).cloned())
    }

    fn read_target(&self, region: usize) -> usize {
        // Read-index lets any replica serve, so prefer one homed in the
        // client's region; otherwise aim at the leader.
        (0..self.n_replicas)
            .find(|&r| self.sim.node_region(NodeId::from(r)) == Some(region))
            .or_else(|| self.leader().map(NodeId::index))
            .unwrap_or(0)
    }

    fn replica_region(&self, replica: usize) -> Option<usize> {
        self.sim.node_region(NodeId::from(replica))
    }

    fn set_replica_skew(&mut self, replica: usize, offset_us: u64) {
        self.sim.set_clock_skew(NodeId::from(replica), offset_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Time;

    fn drive<E: ShardEngine>(mut shard: E) {
        // Submit through the harness path: broadcast, step, poll.
        let cmd = Command {
            client: 100,
            seq: 1,
            op: KvCommand::Put {
                key: "alpha".into(),
                value: "1".into(),
            },
        };
        let mut t = 20_000; // past initial leader election
        shard.run_until(Time(t));
        shard.submit(cmd.clone());
        let reply = loop {
            t += 500;
            shard.run_until(Time(t));
            if let Some(r) = shard.reply_for(100, 1) {
                break r;
            }
            if t % 25_000 == 0 {
                shard.submit(cmd.clone()); // retransmit
            }
            assert!(t < 5_000_000, "submission never applied");
        };
        assert_eq!(reply, KvResponse::Ok);
        assert_eq!(shard.peek("alpha"), Some("1".to_string()));
        assert_eq!(shard.peek("missing"), None);
    }

    fn spec() -> ShardBuildSpec {
        ShardBuildSpec::new(3, BatchConfig::unbatched(), NetConfig::lan(), 7)
    }

    #[test]
    fn paxos_shard_applies_injected_commands() {
        drive(MultiPaxosCluster::build_shard(&spec()));
    }

    #[test]
    fn raft_shard_applies_injected_commands() {
        drive(RaftCluster::build_shard(&spec()));
    }

    #[test]
    fn durable_specs_apply_injected_commands_on_both_engines() {
        let durable = spec().durable(8, DiskModel::ssd());
        drive(MultiPaxosCluster::build_shard(&durable));
        drive(RaftCluster::build_shard(&durable));
        assert!(MultiPaxosCluster::supports_durable());
        assert!(RaftCluster::supports_durable());
    }
}
