//! The shard engine abstraction: one consensus group serving one shard.
//!
//! A [`ShardEngine`] is any [`ClusterDriver`] the store can additionally
//! *drive as a log service*: the router harness injects client commands into
//! the group, observes replies by reading the replicas' dedup tables, and
//! peeks at applied state. Multi-Paxos and Raft both qualify — the store is
//! deliberately engine-agnostic, which is the tutorial's point that 2PC
//! layered over consensus does not care which consensus it is layered over.
//!
//! Submission model: every injected command is broadcast to all replicas
//! from a *stub client* node (a workload client with zero commands). Only
//! the leader proposes it; followers answer `NotLeader`, which the stub
//! ignores. The `(client, seq)` dedup table guarantees at-most-once apply,
//! so the harness may re-broadcast the same command forever until some
//! replica shows a cached reply for it — "applied on one replica" implies
//! "decided in the shard log".

use consensus_core::driver::{BatchConfig, ClusterDriver};
use consensus_core::smr::{Command, KvCommand, KvResponse};
use consensus_core::workload::WorkloadMode;
use consensus_core::QuorumSpec;
use paxos::multi::{MpMsg, MultiPaxosCluster};
use raft::msg::RaftMsg;
use raft::RaftCluster;
use simnet::{DiskModel, NetConfig, NodeId, TraceCtx};

/// A consensus group that the store can use as a replicated shard log.
pub trait ShardEngine: ClusterDriver {
    /// Builds one shard group: `n_replicas` replicas plus one stub client
    /// (node id `n_replicas`) whose identity the harness borrows as the
    /// sender of injected submissions.
    fn build_shard(n_replicas: usize, batch: BatchConfig, net: NetConfig, seed: u64) -> Self
    where
        Self: Sized;

    /// Builds a shard whose replicas persist through a durable storage
    /// engine, checkpointing every `threshold` applied entries over `disk`.
    /// The default falls back to [`ShardEngine::build_shard`] — engines
    /// without durable support keep the RAM-durability model, so the store
    /// composes with both.
    fn build_shard_durable(
        n_replicas: usize,
        batch: BatchConfig,
        net: NetConfig,
        seed: u64,
        threshold: usize,
        disk: DiskModel,
    ) -> Self
    where
        Self: Sized,
    {
        let _ = (threshold, disk);
        Self::build_shard(n_replicas, batch, net, seed)
    }

    /// Whether [`ShardEngine::build_shard_durable`] actually persists
    /// state, or silently falls back to the RAM model. The store records a
    /// fallback in its run trace (and fingerprint), so a durability request
    /// an engine cannot honor is visible rather than silent.
    fn supports_durable() -> bool
    where
        Self: Sized,
    {
        false
    }

    /// Broadcasts `cmd` to every replica, sent from the stub client node.
    /// Safe to call repeatedly with the same command (dedup applies once).
    fn submit(&mut self, cmd: Command<KvCommand>);

    /// [`ShardEngine::submit`] carrying a causal trace context: the injected
    /// messages (and everything the shard does on their behalf) chain under
    /// the harness-minted root span. The default drops the context, so
    /// engines without tracing support still compose.
    fn submit_traced(&mut self, cmd: Command<KvCommand>, tc: Option<TraceCtx>) {
        let _ = tc;
        self.submit(cmd);
    }

    /// The reply for `(client, seq)` if some replica already applied it.
    /// Valid only while `(client, seq)` is the client's newest command on
    /// this shard — the dedup table keeps one slot per client.
    fn reply_for(&self, client: u32, seq: u64) -> Option<KvResponse>;

    /// Reads `key` from the most-caught-up replica's applied state, without
    /// going through the log. Harness-side introspection only.
    fn peek(&self, key: &str) -> Option<String>;
}

impl ShardEngine for MultiPaxosCluster {
    fn build_shard(n_replicas: usize, batch: BatchConfig, net: NetConfig, seed: u64) -> Self {
        MultiPaxosCluster::new_with(
            QuorumSpec::Majority { n: n_replicas },
            n_replicas,
            1,
            0,
            net,
            seed,
            batch,
            WorkloadMode::Closed,
        )
    }

    fn build_shard_durable(
        n_replicas: usize,
        batch: BatchConfig,
        net: NetConfig,
        seed: u64,
        threshold: usize,
        disk: DiskModel,
    ) -> Self {
        Self::build_shard(n_replicas, batch, net, seed).with_durability(threshold, disk)
    }

    fn supports_durable() -> bool {
        true
    }

    fn submit(&mut self, cmd: Command<KvCommand>) {
        self.submit_traced(cmd, None);
    }

    fn submit_traced(&mut self, cmd: Command<KvCommand>, tc: Option<TraceCtx>) {
        let stub = NodeId::from(self.n_replicas);
        let at = self.sim.now();
        for r in 0..self.n_replicas {
            let msg = MpMsg::Request { cmd: cmd.clone() };
            self.sim.inject_traced(stub, NodeId::from(r), msg, at, tc);
        }
    }

    fn reply_for(&self, client: u32, seq: u64) -> Option<KvResponse> {
        self.replicas()
            .find_map(|r| r.log.machine().cached(client, seq).cloned())
    }

    fn peek(&self, key: &str) -> Option<String> {
        self.replicas()
            .max_by_key(|r| r.log.applied_len())
            .and_then(|r| r.log.machine().kv().get(key).cloned())
    }
}

impl ShardEngine for RaftCluster {
    fn build_shard(n_replicas: usize, batch: BatchConfig, net: NetConfig, seed: u64) -> Self {
        RaftCluster::new_with(
            n_replicas,
            1,
            0,
            net,
            seed,
            batch,
            WorkloadMode::Closed,
        )
    }

    fn submit(&mut self, cmd: Command<KvCommand>) {
        self.submit_traced(cmd, None);
    }

    fn submit_traced(&mut self, cmd: Command<KvCommand>, tc: Option<TraceCtx>) {
        let stub = NodeId::from(self.n_replicas);
        let at = self.sim.now();
        for r in 0..self.n_replicas {
            let msg = RaftMsg::Request { cmd: cmd.clone() };
            self.sim.inject_traced(stub, NodeId::from(r), msg, at, tc);
        }
    }

    fn reply_for(&self, client: u32, seq: u64) -> Option<KvResponse> {
        self.replicas()
            .find_map(|r| r.machine().cached(client, seq).cloned())
    }

    fn peek(&self, key: &str) -> Option<String> {
        self.replicas()
            .max_by_key(|r| r.last_applied)
            .and_then(|r| r.machine().kv().get(key).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Time;

    fn drive<E: ShardEngine>(mut shard: E) {
        // Submit through the harness path: broadcast, step, poll.
        let cmd = Command {
            client: 100,
            seq: 1,
            op: KvCommand::Put {
                key: "alpha".into(),
                value: "1".into(),
            },
        };
        let mut t = 20_000; // past initial leader election
        shard.run_until(Time(t));
        shard.submit(cmd.clone());
        let reply = loop {
            t += 500;
            shard.run_until(Time(t));
            if let Some(r) = shard.reply_for(100, 1) {
                break r;
            }
            if t % 25_000 == 0 {
                shard.submit(cmd.clone()); // retransmit
            }
            assert!(t < 5_000_000, "submission never applied");
        };
        assert_eq!(reply, KvResponse::Ok);
        assert_eq!(shard.peek("alpha"), Some("1".to_string()));
        assert_eq!(shard.peek("missing"), None);
    }

    #[test]
    fn paxos_shard_applies_injected_commands() {
        drive(MultiPaxosCluster::build_shard(
            3,
            BatchConfig::unbatched(),
            NetConfig::lan(),
            7,
        ));
    }

    #[test]
    fn raft_shard_applies_injected_commands() {
        drive(RaftCluster::build_shard(
            3,
            BatchConfig::unbatched(),
            NetConfig::lan(),
            7,
        ));
    }
}
