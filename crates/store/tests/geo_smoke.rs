//! Geo-store end-to-end tests: region-local fast reads over both engines,
//! the clock-skew lease matrix, and determinism of the WAN deployment.

use consensus_core::txn::TxnDecision;
use consensus_core::ReadMode;
use paxos::MultiPaxosCluster;
use raft::RaftCluster;
use simnet::Time;
use store::{GeoConfig, PlacementPolicy, ShardEngine, Store, StoreConfig};

/// WAN rounds are ~40 ms each; give the workload room.
const HORIZON: Time = Time(60_000_000);

fn geo_cfg(seed: u64) -> StoreConfig {
    StoreConfig::small(seed).routers(3).geo(GeoConfig::three_dc())
}

fn run_geo<E: ShardEngine>(cfg: StoreConfig) -> Store<E> {
    let mut s: Store<E> = Store::new(cfg);
    assert!(s.run(HORIZON), "geo store did not quiesce");
    s
}

fn geo_store_serves_local_reads<E: ShardEngine>(fast: ReadMode) {
    let s = run_geo::<E>(geo_cfg(7));
    // Cross-shard transactions still commit across the WAN.
    let outcomes = s.outcomes();
    assert!(
        outcomes
            .iter()
            .any(|o| o.decision == TxnDecision::Commit && o.span > 1),
        "no committed cross-shard txn"
    );
    // Every geo read completed, each exactly once.
    let reads = s.read_outcomes();
    assert_eq!(reads.len(), 3 * 8, "3 routers x 8 reads each");
    // The fast path actually fired: some reads were served region-locally
    // in the engine's fast mode, and local fast reads are much cheaper
    // than a WAN round trip.
    let local: Vec<_> = reads.iter().filter(|r| r.local).collect();
    assert!(!local.is_empty(), "no region-local fast reads served");
    assert!(
        local.iter().all(|r| r.mode == fast),
        "local reads must use the fast mode, got {:?}",
        local.iter().map(|r| r.mode).collect::<Vec<_>>()
    );
    // Reads of shards *primary-homed* in the router's region never pay a
    // WAN round trip: the lease holder — or the leader a read-index
    // confirmation round-trips to — is in the same region. (A read-index
    // read served by a local witness of a remote-primary shard is still
    // `local` for data, but its confirmation crosses the WAN.)
    let min_wan_rtt = 2 * 18_000; // three_dc inter-region one-way floor x2
    let primary_local: Vec<_> = local
        .iter()
        .filter(|r| s.shard_map().primary_region(r.shard) == Some(r.region))
        .collect();
    assert!(!primary_local.is_empty(), "no primary-local reads served");
    for r in &primary_local {
        assert!(
            r.latency_us < min_wan_rtt,
            "primary-local read of {} took {} µs — paid a WAN round trip",
            r.key,
            r.latency_us
        );
    }
    // No read is ever left NACKed: a NACK falls back to the log.
    assert!(reads.iter().all(|r| r.mode != ReadMode::Nack));
    // Histories are complete: every read invoke got exactly one response.
    let history = s.history();
    assert!(history
        .iter()
        .filter(|r| r.client >= store::ROUTER_BASE && r.client < store::RECOVERY_CLIENT)
        .all(|r| r.is_complete()));
}

#[test]
fn paxos_geo_store_serves_local_lease_reads() {
    geo_store_serves_local_reads::<MultiPaxosCluster>(ReadMode::Lease);
}

#[test]
fn raft_geo_store_serves_local_read_index_reads() {
    geo_store_serves_local_reads::<RaftCluster>(ReadMode::ReadIndex);
}

/// The clock-skew lease matrix: skews below the safety bound keep lease
/// reads on the fast path; skews past it force every lease read onto the
/// log fallback — and either way the value read is the current committed
/// value, never stale.
#[test]
fn lease_matrix_skew_past_bound_falls_back_never_stale() {
    // (skew_us, fast path still allowed?) — the bound is 5_000 µs.
    for (skew, fast_ok) in [(0u64, true), (4_000, true), (12_000, false)] {
        // One router: its reads run after its writes, so at read time the
        // store is quiescent and `peek` is the linearizable expectation.
        let cfg = StoreConfig::small(19)
            .routers(1)
            .geo(GeoConfig::three_dc().local_read_pct(100));
        let mut s: Store<MultiPaxosCluster> = Store::new(cfg);
        let rps = s.cfg.replicas_per_shard as u32;
        if skew > 0 {
            for shard in 0..s.cfg.n_shards as u32 {
                s.set_replica_skew(shard * rps, skew);
            }
        }
        assert!(s.run(HORIZON), "skew={skew}: store did not quiesce");
        let reads = s.read_outcomes();
        assert_eq!(reads.len(), 8, "skew={skew}");
        for r in &reads {
            if fast_ok {
                assert_eq!(r.mode, ReadMode::Lease, "skew={skew} key={}", r.key);
            } else {
                assert_eq!(
                    r.mode,
                    ReadMode::Log,
                    "skew={skew} past the bound must fall back, key={}",
                    r.key
                );
                assert!(!r.local, "fallback reads pay the log round");
            }
            assert_eq!(
                r.value.as_deref(),
                s.peek(&r.key).as_deref(),
                "skew={skew}: read of {} returned a stale value",
                r.key
            );
        }
    }
}

/// Raft's read index is clock-free: the same skew that disables Multi-Paxos
/// leases leaves follower reads on the fast path.
#[test]
fn raft_read_index_is_immune_to_clock_skew() {
    let cfg = StoreConfig::small(19)
        .routers(1)
        .geo(GeoConfig::three_dc().local_read_pct(100));
    let mut s: Store<RaftCluster> = Store::new(cfg);
    let rps = s.cfg.replicas_per_shard as u32;
    for shard in 0..s.cfg.n_shards as u32 {
        s.set_replica_skew(shard * rps, 1_000_000);
    }
    assert!(s.run(HORIZON));
    let reads = s.read_outcomes();
    assert_eq!(reads.len(), 8);
    assert!(
        reads.iter().all(|r| r.mode == ReadMode::ReadIndex),
        "read-index reads must not care about clocks: {:?}",
        reads.iter().map(|r| r.mode).collect::<Vec<_>>()
    );
}

#[test]
fn geo_runs_are_deterministic_and_non_geo_stores_are_untouched() {
    let run = |seed: u64| {
        let mut s: Store<MultiPaxosCluster> = Store::new(geo_cfg(seed));
        assert!(s.run(HORIZON));
        (s.fingerprint(), s.trace().len(), s.messages_sent())
    };
    assert_eq!(run(21), run(21), "same seed must replay bit-for-bit");
    assert_ne!(run(21).0, run(22).0);
    // A store without a geo config has no geo machinery at all: no reads,
    // no placement, no extra stub clients in the serialized map.
    let mut plain: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(21));
    assert!(plain.run(HORIZON));
    assert!(plain.read_outcomes().is_empty());
    assert!(plain.shard_map().placement().is_none());
    assert!(plain.trace().iter().all(|l| !l.contains("georead")));
}

/// Placement policies change where reads are served from: single-region
/// placement makes every shard fully local to one region, so a router in
/// that region serves all its reads locally.
#[test]
fn single_region_placement_maximizes_locality() {
    let cfg = StoreConfig::small(23)
        .routers(3)
        .geo(GeoConfig::three_dc()
            .placement(PlacementPolicy::SingleRegion)
            .local_read_pct(100));
    let s = run_geo::<MultiPaxosCluster>(cfg);
    let reads = s.read_outcomes();
    assert_eq!(reads.len(), 3 * 8);
    // 100% local mix + single-region placement: every fast read that was
    // served (not fallen back) is local.
    let fast: Vec<_> = reads.iter().filter(|r| r.mode != ReadMode::Log).collect();
    assert!(!fast.is_empty());
    assert!(
        fast.iter().all(|r| r.local),
        "single-region placement with a local mix should serve locally"
    );
}
