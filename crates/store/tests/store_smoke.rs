//! End-to-end store tests: fault-free commits, determinism, router-crash
//! recovery, and the headline blocking-2PC vs replicated-2PC contrast.

use atomic_commit::two_phase;
use atomic_commit::TxnState;
use consensus_core::txn::{self, TxnDecision};
use paxos::MultiPaxosCluster;
use raft::RaftCluster;
use simnet::{NetConfig, Time};
use store::{CommitBackend, RouterCrashPoint, ShardEngine, Store, StoreConfig};

const HORIZON: Time = Time(20_000_000);

fn committed_values_visible<E: ShardEngine>(s: &Store<E>) {
    // Every committed transaction's writes must be visible (or overwritten
    // by a later write); no aborted transaction's write may be visible.
    let outcomes = s.outcomes();
    for o in &outcomes {
        assert!(o.span >= 1 && o.span <= s.cfg.n_shards);
    }
    let committed: Vec<_> = outcomes
        .iter()
        .filter(|o| o.decision == TxnDecision::Commit)
        .map(|o| o.tid)
        .collect();
    for (_, key) in s.pool_keys() {
        if let Some(v) = s.peek(&key) {
            if let Some(tid) = txn::tagged_txn(&v) {
                assert!(
                    committed.contains(&tid)
                        || s.recovered()
                            .iter()
                            .any(|(t, d)| *t == tid && *d == TxnDecision::Commit),
                    "visible value {v} of key {key} from a non-committed txn"
                );
            }
        }
    }
}

fn fault_free<E: ShardEngine>() {
    let mut s: Store<E> = Store::new(StoreConfig::small(11));
    assert!(s.run(HORIZON), "store did not quiesce");
    let outcomes = s.outcomes();
    assert_eq!(outcomes.len(), 2 * 3, "2 routers x 3 txns each");
    assert!(
        outcomes.iter().any(|o| o.decision == TxnDecision::Commit),
        "at least one commit expected"
    );
    assert!(
        outcomes.iter().any(|o| o.span > 1),
        "at least one cross-shard txn expected"
    );
    committed_values_visible(&s);
    // Audit completed: one Get per pool key, all answered.
    let history = s.history();
    let audits = history
        .iter()
        .filter(|r| r.client == store::AUDIT_CLIENT)
        .count();
    assert_eq!(audits, s.pool_keys().len());
    assert!(history
        .iter()
        .filter(|r| r.client == store::AUDIT_CLIENT)
        .all(|r| r.is_complete()));
}

#[test]
fn paxos_store_commits_cross_shard_txns() {
    fault_free::<MultiPaxosCluster>();
}

#[test]
fn raft_store_commits_cross_shard_txns() {
    fault_free::<RaftCluster>();
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let run = |engine_seed: u64| {
        let mut s: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(engine_seed));
        assert!(s.run(HORIZON));
        (s.fingerprint(), s.trace().len(), s.messages_sent())
    };
    assert_eq!(run(42), run(42), "same seed must replay bit-for-bit");
    assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
}

fn crash_recovery_case<E: ShardEngine>(point: RouterCrashPoint, seed: u64) {
    let mut s: Store<E> = Store::new(StoreConfig::small(seed));
    s.crash_router_on_txn(0, 0, point);
    assert!(s.run(HORIZON), "store did not quiesce after router crash");
    // Recovery must have resolved router 0's first transaction.
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    let resolved = s.recovered().iter().find(|(t, _)| *t == tid);
    let (_, decision) = resolved.expect("recovery never claimed the orphaned txn");
    match point {
        // The decision was still open: recovery's abort-CAS wins.
        RouterCrashPoint::BeforePrepare | RouterCrashPoint::AfterPrepare => {
            assert_eq!(*decision, TxnDecision::Abort);
        }
        RouterCrashPoint::AfterEarlyWrites => unreachable!("buggy-mode-only crash point"),
        // Commit was durable before the crash: recovery completes it.
        RouterCrashPoint::AfterDecide => {
            assert_eq!(*decision, TxnDecision::Commit);
            // The decision entry is durable on the coordinator shard
            // (control keys route by coordinator, not by hash — scan).
            let dec = s
                .shards()
                .iter()
                .find_map(|e| e.peek(&txn::decision_key(tid)));
            assert_eq!(dec.as_deref(), Some("commit"));
        }
    }
    committed_values_visible(&s);
    // The surviving router still finished its workload.
    assert!(s.router_done(1));
}

#[test]
fn paxos_recovery_resolves_all_crash_points() {
    for (i, point) in [
        RouterCrashPoint::BeforePrepare,
        RouterCrashPoint::AfterPrepare,
        RouterCrashPoint::AfterDecide,
    ]
    .into_iter()
    .enumerate()
    {
        crash_recovery_case::<MultiPaxosCluster>(point, 20 + i as u64);
    }
}

#[test]
fn raft_recovery_resolves_all_crash_points() {
    for (i, point) in [
        RouterCrashPoint::BeforePrepare,
        RouterCrashPoint::AfterPrepare,
        RouterCrashPoint::AfterDecide,
    ]
    .into_iter()
    .enumerate()
    {
        crash_recovery_case::<RaftCluster>(point, 30 + i as u64);
    }
}

#[test]
fn unreplicated_two_pc_blocks_where_the_store_recovers() {
    // The same fault — the 2PC coordinator dies after collecting votes —
    // in both worlds. Plain 2PC: participants stay blocked forever.
    let mut blocked = two_phase::build_with_crash(
        &[true, true, true],
        two_phase::CrashPoint::AfterVotes,
        NetConfig::lan(),
        5,
    );
    blocked.run_until(Time::from_secs(5));
    assert!(
        two_phase::participant_states(&blocked)
            .iter()
            .all(|s| *s == TxnState::Ready),
        "plain 2PC participants must block in Ready"
    );

    // The store: the router (coordinator) dies after every participant
    // prepared, before the decision — and the system still terminates,
    // because decision and prepare state live in replicated shard logs.
    let mut s: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(5));
    s.crash_router_on_txn(0, 0, RouterCrashPoint::AfterPrepare);
    assert!(s.run(HORIZON));
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    assert!(
        s.recovered().iter().any(|(t, _)| *t == tid),
        "the store's recovery must resolve the orphaned txn"
    );
}

#[test]
fn restarted_router_abandons_txn_and_finishes_workload() {
    let mut s: Store<RaftCluster> = Store::new(StoreConfig::small(77));
    s.crash_router_on_txn(0, 0, RouterCrashPoint::AfterPrepare);
    s.restart_router_at(0, 300_000);
    assert!(s.run(HORIZON));
    // The abandoned txn went to recovery, and the router completed the
    // rest of its items after restarting.
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    assert!(s.recovered().iter().any(|(t, _)| *t == tid));
    assert!(s.router_done(0), "restarted router should finish");
    committed_values_visible(&s);
}

#[test]
fn buggy_early_writes_leak_aborted_state() {
    // The injected bug: the coordinator disseminates data writes before its
    // decision entry is replicated. Crash it in that window and recovery's
    // abort-CAS wins — yet the "committed" writes are already visible.
    let mut s: Store<MultiPaxosCluster> = Store::new(StoreConfig::new(11).buggy_early_writes(true));
    s.crash_router_on_txn(0, 0, RouterCrashPoint::AfterEarlyWrites);
    assert!(s.run(HORIZON));
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    assert!(
        s.recovered().contains(&(tid, TxnDecision::Abort)),
        "recovery must abort the formally-undecided txn"
    );
    let leaked = s.pool_keys().iter().any(|(_, key)| {
        s.peek(key)
            .and_then(|v| txn::tagged_txn(&v))
            .is_some_and(|t| t == tid)
    });
    assert!(leaked, "the aborted txn's early writes must be visible");
}

#[test]
fn durable_paxos_store_survives_replica_crash_restart() {
    // With durable shard storage, a crashed replica's promised/accepted/log
    // state really is gone from RAM: recovery must rebuild it from the
    // engine's checkpoint + WAL. The store-level guarantees (committed
    // writes visible, audit clean) must hold across that path.
    let mut s: Store<MultiPaxosCluster> =
        Store::new(StoreConfig::small(13).durable(8, simnet::DiskModel::ssd()));
    for shard in 0..s.cfg.n_shards as u32 {
        s.crash_node_at(shard * 3 + 2, 20_000);
        s.restart_node_at(shard * 3 + 2, 32_000);
    }
    assert!(s.run(HORIZON), "durable store must quiesce after restarts");
    assert_eq!(s.outcomes().len(), 6);
    committed_values_visible(&s);
    // White-box: every restarted replica took the WAL-replay recovery path.
    for e in s.shards() {
        let r = e.replicas().nth(2).expect("replica 2 exists");
        let stats = r.storage_stats().expect("durable engine attached");
        assert_eq!(stats.recoveries, 1, "replica 2 must have recovered once");
        assert!(r.last_recovery_io_us > 0, "recovery must charge disk time");
    }
}

#[test]
fn durable_coordinator_shard_recovers_in_flight_decision() {
    // WAL-before-decision, explicitly: the router crashes right after its
    // commit decision became durable (the data writes are still owed), and
    // separately a replica of every shard is crash+restarted. The restarted
    // coordinator-shard replica must rebuild the decision record from its
    // checkpoint + first-class `TxnDecision` WAL records — answerable
    // directly from its decision table, not by replaying client history.
    let seed = probe_committing_seed(13);
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    let mut s: Store<MultiPaxosCluster> =
        Store::new(StoreConfig::small(seed).durable(8, simnet::DiskModel::ssd()));
    s.crash_router_on_txn(0, 0, RouterCrashPoint::AfterDecide);
    assert!(s.run(HORIZON), "durable store must quiesce");
    // Recovery completed the in-flight commit.
    assert!(s.recovered().contains(&(tid, TxnDecision::Commit)));
    committed_values_visible(&s);
    let dec_key = txn::decision_key(tid);
    let coord = s
        .shards()
        .iter()
        .position(|e| e.peek(&dec_key).is_some())
        .expect("decision record must exist on some shard");
    // Now crash + restart a coordinator-shard replica: its RAM state is
    // gone; the decision table must come back from disk.
    let global = (coord * s.cfg.replicas_per_shard + 2) as u32;
    let now = s.now();
    s.crash_node_at(global, now + 10_000);
    s.restart_node_at(global, now + 30_000);
    let end = now + 1_000_000;
    while s.now() < end {
        s.step();
    }
    let r = s.shards()[coord]
        .replicas()
        .nth(2)
        .expect("replica 2 exists");
    assert_eq!(
        r.storage_stats().expect("durable engine attached").recoveries,
        1
    );
    assert_eq!(
        r.txn_decisions().get(&dec_key).map(String::as_str),
        Some("commit"),
        "restarted replica must recover the in-flight decision"
    );
    // At least one coordinator-shard replica appended the decision as a
    // first-class WAL record.
    assert!(s.shards()[coord]
        .replicas()
        .any(|r| r.txn_decisions_logged > 0));
}

#[test]
fn durable_store_same_seed_fingerprints_are_bit_identical() {
    // Determinism survives the full durability stack: disk latency
    // accounting, WAL replay, checkpoint install — same seed, same bits.
    let run = || {
        let mut s: Store<MultiPaxosCluster> =
            Store::new(StoreConfig::small(42).durable(8, simnet::DiskModel::ssd()));
        for shard in 0..s.cfg.n_shards as u32 {
            s.crash_node_at(shard * 3 + 2, 20_000);
            s.restart_node_at(shard * 3 + 2, 32_000);
        }
        assert!(s.run(HORIZON));
        (s.fingerprint(), s.messages_sent())
    };
    assert_eq!(run(), run(), "durable runs must replay bit-for-bit");
}

#[test]
fn durable_raft_store_survives_replica_crash_restart() {
    // The Raft mirror of the paxos durable test: a crashed replica's
    // term/vote/log state really is gone from RAM, and recovery must
    // rebuild it from the engine's checkpoint + WAL. Both engines answer
    // for durability now — there is no fallback path left.
    assert!(RaftCluster::supports_durable());
    assert!(MultiPaxosCluster::supports_durable());
    let mut s: Store<RaftCluster> =
        Store::new(StoreConfig::new(13).durable(8, simnet::DiskModel::ssd()));
    for shard in 0..s.cfg.n_shards as u32 {
        s.crash_node_at(shard * 3 + 2, 20_000);
        s.restart_node_at(shard * 3 + 2, 32_000);
    }
    assert!(s.run(HORIZON), "durable raft store must quiesce after restarts");
    assert_eq!(s.outcomes().len(), 6);
    committed_values_visible(&s);
    // White-box: every restarted replica took the WAL-replay recovery path.
    for e in s.shards() {
        let r = e.replicas().nth(2).expect("replica 2 exists");
        let stats = r.storage_stats().expect("durable engine attached");
        assert_eq!(stats.recoveries, 1, "replica 2 must have recovered once");
        assert!(r.last_recovery_io_us > 0, "recovery must charge disk time");
    }
}

#[test]
fn durable_raft_store_same_seed_fingerprints_are_bit_identical() {
    // The crash/restart schedule replays bit-for-bit through Raft's full
    // durability stack: WAL group commits, checkpoint truncation, recovery.
    let run = || {
        let mut s: Store<RaftCluster> =
            Store::new(StoreConfig::new(42).durable(8, simnet::DiskModel::ssd()));
        for shard in 0..s.cfg.n_shards as u32 {
            s.crash_node_at(shard * 3 + 2, 20_000);
            s.restart_node_at(shard * 3 + 2, 32_000);
        }
        assert!(s.run(HORIZON));
        (s.fingerprint(), s.messages_sent())
    };
    assert_eq!(run(), run(), "durable raft runs must replay bit-for-bit");
}

// ---- range queries -------------------------------------------------------

/// A single-router workload is strictly sequential, so by the time its
/// range scans run, everything it wrote is applied — making the merged
/// results a pure function of the workload, not of engine timing.
fn sequential_range_cfg(seed: u64) -> StoreConfig {
    StoreConfig::new(seed)
        .routers(1)
        .txns_per_router(3)
        .singles_per_router(6)
        .ranges_per_router(3)
}

type MergedRange = (String, String, usize, Vec<(String, String)>);

fn merged_ranges<E: ShardEngine>(cfg: StoreConfig) -> Vec<MergedRange> {
    let mut s: Store<E> = Store::new(cfg);
    assert!(s.run(HORIZON), "range store did not quiesce");
    committed_values_visible(&s);
    s.range_results()
        .into_iter()
        .map(|o| (o.start, o.end, o.limit, o.entries))
        .collect()
}

#[test]
fn range_queries_merge_deterministically_across_shards() {
    // Scan bounds and key pools are seed-derived, so not every seed's
    // scans catch written keys on two shards — probe until one does,
    // checking well-formedness of every merged result along the way.
    let mut spans_shards = false;
    for seed in 11..40 {
        let mut s: Store<MultiPaxosCluster> = Store::new(sequential_range_cfg(seed));
        assert!(s.run(HORIZON));
        let results = s.range_results();
        assert_eq!(results.len(), 3, "every generated range must complete");
        for o in &results {
            assert!(o.entries.len() <= o.limit, "limit must bound the merge");
            for w in o.entries.windows(2) {
                assert!(w[0].0 < w[1].0, "merged keys must be strictly ascending");
            }
            for (k, _) in &o.entries {
                assert!(
                    k.as_str() >= o.start.as_str() && k.as_str() < o.end.as_str(),
                    "key {k} outside [{},{})",
                    o.start,
                    o.end
                );
            }
            let shards: std::collections::BTreeSet<usize> =
                o.entries.iter().map(|(k, _)| s.shard_of(k)).collect();
            spans_shards |= shards.len() >= 2;
        }
        if spans_shards {
            return;
        }
    }
    panic!("no seed in 11..40 produced a multi-shard merged range");
}

#[test]
fn range_results_are_identical_across_engines_and_knobs() {
    // The cross-engine equivalence sweep: paxos vs raft, RAM vs durable,
    // unbatched vs batched — six configurations, one merged answer.
    for seed in [11, 12, 13] {
        let baseline = merged_ranges::<MultiPaxosCluster>(sequential_range_cfg(seed));
        assert!(
            baseline.iter().any(|(_, _, _, entries)| !entries.is_empty()),
            "seed {seed}: ranges returned nothing to compare"
        );
        assert_eq!(
            merged_ranges::<RaftCluster>(sequential_range_cfg(seed)),
            baseline,
            "raft diverged at seed {seed}"
        );
        assert_eq!(
            merged_ranges::<MultiPaxosCluster>(
                sequential_range_cfg(seed).durable(8, simnet::DiskModel::ssd())
            ),
            baseline,
            "durable paxos diverged at seed {seed}"
        );
        assert_eq!(
            merged_ranges::<RaftCluster>(
                sequential_range_cfg(seed).durable(8, simnet::DiskModel::ssd())
            ),
            baseline,
            "durable raft diverged at seed {seed}"
        );
        let batch = consensus_core::BatchConfig::new(4, 300, 4);
        assert_eq!(
            merged_ranges::<MultiPaxosCluster>(sequential_range_cfg(seed).batch(batch)),
            baseline,
            "batched paxos diverged at seed {seed}"
        );
        assert_eq!(
            merged_ranges::<RaftCluster>(sequential_range_cfg(seed).batch(batch)),
            baseline,
            "batched raft diverged at seed {seed}"
        );
    }
}

// ---- commit backends -----------------------------------------------------

/// First seed in `base..base+32` whose fault-free default-backend run
/// commits router 0's txn 0 across ≥ 2 shards (so a coordinator crash has
/// something to block).
fn probe_committing_seed(base: u64) -> u64 {
    for seed in base..base + 32 {
        let mut s: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(seed));
        assert!(s.run(HORIZON));
        let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
        if s.outcomes()
            .iter()
            .any(|o| o.tid == tid && o.decision == TxnDecision::Commit && o.span >= 2)
        {
            return seed;
        }
    }
    panic!("no committing multi-shard txn found near seed {base}");
}

fn backend_outcomes(backend: CommitBackend, seed: u64) -> Vec<(String, &'static str)> {
    let mut s: Store<MultiPaxosCluster> =
        Store::new(StoreConfig::small(seed).backend(backend));
    assert!(s.run(HORIZON), "{backend:?} store did not quiesce");
    committed_values_visible(&s);
    // Completion *order* may shift with the backend's message pattern; the
    // per-transaction decisions are what must agree.
    let mut v: Vec<(String, &'static str)> = s
        .outcomes()
        .iter()
        .map(|o| (o.tid.to_string(), o.decision.as_str()))
        .collect();
    v.sort();
    v
}

#[test]
fn paxos_commit_backend_commits_cross_shard_txns() {
    let mut s: Store<MultiPaxosCluster> =
        Store::new(StoreConfig::small(11).backend(CommitBackend::PaxosCommit));
    assert!(s.run(HORIZON), "paxos-commit store did not quiesce");
    let outcomes = s.outcomes();
    assert_eq!(outcomes.len(), 6);
    assert!(outcomes.iter().any(|o| o.decision == TxnDecision::Commit));
    committed_values_visible(&s);
    // Every transaction's trace line names the backend.
    assert!(s
        .trace()
        .iter()
        .filter(|l| l.contains(" begin "))
        .all(|l| l.contains("backend=pc")));
}

#[test]
fn raw_two_phase_backend_commits_cross_shard_txns() {
    let mut s: Store<MultiPaxosCluster> =
        Store::new(StoreConfig::small(11).backend(CommitBackend::TwoPhase));
    assert!(s.run(HORIZON), "raw-2pc store did not quiesce");
    assert_eq!(s.outcomes().len(), 6);
    committed_values_visible(&s);
}

#[test]
fn backend_outcomes_are_equivalent_when_fault_free() {
    // Seed-swept equivalence: with no faults, all three backends decide
    // every transaction identically — they disagree only about what
    // survives a coordinator crash.
    for seed in [11, 12, 13, 14, 15] {
        let baseline = backend_outcomes(CommitBackend::TwoPhaseOverConsensus, seed);
        assert_eq!(
            backend_outcomes(CommitBackend::PaxosCommit, seed),
            baseline,
            "paxos-commit diverged at seed {seed}"
        );
        assert_eq!(
            backend_outcomes(CommitBackend::TwoPhase, seed),
            baseline,
            "raw 2pc diverged at seed {seed}"
        );
    }
}

#[test]
fn backend_availability_contrast_under_identical_coordinator_crash() {
    // The Gray–Lamport spectrum under ONE fault schedule: the coordinator
    // (router) dies after every participant voted yes, before the decision
    // escapes its process.
    let seed = probe_committing_seed(40);
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    let run = |backend| {
        let mut s: Store<MultiPaxosCluster> =
            Store::new(StoreConfig::small(seed).backend(backend));
        s.crash_router_on_txn(0, 0, RouterCrashPoint::AfterPrepare);
        assert!(s.run(HORIZON), "{backend:?} store did not quiesce");
        committed_values_visible(&s);
        s
    };

    // Raw 2PC: the only copy of the open decision died with the router.
    // Recovery finds nothing to force — the transaction blocks forever.
    let s = run(CommitBackend::TwoPhase);
    assert!(s.stalled().contains(&tid), "raw 2pc must stall");
    assert!(!s.recovered().iter().any(|(t, _)| *t == tid));

    // 2PC over consensus: recovery closes the still-open decision with its
    // abort-CAS. Safe, but the prepared work is thrown away.
    let s = run(CommitBackend::TwoPhaseOverConsensus);
    assert!(s.recovered().contains(&(tid, TxnDecision::Abort)));

    // Paxos Commit: the prepared votes (with their write-sets) are already
    // chosen in the shard logs. Recovery commits the transaction.
    let s = run(CommitBackend::PaxosCommit);
    assert!(
        s.recovered().contains(&(tid, TxnDecision::Commit)),
        "paxos commit must finish the prepared txn"
    );
    // The decision record recovery derived is durable on the coordinator
    // shard, and the data writes are visible.
    let dec = s
        .shards()
        .iter()
        .find_map(|e| e.peek(&txn::decision_key(tid)));
    assert_eq!(dec.as_deref(), Some("commit"));
}

#[test]
fn paxos_commit_recovery_aborts_unvoted_txn() {
    // Crash before any vote is cast: recovery free-aborts the first open
    // vote register and the transaction aborts cleanly everywhere.
    let mut s: Store<MultiPaxosCluster> =
        Store::new(StoreConfig::small(11).backend(CommitBackend::PaxosCommit));
    s.crash_router_on_txn(0, 0, RouterCrashPoint::BeforePrepare);
    assert!(s.run(HORIZON));
    let tid = consensus_core::TxnId::new(store::ROUTER_BASE, 0);
    assert!(s.recovered().contains(&(tid, TxnDecision::Abort)));
    committed_values_visible(&s);
}

#[test]
fn shard_replica_crash_does_not_lose_txns() {
    // Crash one replica per shard (f = 1 of 3): every group keeps running.
    let mut s: Store<MultiPaxosCluster> = Store::new(StoreConfig::small(91));
    for shard in 0..s.cfg.n_shards as u32 {
        s.crash_node_at(shard * 3 + 2, 50_000);
    }
    assert!(s.run(HORIZON), "f=1 per shard must not stall the store");
    assert_eq!(s.outcomes().len(), 6);
    committed_values_visible(&s);
}
