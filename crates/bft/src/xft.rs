//! XFT / XPaxos (Liu et al., OSDI '16): cross fault tolerance.
//!
//! XFT tolerates Byzantine faults with only `2f+1` replicas by excluding
//! one corner case: **anarchy** — the simultaneous combination of machine
//! *and* network faults. Three fault kinds are counted:
//!
//! * `c` — crashed replicas,
//! * `m` — non-crash (Byzantine) replicas,
//! * `p` — correct but *partitioned* replicas (not in the largest subset
//!   that communicates within the bound `Δ`).
//!
//! The system is **in anarchy** at time `s` iff `m(s) > 0` and
//! `c(s) + m(s) + p(s) > ⌊(n−1)/2⌋`. XFT guarantees safety in every
//! execution that is never in anarchy ([`is_anarchy`]).
//!
//! XPaxos (the agreement protocol) optimistically replicates on a
//! **synchronous group** of just `f+1` replicas; a fault inside the group
//! triggers a view change that reconfigures the *entire* group.

use std::collections::{BTreeMap, BTreeSet};

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, StateMachine};
use simnet::{CncPhase, Context, NetConfig, Node, NodeId, RunOutcome, Sim, Time, Timer, TimerId};

/// Span protocol label; instances are sequence numbers, rounds are views.
const SPAN: &str = "xft";

use crate::sim_crypto::digest_of;

/// The anarchy predicate from the slides: `m(s) > 0` **and**
/// `c(s) + m(s) + p(s) > ⌊(n−1)/2⌋`.
pub fn is_anarchy(c: usize, m: usize, p: usize, n: usize) -> bool {
    m > 0 && c + m + p > (n - 1) / 2
}

/// XPaxos wire messages.
#[derive(Clone, Debug)]
pub enum XftMsg {
    /// Client request.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Reply (client waits for the whole synchronous group: `f+1`).
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence.
        seq: u64,
        /// Output.
        output: KvResponse,
    },
    /// Primary → synchronous-group followers.
    Prepare {
        /// View (determines the synchronous group).
        view: u64,
        /// Sequence number.
        n: u64,
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Follower → all group members.
    Commit {
        /// View.
        view: u64,
        /// Sequence.
        n: u64,
        /// Digest of the command.
        digest: u64,
    },
    /// Lazy replication to passive (non-group) replicas.
    Update {
        /// Sequence.
        n: u64,
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// View-change demand.
    ViewChange {
        /// Proposed view.
        new_view: u64,
    },
    /// New-view installation with state transfer.
    NewView {
        /// The view.
        view: u64,
        /// Executed history of the new primary.
        history: Vec<Command<KvCommand>>,
    },
}

impl simnet::Payload for XftMsg {
    fn kind(&self) -> &'static str {
        match self {
            XftMsg::Request { .. } => "request",
            XftMsg::Reply { .. } => "reply",
            XftMsg::Prepare { .. } => "prepare",
            XftMsg::Commit { .. } => "commit",
            XftMsg::Update { .. } => "update",
            XftMsg::ViewChange { .. } => "view-change",
            XftMsg::NewView { .. } => "new-view",
        }
    }
}

#[derive(Debug, Default)]
struct XftInstance {
    cmd: Option<Command<KvCommand>>,
    endorsements: BTreeSet<NodeId>,
    executed: bool,
}

const VIEW_TIMER: u64 = 1;

/// An XPaxos replica.
pub struct XftReplica {
    n_replicas: usize,
    /// Fault bound `f = ⌊(n−1)/2⌋`.
    pub f: usize,
    /// Current view.
    pub view: u64,
    next_seq: u64,
    instances: BTreeMap<u64, XftInstance>,
    /// Executed history.
    history: Vec<Command<KvCommand>>,
    /// Executed prefix.
    pub executed_upto: u64,
    machine: DedupKvMachine,
    pending_requests: BTreeSet<(u32, u64)>,
    view_timer: Option<TimerId>,
    vc_votes: BTreeMap<u64, BTreeSet<NodeId>>,
    max_vc_sent: u64,
    /// View changes completed.
    pub view_changes: u64,
}

impl XftReplica {
    /// Creates a replica for a `2f+1` cluster.
    pub fn new(n_replicas: usize) -> Self {
        XftReplica {
            n_replicas,
            f: (n_replicas - 1) / 2,
            view: 0,
            next_seq: 0,
            instances: BTreeMap::new(),
            history: Vec::new(),
            executed_upto: 0,
            machine: DedupKvMachine::default(),
            pending_requests: BTreeSet::new(),
            view_timer: None,
            vc_votes: BTreeMap::new(),
            max_vc_sent: 0,
            view_changes: 0,
        }
    }

    /// The machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    fn peer_replicas(&self, me: NodeId) -> Vec<NodeId> {
        (0..self.n_replicas)
            .map(NodeId::from)
            .filter(|id| *id != me)
            .collect()
    }

    /// The synchronous group of view `v`: `f+1` consecutive replicas
    /// starting at the primary `v mod n`.
    pub fn sync_group(&self, v: u64) -> Vec<NodeId> {
        (0..=self.f)
            .map(|k| NodeId(((v + k as u64) % self.n_replicas as u64) as u32))
            .collect()
    }

    /// The primary of view `v`.
    pub fn primary_of(&self, v: u64) -> NodeId {
        NodeId((v % self.n_replicas as u64) as u32)
    }

    fn in_group(&self, id: NodeId) -> bool {
        self.sync_group(self.view).contains(&id)
    }

    fn arm_view_timer(&mut self, ctx: &mut Context<XftMsg>) {
        if self.view_timer.is_none() {
            let timeout = 60_000 + 10_000 * u64::from(ctx.id().0);
            self.view_timer = Some(ctx.set_timer(timeout, VIEW_TIMER));
        }
    }

    fn disarm_view_timer(&mut self, ctx: &mut Context<XftMsg>) {
        if let Some(t) = self.view_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn try_execute(&mut self, ctx: &mut Context<XftMsg>) {
        let group_size = self.f + 1;
        loop {
            let next = self.executed_upto + 1;
            let ready = self
                .instances
                .get(&next)
                .is_some_and(|i| !i.executed && i.cmd.is_some() && i.endorsements.len() >= group_size);
            if !ready {
                return;
            }
            let cmd = {
                let inst = self.instances.get_mut(&next).expect("ready");
                inst.executed = true;
                inst.cmd.clone().expect("ready")
            };
            ctx.phase(SPAN, next, self.view, CncPhase::Decision);
            ctx.span_close(SPAN, next, self.view);
            self.apply(ctx, cmd.clone());
            self.executed_upto = next;
            self.disarm_view_timer(ctx);
            if !self.pending_requests.is_empty() {
                self.arm_view_timer(ctx);
            }
            // Primary lazily updates the passive replicas.
            if self.primary_of(self.view) == ctx.id() {
                let passives: Vec<NodeId> = (0..self.n_replicas)
                    .map(NodeId::from)
                    .filter(|id| !self.in_group(*id))
                    .collect();
                ctx.send_many(passives, XftMsg::Update { n: next, cmd });
            }
        }
    }

    fn apply(&mut self, ctx: &mut Context<XftMsg>, cmd: Command<KvCommand>) {
        let output = self
            .machine
            .apply(&consensus_core::SmrOp::Cmd(cmd.clone()))
            .expect("output");
        self.pending_requests.remove(&(cmd.client, cmd.seq));
        self.history.push(cmd.clone());
        ctx.send(
            NodeId(cmd.client),
            XftMsg::Reply {
                client: cmd.client,
                seq: cmd.seq,
                output,
            },
        );
    }
}

impl Node for XftReplica {
    type Msg = XftMsg;

    fn on_start(&mut self, _ctx: &mut Context<XftMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<XftMsg>, from: NodeId, msg: XftMsg) {
        match msg {
            XftMsg::Request { cmd } => {
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    ctx.send(
                        NodeId(cmd.client),
                        XftMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                if self.primary_of(self.view) == ctx.id() {
                    let in_flight = self.instances.values().any(|i| {
                        !i.executed
                            && i.cmd
                                .as_ref()
                                .is_some_and(|c| c.client == cmd.client && c.seq == cmd.seq)
                    });
                    if in_flight {
                        return;
                    }
                    self.next_seq += 1;
                    let n = self.next_seq;
                    let me = ctx.id();
                    let view = self.view;
                    ctx.span_open(SPAN, n, view);
                    ctx.phase(SPAN, n, view, CncPhase::ValueDiscovery);
                    let inst = self.instances.entry(n).or_default();
                    inst.cmd = Some(cmd.clone());
                    inst.endorsements.insert(me);
                    let followers: Vec<NodeId> = self
                        .sync_group(view)
                        .into_iter()
                        .filter(|id| *id != me)
                        .collect();
                    ctx.send_many(followers, XftMsg::Prepare { view, n, cmd });
                    self.arm_view_timer(ctx);
                } else {
                    self.pending_requests.insert((cmd.client, cmd.seq));
                    let p = self.primary_of(self.view);
                    ctx.send(p, XftMsg::Request { cmd });
                    self.arm_view_timer(ctx);
                }
            }

            XftMsg::Prepare { view, n, cmd } => {
                if view != self.view || from != self.primary_of(view) {
                    return;
                }
                if !self.in_group(ctx.id()) {
                    return;
                }
                let digest = digest_of(&cmd).0;
                let me = ctx.id();
                {
                    let inst = self.instances.entry(n).or_default();
                    if inst.cmd.is_none() {
                        ctx.span_open(SPAN, n, view);
                        ctx.phase(SPAN, n, view, CncPhase::Agreement);
                    }
                    inst.cmd = Some(cmd);
                    inst.endorsements.insert(from);
                    inst.endorsements.insert(me);
                }
                // Commit to the whole group.
                let group = self.sync_group(view);
                ctx.send_many(
                    group.into_iter().filter(|id| *id != me),
                    XftMsg::Commit { view, n, digest },
                );
                self.arm_view_timer(ctx);
                self.try_execute(ctx);
            }

            XftMsg::Commit { view, n, digest } => {
                if view != self.view || !self.in_group(ctx.id()) {
                    return;
                }
                let inst = self.instances.entry(n).or_default();
                if let Some(cmd) = &inst.cmd {
                    if digest_of(cmd).0 != digest {
                        return;
                    }
                }
                inst.endorsements.insert(from);
                self.try_execute(ctx);
            }

            XftMsg::Update { n, cmd } => {
                // Passive replica: apply lazily in order.
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_none() {
                    inst.cmd = Some(cmd);
                }
                // Passives trust the (synchronous-group-certified) update.
                for k in 0..=self.f {
                    inst.endorsements.insert(NodeId(k as u32 + 1_000)); // synthetic certificate
                }
                self.try_execute(ctx);
            }

            XftMsg::ViewChange { new_view } => {
                if new_view <= self.view {
                    return;
                }
                self.vc_votes.entry(new_view).or_default().insert(from);
                if self.max_vc_sent < new_view {
                    self.max_vc_sent = new_view;
                    ctx.phase(SPAN, self.executed_upto + 1, new_view, CncPhase::LeaderElection);
                    let me = ctx.id();
                    self.vc_votes.entry(new_view).or_default().insert(me);
                    ctx.send_many(self.peer_replicas(me), XftMsg::ViewChange { new_view });
                }
                let votes = self.vc_votes[&new_view].len();
                if votes >= self.f + 1 && self.primary_of(new_view) == ctx.id() {
                    self.view = new_view;
                    self.view_changes += 1;
                    self.instances.clear();
                    self.next_seq = 0;
                    self.executed_upto = 0;
                    let view = self.view;
                    let history = self.history.clone();
                    self.disarm_view_timer(ctx);
                    let me = ctx.id();
                    ctx.send_many(self.peer_replicas(me), XftMsg::NewView { view, history });
                }
            }

            XftMsg::NewView { view, history } => {
                if view < self.view || from != self.primary_of(view) {
                    return;
                }
                self.view = view;
                self.view_changes += 1;
                self.instances.clear();
                self.next_seq = 0;
                self.executed_upto = 0;
                self.disarm_view_timer(ctx);
                for cmd in history {
                    if self.machine.cached(cmd.client, cmd.seq).is_none() {
                        self.apply(ctx, cmd);
                    }
                }
                if !self.pending_requests.is_empty() {
                    self.arm_view_timer(ctx);
                }
            }

            XftMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<XftMsg>, timer: Timer) {
        if timer.kind == VIEW_TIMER {
            self.view_timer = None;
            let stalled = !self.pending_requests.is_empty()
                || self
                    .instances
                    .values()
                    .any(|i| i.cmd.is_some() && !i.executed);
            if stalled {
                let new_view = self.view.max(self.max_vc_sent) + 1;
                self.max_vc_sent = new_view;
                let me = ctx.id();
                self.vc_votes.entry(new_view).or_default().insert(me);
                ctx.send_many(self.peer_replicas(me), XftMsg::ViewChange { new_view });
                self.arm_view_timer(ctx);
            }
        }
    }
}

const CLIENT_RETRY: u64 = 6;

/// An XFT client: waits for replies from the full synchronous group
/// (`f+1` matching).
pub struct XftClient {
    /// Client id == node id.
    pub client_id: u32,
    n_replicas: usize,
    f: usize,
    workload: KvWorkload,
    total: usize,
    /// Completed.
    pub completed: usize,
    current: Option<(Command<KvCommand>, Time)>,
    votes: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Latencies.
    pub latencies: LatencyRecorder,
}

impl XftClient {
    /// Creates a client.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, seed: u64) -> Self {
        XftClient {
            client_id,
            n_replicas,
            f: (n_replicas - 1) / 2,
            workload: KvWorkload::new(client_id, KvMix::default(), seed),
            total,
            completed: 0,
            current: None,
            votes: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
        }
    }

    /// Whether done.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn send_next(&mut self, ctx: &mut Context<XftMsg>) {
        if self.done() {
            self.current = None;
            return;
        }
        let cmd = self.workload.next_command();
        self.current = Some((cmd.clone(), ctx.now()));
        self.votes.clear();
        ctx.send(NodeId(0), XftMsg::Request { cmd });
        ctx.set_timer(200_000, CLIENT_RETRY);
    }
}

impl Node for XftClient {
    type Msg = XftMsg;

    fn on_start(&mut self, ctx: &mut Context<XftMsg>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<XftMsg>, from: NodeId, msg: XftMsg) {
        if let XftMsg::Reply { seq, output, .. } = msg {
            let Some((cmd, sent_at)) = &self.current else {
                return;
            };
            if cmd.seq != seq {
                return;
            }
            let key = digest_of(&output).0;
            let votes = self.votes.entry(key).or_default();
            votes.insert(from);
            if votes.len() >= self.f + 1 {
                let sent = *sent_at;
                self.latencies.record(sent, ctx.now());
                self.completed += 1;
                self.current = None;
                self.send_next(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<XftMsg>, timer: Timer) {
        if timer.kind == CLIENT_RETRY && self.current.is_some() {
            if let Some((cmd, _)) = &self.current {
                let cmd = cmd.clone();
                for r in 0..self.n_replicas {
                    ctx.send(NodeId::from(r), XftMsg::Request { cmd: cmd.clone() });
                }
            }
            ctx.set_timer(200_000, CLIENT_RETRY);
        }
    }
}

simnet::node_enum! {
    /// An XFT process.
    pub enum XftProc: XftMsg {
        /// Replica.
        Replica(XftReplica),
        /// Client.
        Client(XftClient),
    }
}

/// A ready-to-run XFT cluster.
pub struct XftCluster {
    /// The simulation.
    pub sim: Sim<XftProc>,
    /// Replica count (`2f+1`).
    pub n_replicas: usize,
}

impl XftCluster {
    /// Builds the cluster with one client issuing `cmds` commands.
    pub fn new(n_replicas: usize, cmds: usize, config: NetConfig, seed: u64) -> Self {
        let mut sim = Sim::new(config, seed);
        for _ in 0..n_replicas {
            sim.add_node(XftReplica::new(n_replicas));
        }
        sim.add_node(XftClient::new(n_replicas as u32, n_replicas, cmds, seed));
        XftCluster { sim, n_replicas }
    }

    /// Runs to completion or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.client().done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.client().done();
            }
        }
    }

    /// The client.
    pub fn client(&self) -> &XftClient {
        self.sim
            .nodes()
            .find_map(|(_, p)| match p {
                XftProc::Client(c) => Some(c),
                _ => None,
            })
            .expect("client exists")
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &XftReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            XftProc::Replica(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anarchy_predicate_matches_slides() {
        // n = 5: threshold ⌊(n−1)/2⌋ = 2.
        assert!(!is_anarchy(0, 0, 0, 5));
        assert!(!is_anarchy(2, 0, 1, 5), "no malice ⇒ no anarchy");
        assert!(!is_anarchy(1, 1, 0, 5), "2 faults ≤ 2 ⇒ fine");
        assert!(is_anarchy(1, 1, 1, 5), "3 faults with malice ⇒ anarchy");
        assert!(is_anarchy(0, 3, 0, 5));
        assert!(!is_anarchy(3, 0, 0, 5), "pure crashes never anarchy");
    }

    #[test]
    fn common_case_commits_with_synchronous_group_only() {
        let mut cluster = XftCluster::new(5, 10, NetConfig::lan(), 1);
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.client().completed, 10);
        // Only the f+1 = 3 group members run agreement; prepares go to 2
        // followers, commits circulate within the group.
        let m = cluster.sim.metrics();
        assert_eq!(m.kind("prepare"), 20, "2 followers × 10 requests");
        assert!(m.kind("update") > 0, "passive replicas get lazy updates");
    }

    #[test]
    fn group_member_crash_triggers_view_change() {
        let mut cluster = XftCluster::new(5, 8, NetConfig::lan(), 2);
        cluster.sim.run_until(Time::from_millis(5));
        // Crash a follower inside the synchronous group {0,1,2}.
        cluster.sim.crash_at(NodeId(1), Time::from_millis(6));
        assert!(
            cluster.run(Time::from_secs(60)),
            "completed {}",
            cluster.client().completed
        );
        assert_eq!(cluster.client().completed, 8);
        let vc = cluster.replicas().map(|r| r.view_changes).max().unwrap();
        assert!(vc >= 1, "the whole group must be reconfigured");
        // The new group excludes the crashed node (view advanced).
        let view = cluster.replicas().map(|r| r.view).max().unwrap();
        assert!(view >= 1);
    }

    #[test]
    fn passive_replicas_converge_via_lazy_updates() {
        let mut cluster = XftCluster::new(5, 12, NetConfig::lan(), 3);
        assert!(cluster.run(Time::from_secs(10)));
        cluster.sim.run_for(500_000);
        let executed: Vec<u64> = cluster.replicas().map(|r| r.executed_upto).collect();
        assert!(
            executed.iter().filter(|&&e| e >= 12).count() >= 3,
            "at least the group is current: {executed:?}"
        );
        let digests: BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.executed_upto >= 12)
            .map(|r| r.machine().digest())
            .collect();
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn crash_outside_group_is_free() {
        let mut cluster = XftCluster::new(5, 10, NetConfig::lan(), 4);
        cluster.sim.crash_at(NodeId(4), Time::ZERO); // passive node
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.client().completed, 10);
        let vc = cluster.replicas().map(|r| r.view_changes).max().unwrap();
        assert_eq!(vc, 0, "no view change needed for a passive crash");
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster = XftCluster::new(5, 6, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(10));
            (cluster.client().completed, cluster.sim.metrics().sent)
        };
        assert_eq!(run(5), run(5));
    }
}
