//! Zyzzyva: speculative Byzantine fault tolerance (Kotla et al., SOSP '07).
//!
//! Replicas *speculatively* execute requests as soon as they receive the
//! primary's ordering, without running agreement first; **commitment moves
//! to the client**:
//!
//! * **Case 1** — the client receives `3f+1` matching speculative replies:
//!   all replicas executed in the same total order; the request completes
//!   in 3 one-way delays (request → order-req → spec-response).
//! * **Case 2** — the client receives only `2f+1 ≤ k ≤ 3f` matching
//!   replies (e.g. a backup crashed): it assembles a **commit certificate**
//!   (the list of `2f+1` replica ids and their signed responses), sends it
//!   to all replicas, and completes on `2f+1` local-commit acks.
//!
//! Prepare and commit collapse into a single speculative phase — `O(N)`
//! messages — at the price of an extra round in the view change (which the
//! tutorial notes but does not detail; this implementation covers the
//! agreement protocol and detects the unhappy path by client timeout).

use std::collections::{BTreeMap, BTreeSet};

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, StateMachine};
use simnet::{CncPhase, Context, NetConfig, Node, NodeId, RunOutcome, Sim, Time, Timer};

/// Span protocol label; instances are sequence numbers, rounds are views.
const SPAN: &str = "zyzzyva";

use crate::sim_crypto::{digest_of, Digest};

/// Zyzzyva wire messages.
#[derive(Clone, Debug)]
pub enum ZyzMsg {
    /// Client → primary.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Primary → replicas: ordered request with history digest.
    OrderReq {
        /// View.
        view: u64,
        /// Sequence number.
        n: u64,
        /// History digest after this request.
        hist: Digest,
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Replica → client: speculative execution response.
    SpecResponse {
        /// View.
        view: u64,
        /// Sequence number.
        n: u64,
        /// History digest the replica's log reached.
        hist: Digest,
        /// Client id.
        client: u32,
        /// Client sequence.
        seq: u64,
        /// Execution output.
        output: KvResponse,
    },
    /// Client → replicas: commit certificate (case 2).
    CommitCert {
        /// View.
        view: u64,
        /// Sequence number being committed.
        n: u64,
        /// Certified history digest.
        hist: Digest,
        /// The `2f+1` replicas whose matching responses form the
        /// certificate.
        signers: BTreeSet<NodeId>,
    },
    /// Replica → client: acknowledgement of a commit certificate.
    LocalCommit {
        /// View.
        view: u64,
        /// Sequence number.
        n: u64,
    },
}

impl simnet::Payload for ZyzMsg {
    fn kind(&self) -> &'static str {
        match self {
            ZyzMsg::Request { .. } => "request",
            ZyzMsg::OrderReq { .. } => "order-req",
            ZyzMsg::SpecResponse { .. } => "spec-response",
            ZyzMsg::CommitCert { .. } => "commit-cert",
            ZyzMsg::LocalCommit { .. } => "local-commit",
        }
    }
}

/// A Zyzzyva replica (node 0 is the primary).
pub struct ZyzReplica {
    n_replicas: usize,
    /// Fault bound.
    pub f: usize,
    view: u64,
    /// Primary-only: next sequence number.
    next_seq: u64,
    /// Buffered order-reqs awaiting in-order execution.
    pending: BTreeMap<u64, (Digest, Command<KvCommand>)>,
    /// Highest speculatively executed sequence number.
    pub spec_executed: u64,
    /// Highest sequence number covered by a commit certificate.
    pub committed_upto: u64,
    machine: DedupKvMachine,
    /// Rolling history digest.
    pub history: Digest,
    /// Per-sequence history digests (to validate commit certs).
    hist_at: BTreeMap<u64, Digest>,
}

impl ZyzReplica {
    /// Creates a replica in a cluster of `3f+1`.
    pub fn new(n_replicas: usize) -> Self {
        ZyzReplica {
            n_replicas,
            f: (n_replicas - 1) / 3,
            view: 0,
            next_seq: 0,
            pending: BTreeMap::new(),
            spec_executed: 0,
            committed_upto: 0,
            machine: DedupKvMachine::default(),
            history: Digest(0),
            hist_at: BTreeMap::new(),
        }
    }

    /// The replicated machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    fn primary(&self) -> NodeId {
        NodeId((self.view % self.n_replicas as u64) as u32)
    }

    fn chain(prev: Digest, cmd: &Command<KvCommand>) -> Digest {
        Digest(prev.0.rotate_left(13).wrapping_add(digest_of(cmd).0))
    }

    fn drain_executable(&mut self, ctx: &mut Context<ZyzMsg>) {
        while let Some((hist, cmd)) = self.pending.remove(&(self.spec_executed + 1)) {
            let n = self.spec_executed + 1;
            let expected = Self::chain(self.history, &cmd);
            if expected != hist {
                // Corrupt ordering: refuse to execute further. (A full
                // implementation would trigger a view change here.)
                self.pending.insert(n, (hist, cmd));
                return;
            }
            // Speculative execution collapses agreement and decision into
            // one optimistic step; the client is the real commitment point.
            ctx.phase(SPAN, n, self.view, CncPhase::Agreement);
            ctx.phase(SPAN, n, self.view, CncPhase::Decision);
            ctx.span_close(SPAN, n, self.view);
            let output = self
                .machine
                .apply(&consensus_core::SmrOp::Cmd(cmd.clone()))
                .expect("commands produce outputs");
            self.history = expected;
            self.hist_at.insert(n, expected);
            self.spec_executed = n;
            let view = self.view;
            ctx.send(
                NodeId(cmd.client),
                ZyzMsg::SpecResponse {
                    view,
                    n,
                    hist: expected,
                    client: cmd.client,
                    seq: cmd.seq,
                    output,
                },
            );
        }
    }
}

impl Node for ZyzReplica {
    type Msg = ZyzMsg;

    fn on_start(&mut self, _ctx: &mut Context<ZyzMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<ZyzMsg>, from: NodeId, msg: ZyzMsg) {
        match msg {
            ZyzMsg::Request { cmd } => {
                if self.primary() != ctx.id() {
                    let primary = self.primary();
                    ctx.send(primary, ZyzMsg::Request { cmd });
                    return;
                }
                // Dedup executed requests.
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    let view = self.view;
                    let reply = ZyzMsg::SpecResponse {
                        view,
                        n: self.spec_executed,
                        hist: self.history,
                        client: cmd.client,
                        seq: cmd.seq,
                        output: out.clone(),
                    };
                    ctx.send(NodeId(cmd.client), reply);
                    return;
                }
                let in_flight = self
                    .pending
                    .values()
                    .any(|(_, c)| c.client == cmd.client && c.seq == cmd.seq);
                if in_flight {
                    return;
                }
                self.next_seq = self.next_seq.max(self.spec_executed);
                self.next_seq += 1;
                let n = self.next_seq;
                // History digest the request must extend (chained through
                // any still-pending predecessors).
                let mut hist = self.history;
                for i in self.spec_executed + 1..n {
                    if let Some((h, _)) = self.pending.get(&i) {
                        hist = *h;
                    }
                }
                let hist = Self::chain(hist, &cmd);
                let view = self.view;
                ctx.span_open(SPAN, n, view);
                ctx.phase(SPAN, n, view, CncPhase::ValueDiscovery);
                self.pending.insert(n, (hist, cmd.clone()));
                let me = ctx.id();
                let backups: Vec<NodeId> = (0..self.n_replicas)
                    .map(NodeId::from)
                    .filter(|id| *id != me)
                    .collect();
                ctx.send_many(backups, ZyzMsg::OrderReq { view, n, hist, cmd });
                self.drain_executable(ctx);
            }

            ZyzMsg::OrderReq { view, n, hist, cmd } => {
                if view != self.view || from != self.primary() {
                    return;
                }
                if n <= self.spec_executed {
                    return;
                }
                self.pending.insert(n, (hist, cmd));
                self.drain_executable(ctx);
            }

            ZyzMsg::CommitCert {
                view,
                n,
                hist,
                signers,
            } => {
                if view != self.view || signers.len() < 2 * self.f + 1 {
                    return;
                }
                if self.hist_at.get(&n) == Some(&hist) {
                    self.committed_upto = self.committed_upto.max(n);
                    ctx.send(from, ZyzMsg::LocalCommit { view, n });
                }
            }

            ZyzMsg::SpecResponse { .. } | ZyzMsg::LocalCommit { .. } => {}
        }
    }
}

const CLIENT_COMMIT_TIMER: u64 = 1;
const CLIENT_RETRY: u64 = 2;

#[derive(Clone, Debug, PartialEq, Eq)]
enum ReqPhase {
    AwaitingSpec,
    AwaitingLocalCommit { n: u64 },
}

/// A Zyzzyva client: the commitment point of the protocol.
pub struct ZyzClient {
    /// Client id == node id.
    pub client_id: u32,
    n_replicas: usize,
    f: usize,
    workload: KvWorkload,
    total: usize,
    /// Completed requests.
    pub completed: usize,
    /// Requests completed via the fast path (case 1).
    pub fast_path: usize,
    /// Requests completed via a commit certificate (case 2).
    pub cert_path: usize,
    current: Option<(Command<KvCommand>, Time, ReqPhase)>,
    /// Spec-response votes for the current request, keyed by
    /// `(n, history, output digest)`.
    votes: BTreeMap<(u64, Digest, u64), BTreeSet<NodeId>>,
    local_commits: BTreeSet<NodeId>,
    /// Latencies.
    pub latencies: LatencyRecorder,
}

impl ZyzClient {
    /// Creates a client issuing `total` commands.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, mix: KvMix, seed: u64) -> Self {
        ZyzClient {
            client_id,
            n_replicas,
            f: (n_replicas - 1) / 3,
            workload: KvWorkload::new(client_id, mix, seed),
            total,
            completed: 0,
            fast_path: 0,
            cert_path: 0,
            current: None,
            votes: BTreeMap::new(),
            local_commits: BTreeSet::new(),
            latencies: LatencyRecorder::new(),
        }
    }

    /// Whether the workload finished.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn send_next(&mut self, ctx: &mut Context<ZyzMsg>) {
        if self.done() {
            self.current = None;
            return;
        }
        let cmd = self.workload.next_command();
        self.current = Some((cmd.clone(), ctx.now(), ReqPhase::AwaitingSpec));
        self.votes.clear();
        self.local_commits.clear();
        ctx.send(NodeId(0), ZyzMsg::Request { cmd });
        // If 3f+1 matching responses don't arrive promptly, fall back to
        // the commit-certificate path.
        ctx.set_timer(10_000, CLIENT_COMMIT_TIMER);
        ctx.set_timer(300_000, CLIENT_RETRY);
    }

    fn complete(&mut self, ctx: &mut Context<ZyzMsg>, fast: bool) {
        if let Some((_, sent_at, _)) = &self.current {
            let sent = *sent_at;
            self.latencies.record(sent, ctx.now());
        }
        self.completed += 1;
        if fast {
            self.fast_path += 1;
        } else {
            self.cert_path += 1;
        }
        self.current = None;
        self.send_next(ctx);
    }
}

impl Node for ZyzClient {
    type Msg = ZyzMsg;

    fn on_start(&mut self, ctx: &mut Context<ZyzMsg>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<ZyzMsg>, from: NodeId, msg: ZyzMsg) {
        match msg {
            ZyzMsg::SpecResponse {
                n,
                hist,
                seq,
                output,
                ..
            } => {
                let Some((cmd, _, phase)) = &self.current else {
                    return;
                };
                if cmd.seq != seq || *phase != ReqPhase::AwaitingSpec {
                    return;
                }
                let key = (n, hist, digest_of(&output).0);
                let entry = self.votes.entry(key).or_default();
                entry.insert(from);
                if entry.len() >= self.n_replicas {
                    // Case 1: 3f+1 matching replies.
                    self.complete(ctx, true);
                }
            }
            ZyzMsg::LocalCommit { n, .. } => {
                let Some((_, _, phase)) = &self.current else {
                    return;
                };
                if let ReqPhase::AwaitingLocalCommit { n: want } = phase {
                    if *want == n {
                        self.local_commits.insert(from);
                        if self.local_commits.len() >= 2 * self.f + 1 {
                            self.complete(ctx, false);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<ZyzMsg>, timer: Timer) {
        match timer.kind {
            CLIENT_COMMIT_TIMER => {
                let Some((_, _, ReqPhase::AwaitingSpec)) = &self.current else {
                    return;
                };
                // Case 2: 2f+1 ≤ matching < 3f+1 → send a commit
                // certificate.
                let best = self
                    .votes
                    .iter()
                    .max_by_key(|(_, s)| s.len())
                    .map(|(&k, s)| (k, s.clone()));
                if let Some(((n, hist, _), signers)) = best {
                    if signers.len() >= 2 * self.f + 1 {
                        if let Some((_, _, phase)) = &mut self.current {
                            *phase = ReqPhase::AwaitingLocalCommit { n };
                        }
                        for r in 0..self.n_replicas {
                            ctx.send(
                                NodeId::from(r),
                                ZyzMsg::CommitCert {
                                    view: 0,
                                    n,
                                    hist,
                                    signers: signers.clone(),
                                },
                            );
                        }
                        return;
                    }
                }
                // Not enough yet: re-check shortly.
                ctx.set_timer(10_000, CLIENT_COMMIT_TIMER);
            }
            CLIENT_RETRY => {
                if let Some((cmd, _, _)) = &self.current {
                    let cmd = cmd.clone();
                    for r in 0..self.n_replicas {
                        ctx.send(NodeId::from(r), ZyzMsg::Request { cmd: cmd.clone() });
                    }
                    ctx.set_timer(300_000, CLIENT_RETRY);
                }
            }
            _ => {}
        }
    }
}

simnet::node_enum! {
    /// A Zyzzyva process.
    pub enum ZyzProc: ZyzMsg {
        /// Replica (node 0 = primary).
        Replica(ZyzReplica),
        /// Client (commitment point).
        Client(ZyzClient),
    }
}

/// A ready-to-run Zyzzyva cluster.
pub struct ZyzCluster {
    /// The simulation.
    pub sim: Sim<ZyzProc>,
    /// Number of replicas.
    pub n_replicas: usize,
}

impl ZyzCluster {
    /// Builds a cluster with one client issuing `cmds` commands.
    pub fn new(n_replicas: usize, cmds: usize, config: NetConfig, seed: u64) -> Self {
        let mut sim = Sim::new(config, seed);
        for _ in 0..n_replicas {
            sim.add_node(ZyzReplica::new(n_replicas));
        }
        sim.add_node(ZyzClient::new(
            n_replicas as u32,
            n_replicas,
            cmds,
            KvMix::default(),
            seed,
        ));
        ZyzCluster { sim, n_replicas }
    }

    /// Runs to completion or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.client().done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.client().done();
            }
        }
    }

    /// The (single) client.
    pub fn client(&self) -> &ZyzClient {
        self.sim
            .nodes()
            .find_map(|(_, p)| match p {
                ZyzProc::Client(c) => Some(c),
                _ => None,
            })
            .expect("cluster has a client")
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &ZyzReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            ZyzProc::Replica(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::DelayModel;

    fn fixed_net() -> NetConfig {
        NetConfig::synchronous().with_delay(DelayModel::Fixed(500))
    }

    #[test]
    fn fault_free_takes_fast_path() {
        let mut cluster = ZyzCluster::new(4, 10, fixed_net(), 1);
        assert!(cluster.run(Time::from_secs(10)));
        let c = cluster.client();
        assert_eq!(c.completed, 10);
        assert_eq!(c.fast_path, 10, "all requests on case 1");
        assert_eq!(c.cert_path, 0);
    }

    #[test]
    fn fast_path_is_three_delays() {
        let mut cluster = ZyzCluster::new(4, 1, fixed_net(), 2);
        assert!(cluster.run(Time::from_secs(10)));
        // request (500) + order-req (500) + spec-response (500) = 1500.
        assert_eq!(cluster.client().latencies.min(), 1_500);
    }

    #[test]
    fn crashed_backup_forces_commit_certificate() {
        let mut cluster = ZyzCluster::new(4, 5, fixed_net(), 3);
        cluster.sim.crash_at(NodeId(3), Time::ZERO);
        assert!(cluster.run(Time::from_secs(30)));
        let c = cluster.client();
        assert_eq!(c.completed, 5);
        assert_eq!(c.cert_path, 5, "all requests need case 2");
        for (id, r) in cluster.sim.nodes().filter_map(|(id, p)| match p {
            ZyzProc::Replica(r) => Some((id, r)),
            _ => None,
        }) {
            if cluster.sim.is_alive(id) {
                assert!(r.committed_upto >= 5, "{id}: {}", r.committed_upto);
            }
        }
    }

    #[test]
    fn linear_message_complexity() {
        // Per request (fault-free): 1 request + (n−1) order-reqs + n
        // spec-responses: linear in n.
        for n in [4usize, 7] {
            let mut cluster = ZyzCluster::new(n, 10, fixed_net(), 4);
            assert!(cluster.run(Time::from_secs(10)));
            let per_req = cluster.sim.metrics().sent as f64 / 10.0;
            let expected = 1.0 + (n as f64 - 1.0) + n as f64;
            assert!(
                (per_req - expected).abs() < 1.0,
                "n={n}: {per_req} vs {expected}"
            );
        }
    }

    #[test]
    fn replicas_stay_consistent() {
        let mut cluster = ZyzCluster::new(4, 20, NetConfig::lan(), 5);
        assert!(cluster.run(Time::from_secs(10)));
        let digests: BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.spec_executed >= 20)
            .map(|r| r.machine().digest())
            .collect();
        assert_eq!(digests.len(), 1, "speculative execution diverged");
    }

    #[test]
    fn corrupted_order_req_stalls_instead_of_diverging() {
        // The primary sends a wrong history digest to one backup: that
        // backup refuses to execute (no divergence), the rest proceed; the
        // client still completes via case 2.
        use simnet::{FilterAction, FnFilter};
        let mut cluster = ZyzCluster::new(4, 3, fixed_net(), 6);
        cluster.sim.set_filter(
            NodeId(0),
            Box::new(FnFilter(
                |_f, to: NodeId, msg: &ZyzMsg, _r: &mut rand_chacha::ChaCha20Rng| {
                    if to == NodeId(3) {
                        if let ZyzMsg::OrderReq { view, n, cmd, .. } = msg {
                            return FilterAction::Replace(ZyzMsg::OrderReq {
                                view: *view,
                                n: *n,
                                hist: Digest(0xDEAD),
                                cmd: cmd.clone(),
                            });
                        }
                    }
                    FilterAction::Deliver
                },
            )),
        );
        assert!(cluster.run(Time::from_secs(30)));
        let c = cluster.client();
        assert_eq!(c.completed, 3);
        assert!(c.cert_path > 0, "case 2 must fire");
        // The lied-to backup executed nothing.
        let stalled = cluster.replicas().filter(|r| r.spec_executed == 0).count();
        assert_eq!(stalled, 1);
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster = ZyzCluster::new(4, 5, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(10));
            (cluster.client().completed, cluster.sim.metrics().sent)
        };
        assert_eq!(run(7), run(7));
    }
}
