//! # bft — Byzantine fault tolerant state machine replication
//!
//! Every BFT protocol the tutorial surveys, on the common `simnet`
//! substrate:
//!
//! * [`pbft`] — Practical Byzantine Fault Tolerance (Castro & Liskov):
//!   `3f+1` replicas, the three-phase pre-prepare/prepare/commit protocol,
//!   `O(n²)` steady-state messages, checkpoint-based garbage collection,
//!   and the `O(n³)` view change.
//! * [`zyzzyva`] — speculative BFT: replicas execute straight from the
//!   primary's ordering; commitment moves to the client (`3f+1` matching
//!   replies = 3 message delays; `2f+1` ⇒ client-driven commit
//!   certificate).
//! * [`hotstuff`] — linear message complexity via leader-collected
//!   threshold-signature quorum certificates, leader rotation built into
//!   the normal path, and the chained/pipelined variant.
//! * [`minbft`] — trusted-component BFT: the USIG's unique sequential
//!   identifiers halve the replica bound to `2f+1` and cut one phase.
//! * [`cheapbft`] — CheapTiny normal case with only `f+1` active replicas,
//!   PANIC-triggered CheapSwitch, and MinBFT fallback.
//! * [`xft`] — XFT/XPaxos: cross fault tolerance with `2f+1` replicas, a
//!   synchronous group of `f+1`, and the anarchy predicate.
//! * [`seemore`] — SeeMoRe's hybrid-cloud modes 1–3 over `3m+2c+1` nodes.
//! * [`upright`] — the UpRight fault model (`u = 2m+c+1` quorums,
//!   intersection `m+1`) and its agreement/execution split.
//! * [`sim_crypto`] — the structural stand-ins for digests, MACs, threshold
//!   signatures, and trusted counters (see DESIGN.md's substitution table).

pub mod cheapbft;
pub mod hotstuff;
pub mod minbft;
pub mod pbft;
pub mod seemore;
pub mod sim_crypto;
pub mod upright;
pub mod xft;
pub mod zyzzyva;
