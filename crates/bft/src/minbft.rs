//! MinBFT (Veronese et al.): BFT with a trusted monotonic counter.
//!
//! The USIG (Unique Sequential Identifier Generator) is a tamper-proof
//! component every replica owns. All messages are attested by it, so *a
//! Byzantine node may decide not to send a message or send it corrupted,
//! but it cannot send two different messages to different replicas* bearing
//! the same identifier — equivocation is impossible by construction. That
//! single property halves the replica bound (`2f+1` instead of `3f+1`) and
//! removes a phase: per the tutorial, MinBFT *requires the same number of
//! replicas, communication phases and message complexity as Paxos* — two
//! phases (prepare, commit) with leader-centric `O(N)` traffic, plus an
//! asynchronous decide.
//!
//! The primary's USIG counter doubles as the sequence number, which is why
//! no explicit ordering agreement is needed: counters are unique,
//! sequential, and unforgeable.

use std::collections::{BTreeMap, BTreeSet};

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, StateMachine};
use simnet::{CncPhase, Context, NetConfig, Node, NodeId, RunOutcome, Sim, Time, Timer, TimerId};

/// Span protocol label; instances are USIG counters, rounds are views.
const SPAN: &str = "minbft";

use crate::sim_crypto::{digest_of, Usig, UsigCert, UsigVerifier};

/// MinBFT wire messages.
#[derive(Clone, Debug)]
pub enum MinMsg {
    /// Client request.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Reply to the client (`f+1` matching required).
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence.
        seq: u64,
        /// Output.
        output: KvResponse,
    },
    /// Primary's USIG-attested ordering: the counter *is* the sequence
    /// number (within the view).
    Prepare {
        /// View.
        view: u64,
        /// USIG attestation by the primary.
        ui: UsigCert,
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Backup's USIG-attested endorsement, sent to the primary.
    Commit {
        /// View.
        view: u64,
        /// The prepared counter being endorsed.
        n: u64,
        /// Backup's own USIG attestation.
        ui: UsigCert,
    },
    /// Primary's (asynchronous) decision notification.
    Decide {
        /// View.
        view: u64,
        /// The committed counter.
        n: u64,
    },
    /// View-change demand.
    ViewChange {
        /// Proposed view.
        new_view: u64,
    },
    /// New primary installation with state transfer: the executed history
    /// lets lagging backups catch up (the dedup client table makes replay
    /// idempotent), and `counter_base` attests where the new primary's
    /// USIG counter stands, so verifiers fast-forward.
    NewView {
        /// The view.
        view: u64,
        /// The new primary's current USIG counter.
        counter_base: u64,
        /// Commands the new primary has executed, in order.
        history: Vec<Command<KvCommand>>,
    },
}

impl simnet::Payload for MinMsg {
    fn kind(&self) -> &'static str {
        match self {
            MinMsg::Request { .. } => "request",
            MinMsg::Reply { .. } => "reply",
            MinMsg::Prepare { .. } => "prepare",
            MinMsg::Commit { .. } => "commit",
            MinMsg::Decide { .. } => "decide",
            MinMsg::ViewChange { .. } => "view-change",
            MinMsg::NewView { .. } => "new-view",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            MinMsg::NewView { history, .. } => 32 + history.len() * 64,
            _ => 72,
        }
    }
}

#[derive(Debug, Default)]
struct MinInstance {
    cmd: Option<Command<KvCommand>>,
    commits: BTreeSet<NodeId>,
    decided: bool,
    executed: bool,
}

const VIEW_TIMER: u64 = 1;

/// A MinBFT replica (cluster size `2f+1`).
pub struct MinReplica {
    n_replicas: usize,
    /// Fault bound `f = ⌊(n−1)/2⌋`.
    pub f: usize,
    /// Current view.
    pub view: u64,
    usig: Usig,
    verifier: UsigVerifier,
    /// Instances of the current view, keyed by primary counter.
    instances: BTreeMap<u64, MinInstance>,
    /// Counter value at which the current view started (primary's first
    /// prepare of the view is `view_base + 1`).
    view_base: u64,
    /// Executed command history (also the state-transfer payload).
    history: Vec<Command<KvCommand>>,
    /// Highest executed counter in the current view.
    executed_counter: u64,
    machine: DedupKvMachine,
    pending_requests: BTreeSet<(u32, u64)>,
    view_timer: Option<TimerId>,
    vc_votes: BTreeMap<u64, BTreeSet<NodeId>>,
    max_vc_sent: u64,
    /// Completed view changes.
    pub view_changes: u64,
}

impl MinReplica {
    /// Creates a replica; cluster size must be `2f+1`.
    pub fn new(n_replicas: usize, id_hint: u32) -> Self {
        MinReplica {
            n_replicas,
            f: (n_replicas - 1) / 2,
            view: 0,
            usig: Usig::new(NodeId(id_hint)),
            verifier: UsigVerifier::new(),
            instances: BTreeMap::new(),
            view_base: 0,
            history: Vec::new(),
            executed_counter: 0,
            machine: DedupKvMachine::default(),
            pending_requests: BTreeSet::new(),
            view_timer: None,
            vc_votes: BTreeMap::new(),
            max_vc_sent: 0,
            view_changes: 0,
        }
    }

    /// The machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    /// Executed commands so far.
    pub fn executed(&self) -> usize {
        self.history.len()
    }

    /// The primary of view `v`.
    pub fn primary_of(&self, v: u64) -> NodeId {
        NodeId((v % self.n_replicas as u64) as u32)
    }

    fn quorum(&self) -> usize {
        self.f + 1
    }

    fn peer_replicas(&self, me: NodeId) -> Vec<NodeId> {
        (0..self.n_replicas)
            .map(NodeId::from)
            .filter(|id| *id != me)
            .collect()
    }

    fn arm_view_timer(&mut self, ctx: &mut Context<MinMsg>) {
        if self.view_timer.is_none() {
            let timeout = 50_000 + 10_000 * u64::from(ctx.id().0);
            self.view_timer = Some(ctx.set_timer(timeout, VIEW_TIMER));
        }
    }

    fn disarm_view_timer(&mut self, ctx: &mut Context<MinMsg>) {
        if let Some(t) = self.view_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn try_execute(&mut self, ctx: &mut Context<MinMsg>) {
        loop {
            let next = self.executed_counter + 1;
            let ready = self
                .instances
                .get(&next)
                .is_some_and(|i| i.decided && !i.executed);
            if !ready {
                return;
            }
            let cmd = {
                let inst = self.instances.get_mut(&next).expect("ready");
                inst.executed = true;
                inst.cmd.clone().expect("decided instance has command")
            };
            self.apply(ctx, cmd);
            self.executed_counter = next;
            self.disarm_view_timer(ctx);
            if !self.pending_requests.is_empty() {
                self.arm_view_timer(ctx);
            }
        }
    }

    fn apply(&mut self, ctx: &mut Context<MinMsg>, cmd: Command<KvCommand>) {
        let output = self
            .machine
            .apply(&consensus_core::SmrOp::Cmd(cmd.clone()))
            .expect("command output");
        self.pending_requests.remove(&(cmd.client, cmd.seq));
        self.history.push(cmd.clone());
        ctx.send(
            NodeId(cmd.client),
            MinMsg::Reply {
                client: cmd.client,
                seq: cmd.seq,
                output,
            },
        );
    }
}

impl Node for MinReplica {
    type Msg = MinMsg;

    fn on_start(&mut self, _ctx: &mut Context<MinMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<MinMsg>, from: NodeId, msg: MinMsg) {
        match msg {
            MinMsg::Request { cmd } => {
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    ctx.send(
                        NodeId(cmd.client),
                        MinMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                if self.primary_of(self.view) == ctx.id() {
                    let in_flight = self.instances.values().any(|i| {
                        !i.executed
                            && i.cmd
                                .as_ref()
                                .is_some_and(|c| c.client == cmd.client && c.seq == cmd.seq)
                    });
                    if in_flight {
                        return;
                    }
                    // Order it: the USIG counter is the sequence number.
                    let ui = self.usig.create(digest_of(&cmd));
                    let n = ui.counter;
                    ctx.span_open(SPAN, n, self.view);
                    ctx.phase(SPAN, n, self.view, CncPhase::ValueDiscovery);
                    let me = ctx.id();
                    let inst = self.instances.entry(n).or_default();
                    inst.cmd = Some(cmd.clone());
                    inst.commits.insert(me); // the prepare is the primary's commit
                    let view = self.view;
                    ctx.send_many(self.peer_replicas(me), MinMsg::Prepare { view, ui, cmd });
                } else {
                    self.pending_requests.insert((cmd.client, cmd.seq));
                    let primary = self.primary_of(self.view);
                    ctx.send(primary, MinMsg::Request { cmd });
                    self.arm_view_timer(ctx);
                }
            }

            MinMsg::Prepare { view, ui, cmd } => {
                if view != self.view || from != self.primary_of(view) {
                    return;
                }
                // USIG verification: the attestation must cover exactly
                // this command and be the next counter from this primary —
                // this is what forecloses equivocation.
                if !self.verifier.verify(&ui, digest_of(&cmd)) {
                    return;
                }
                let n = ui.counter;
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_none() {
                    ctx.span_open(SPAN, n, view);
                    ctx.phase(SPAN, n, view, CncPhase::Agreement);
                }
                inst.cmd = Some(cmd);
                inst.commits.insert(from);
                // Endorse with our own USIG.
                let my_ui = self.usig.create(digest_of(&(view, n)));
                ctx.send(from, MinMsg::Commit { view, n, ui: my_ui });
                self.arm_view_timer(ctx);
            }

            MinMsg::Commit { view, n, ui } => {
                if view != self.view || self.primary_of(view) != ctx.id() {
                    return;
                }
                if !self.verifier.verify_monotonic(&ui, digest_of(&(view, n))) {
                    return;
                }
                let quorum = self.quorum();
                let inst = self.instances.entry(n).or_default();
                inst.commits.insert(from);
                if inst.commits.len() >= quorum && !inst.decided {
                    inst.decided = true;
                    ctx.phase(SPAN, n, view, CncPhase::Decision);
                    ctx.span_close(SPAN, n, view);
                    let me = ctx.id();
                    ctx.send_many(self.peer_replicas(me), MinMsg::Decide { view, n });
                    self.try_execute(ctx);
                }
            }

            MinMsg::Decide { view, n } => {
                if view != self.view {
                    return;
                }
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_some() {
                    if !inst.decided {
                        ctx.phase(SPAN, n, view, CncPhase::Decision);
                        ctx.span_close(SPAN, n, view);
                    }
                    inst.decided = true;
                    self.try_execute(ctx);
                }
            }

            MinMsg::ViewChange { new_view } => {
                if new_view <= self.view {
                    return;
                }
                self.vc_votes.entry(new_view).or_default().insert(from);
                // Join once anyone demands it (with n = 2f+1, a single
                // honest demand suffices to probe; safety comes from the
                // new primary's quorum).
                if self.max_vc_sent < new_view {
                    self.max_vc_sent = new_view;
                    ctx.phase(SPAN, self.executed_counter + 1, new_view, CncPhase::LeaderElection);
                    let me = ctx.id();
                    self.vc_votes.entry(new_view).or_default().insert(me);
                    ctx.send_many(self.peer_replicas(me), MinMsg::ViewChange { new_view });
                }
                let votes = self.vc_votes[&new_view].len();
                if votes >= self.quorum() && self.primary_of(new_view) == ctx.id() {
                    // Install ourselves as primary with state transfer.
                    self.view = new_view;
                    self.view_changes += 1;
                    self.instances.clear();
                    self.view_base = self.usig.counter();
                    self.executed_counter = self.usig.counter();
                    let view = self.view;
                    let counter_base = self.usig.counter();
                    let history = self.history.clone();
                    self.disarm_view_timer(ctx);
                    let me = ctx.id();
                    ctx.send_many(
                        self.peer_replicas(me),
                        MinMsg::NewView {
                            view,
                            counter_base,
                            history,
                        },
                    );
                }
            }

            MinMsg::NewView {
                view,
                counter_base,
                history,
            } => {
                if view < self.view || from != self.primary_of(view) {
                    return;
                }
                self.view = view;
                self.view_changes += 1;
                self.instances.clear();
                self.disarm_view_timer(ctx);
                // State transfer: replay missing commands (the dedup
                // client table suppresses ones we already executed).
                for cmd in history {
                    if self.machine.cached(cmd.client, cmd.seq).is_none() {
                        self.apply(ctx, cmd);
                    }
                }
                // The new primary's prepares continue from its attested
                // counter base: fast-forward its verification window and
                // re-base execution.
                self.verifier.fast_forward(from, counter_base);
                self.executed_counter = counter_base;
                self.view_base = counter_base;
                if !self.pending_requests.is_empty() {
                    self.arm_view_timer(ctx);
                }
            }

            MinMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<MinMsg>, timer: Timer) {
        if timer.kind == VIEW_TIMER {
            self.view_timer = None;
            let stalled = !self.pending_requests.is_empty()
                || self.instances.values().any(|i| i.cmd.is_some() && !i.executed);
            if stalled {
                let new_view = self.view.max(self.max_vc_sent) + 1;
                self.max_vc_sent = new_view;
                let me = ctx.id();
                self.vc_votes.entry(new_view).or_default().insert(me);
                ctx.send_many(self.peer_replicas(me), MinMsg::ViewChange { new_view });
                self.arm_view_timer(ctx);
            }
        }
    }
}

const CLIENT_RETRY: u64 = 7;

/// A MinBFT client (`f+1` matching replies).
pub struct MinClient {
    /// Client id == node id.
    pub client_id: u32,
    n_replicas: usize,
    f: usize,
    workload: KvWorkload,
    total: usize,
    /// Completed.
    pub completed: usize,
    current: Option<(Command<KvCommand>, Time)>,
    votes: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Latencies.
    pub latencies: LatencyRecorder,
}

impl MinClient {
    /// Creates a client issuing `total` commands.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, mix: KvMix, seed: u64) -> Self {
        MinClient {
            client_id,
            n_replicas,
            f: (n_replicas - 1) / 2,
            workload: KvWorkload::new(client_id, mix, seed),
            total,
            completed: 0,
            current: None,
            votes: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
        }
    }

    /// Whether done.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn send_next(&mut self, ctx: &mut Context<MinMsg>) {
        if self.done() {
            self.current = None;
            return;
        }
        let cmd = self.workload.next_command();
        self.current = Some((cmd.clone(), ctx.now()));
        self.votes.clear();
        ctx.send(NodeId(0), MinMsg::Request { cmd });
        ctx.set_timer(150_000, CLIENT_RETRY);
    }
}

impl Node for MinClient {
    type Msg = MinMsg;

    fn on_start(&mut self, ctx: &mut Context<MinMsg>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<MinMsg>, from: NodeId, msg: MinMsg) {
        if let MinMsg::Reply { seq, output, .. } = msg {
            let Some((cmd, sent_at)) = &self.current else {
                return;
            };
            if cmd.seq != seq {
                return;
            }
            let key = digest_of(&output).0;
            let votes = self.votes.entry(key).or_default();
            votes.insert(from);
            if votes.len() >= self.f + 1 {
                let sent = *sent_at;
                self.latencies.record(sent, ctx.now());
                self.completed += 1;
                self.current = None;
                self.send_next(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<MinMsg>, timer: Timer) {
        if timer.kind == CLIENT_RETRY && self.current.is_some() {
            if let Some((cmd, _)) = &self.current {
                let cmd = cmd.clone();
                for r in 0..self.n_replicas {
                    ctx.send(NodeId::from(r), MinMsg::Request { cmd: cmd.clone() });
                }
            }
            ctx.set_timer(150_000, CLIENT_RETRY);
        }
    }
}

simnet::node_enum! {
    /// A MinBFT process.
    pub enum MinProc: MinMsg {
        /// Replica.
        Replica(MinReplica),
        /// Client.
        Client(MinClient),
    }
}

/// A ready-to-run MinBFT cluster.
pub struct MinCluster {
    /// The simulation.
    pub sim: Sim<MinProc>,
    /// Replica count (`2f+1`).
    pub n_replicas: usize,
}

impl MinCluster {
    /// Builds a `2f+1` cluster with one client issuing `cmds` commands.
    pub fn new(n_replicas: usize, cmds: usize, config: NetConfig, seed: u64) -> Self {
        let mut sim = Sim::new(config, seed);
        for i in 0..n_replicas {
            sim.add_node(MinReplica::new(n_replicas, i as u32));
        }
        sim.add_node(MinClient::new(
            n_replicas as u32,
            n_replicas,
            cmds,
            KvMix::default(),
            seed,
        ));
        MinCluster { sim, n_replicas }
    }

    /// Runs to completion or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.client().done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.client().done();
            }
        }
    }

    /// The client.
    pub fn client(&self) -> &MinClient {
        self.sim
            .nodes()
            .find_map(|(_, p)| match p {
                MinProc::Client(c) => Some(c),
                _ => None,
            })
            .expect("client exists")
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &MinReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            MinProc::Replica(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_replicas_tolerate_one_fault() {
        // n = 2f+1 = 3 for f = 1 — the headline saving over PBFT's 4.
        let mut cluster = MinCluster::new(3, 10, NetConfig::lan(), 1);
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.client().completed, 10);
    }

    #[test]
    fn two_phases_linear_messages() {
        let mut cluster = MinCluster::new(3, 10, NetConfig::lan(), 2);
        assert!(cluster.run(Time::from_secs(10)));
        let m = cluster.sim.metrics();
        assert!(m.kind("prepare") > 0);
        assert!(m.kind("commit") > 0);
        // Leader-centric: commits go to the primary only, so commits ≈
        // prepares (both (n−1) per request) — not (n−1)² as in PBFT.
        let ratio = m.kind("commit") as f64 / m.kind("prepare") as f64;
        assert!(ratio < 1.5, "commit/prepare ratio {ratio} suggests all-to-all");
    }

    #[test]
    fn crashed_backup_is_tolerated() {
        let mut cluster = MinCluster::new(3, 10, NetConfig::lan(), 3);
        cluster.sim.crash_at(NodeId(2), Time::ZERO);
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.client().completed, 10);
    }

    #[test]
    fn primary_crash_view_change() {
        let mut cluster = MinCluster::new(3, 10, NetConfig::lan(), 4);
        cluster.sim.run_until(Time::from_millis(10));
        cluster.sim.crash_at(NodeId(0), Time::from_millis(11));
        assert!(
            cluster.run(Time::from_secs(30)),
            "completed {}",
            cluster.client().completed
        );
        assert_eq!(cluster.client().completed, 10);
        let vc = cluster.replicas().map(|r| r.view_changes).max().unwrap();
        assert!(vc >= 1);
    }

    #[test]
    fn usig_blocks_equivocation() {
        // A Byzantine primary tries to send different commands to the two
        // backups under the same attestation. The receivers re-digest the
        // command: the certificate no longer matches → rejected → view
        // change → honest primary serves.
        use simnet::{FilterAction, FnFilter};
        let mut cluster = MinCluster::new(3, 5, NetConfig::lan(), 5);
        cluster.sim.set_filter(
            NodeId(0),
            Box::new(FnFilter(
                |_f, to: NodeId, msg: &MinMsg, _r: &mut rand_chacha::ChaCha20Rng| {
                    if let MinMsg::Prepare { view, ui, cmd } = msg {
                        let mut cmd = cmd.clone();
                        cmd.op = KvCommand::Put {
                            key: format!("forged-{to}"),
                            value: "evil".into(),
                        };
                        // The attacker cannot re-attest: the USIG is
                        // tamper-proof, so it must reuse the old cert.
                        return FilterAction::Replace(MinMsg::Prepare {
                            view: *view,
                            ui: *ui,
                            cmd,
                        });
                    }
                    FilterAction::Deliver
                },
            )),
        );
        assert!(
            cluster.run(Time::from_secs(60)),
            "completed {}",
            cluster.client().completed
        );
        assert_eq!(cluster.client().completed, 5);
        let view = cluster.replicas().map(|r| r.view).max().unwrap();
        assert!(view >= 1, "the equivocating primary must be deposed");
    }

    #[test]
    fn replicas_converge() {
        let mut cluster = MinCluster::new(3, 15, NetConfig::lan(), 6);
        assert!(cluster.run(Time::from_secs(10)));
        cluster.sim.run_for(300_000);
        let digests: BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.executed() >= 15)
            .map(|r| r.machine().digest())
            .collect();
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn fewer_replicas_than_pbft_for_same_f() {
        // f = 1: MinBFT 3 vs PBFT 4; f = 2: 5 vs 7.
        for f in [1usize, 2] {
            let minbft_n = 2 * f + 1;
            let pbft_n = 3 * f + 1;
            assert!(minbft_n < pbft_n);
            let mut cluster = MinCluster::new(minbft_n, 5, NetConfig::lan(), 7);
            assert!(cluster.run(Time::from_secs(10)));
        }
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster = MinCluster::new(3, 8, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(10));
            (cluster.client().completed, cluster.sim.metrics().sent)
        };
        assert_eq!(run(8), run(8));
    }
}
