//! SeeMoRe (Amiri et al., ICDE 2020): hybrid-cloud consensus with `m`
//! malicious and `c` crash faults.
//!
//! Setting: nodes in the **private cloud** are trusted but few (crash-only);
//! nodes in the **public cloud** are plentiful but untrusted (Byzantine).
//! Network size `3m + 2c + 1`. Three modes trade load, latency and message
//! complexity:
//!
//! * **Mode 1 — trusted primary, centralized coordination**: the primary is
//!   private; two phases (primary→backups proposal, backups→primary
//!   decision making); quorum `2m + c + 1`; `O(n)` messages.
//! * **Mode 2 — trusted primary, decentralized coordination**: the primary
//!   is still private but the private cloud is *not* involved in phase 2:
//!   `3m + 1` public **proxies** decide among themselves; quorum `2m + 1`;
//!   `O(n²)`; two phases. Goal: reduce load on the private cloud.
//! * **Mode 3 — untrusted primary, decentralized coordination**: the
//!   primary is public, so an extra *proposal validation* phase guards
//!   against equivocation; three phases; quorum `2m + 1`; `O(n²)`.

use std::collections::{BTreeMap, BTreeSet};

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, StateMachine};
use simnet::{CncPhase, Context, NetConfig, Node, NodeId, RunOutcome, Sim, Time, Timer};

/// Span protocol label; instances are sequence numbers.
const SPAN: &str = "seemore";

use crate::sim_crypto::{digest_of, Digest};

/// The three SeeMoRe operating modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Trusted primary, centralized coordination.
    One,
    /// Trusted primary, decentralized (public-proxy) coordination.
    Two,
    /// Untrusted primary, decentralized coordination.
    Three,
}

/// Cluster parameters.
#[derive(Clone, Copy, Debug)]
pub struct SeeMoReConfig {
    /// Max malicious (public-cloud) faults.
    pub m: usize,
    /// Max crash (private-cloud) faults.
    pub c: usize,
    /// Operating mode.
    pub mode: Mode,
}

impl SeeMoReConfig {
    /// Total nodes: `3m + 2c + 1`.
    pub fn n(&self) -> usize {
        3 * self.m + 2 * self.c + 1
    }

    /// Private-cloud size (`2c + 1` trusted nodes: enough to survive `c`
    /// crashes).
    pub fn n_private(&self) -> usize {
        2 * self.c + 1
    }

    /// Public-cloud size (`3m` nodes; with one private node acting in the
    /// proxy set where needed, proxies number `3m + 1`).
    pub fn n_public(&self) -> usize {
        self.n() - self.n_private()
    }

    /// The decision quorum for this mode.
    pub fn quorum(&self) -> usize {
        match self.mode {
            Mode::One => 2 * self.m + self.c + 1,
            Mode::Two | Mode::Three => 2 * self.m + 1,
        }
    }

    /// Communication phases in the common case.
    pub fn phases(&self) -> usize {
        match self.mode {
            Mode::One | Mode::Two => 2,
            Mode::Three => 3,
        }
    }

    /// Nodes `0..n_private` are private; the rest are public.
    pub fn is_private(&self, id: NodeId) -> bool {
        id.index() < self.n_private()
    }

    /// The primary: private node 0 in modes 1–2, first public node in
    /// mode 3.
    pub fn primary(&self) -> NodeId {
        match self.mode {
            Mode::One | Mode::Two => NodeId(0),
            Mode::Three => NodeId::from(self.n_private()),
        }
    }

    /// The proxy set for decentralized modes: `3m + 1` nodes — the public
    /// cloud plus one private node to make up the count.
    pub fn proxies(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (self.n_private()..self.n()).map(NodeId::from).collect();
        while v.len() < 3 * self.m + 1 {
            v.insert(0, NodeId::from(self.n_private() - 1 - (3 * self.m + 1 - v.len() - 1)));
        }
        v.truncate(3 * self.m + 1);
        v
    }
}

/// SeeMoRe wire messages.
#[derive(Clone, Debug)]
pub enum SmMsg {
    /// Client request.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Reply to the client.
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence.
        seq: u64,
        /// Output.
        output: KvResponse,
    },
    /// Phase 1: the primary's proposal.
    Propose {
        /// Sequence number.
        n: u64,
        /// The command.
        cmd: Command<KvCommand>,
        /// Digest.
        digest: Digest,
    },
    /// Mode 3 phase 2: proxies echo the proposal to validate the untrusted
    /// primary didn't equivocate.
    Validate {
        /// Sequence.
        n: u64,
        /// Echoed digest.
        digest: Digest,
    },
    /// Decision-making vote (to the primary in mode 1; among proxies in
    /// modes 2–3).
    Ack {
        /// Sequence.
        n: u64,
        /// Digest being acknowledged.
        digest: Digest,
    },
    /// Decision dissemination.
    Decide {
        /// Sequence.
        n: u64,
        /// The command (so non-proxy nodes can execute).
        cmd: Command<KvCommand>,
    },
}

impl simnet::Payload for SmMsg {
    fn kind(&self) -> &'static str {
        match self {
            SmMsg::Request { .. } => "request",
            SmMsg::Reply { .. } => "reply",
            SmMsg::Propose { .. } => "propose",
            SmMsg::Validate { .. } => "validate",
            SmMsg::Ack { .. } => "ack",
            SmMsg::Decide { .. } => "decide",
        }
    }
}

#[derive(Debug, Default)]
struct SmInstance {
    cmd: Option<Command<KvCommand>>,
    digest: Digest,
    validates: BTreeSet<NodeId>,
    validated: bool,
    acks: BTreeSet<NodeId>,
    decided: bool,
    executed: bool,
}

/// A SeeMoRe replica.
pub struct SmReplica {
    /// Configuration.
    pub cfg: SeeMoReConfig,
    next_seq: u64,
    instances: BTreeMap<u64, SmInstance>,
    /// Executed prefix length.
    pub executed_upto: u64,
    machine: DedupKvMachine,
}

impl SmReplica {
    /// Creates a replica.
    pub fn new(cfg: SeeMoReConfig) -> Self {
        SmReplica {
            cfg,
            next_seq: 0,
            instances: BTreeMap::new(),
            executed_upto: 0,
            machine: DedupKvMachine::default(),
        }
    }

    /// The machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    fn peer_replicas(&self, me: NodeId) -> Vec<NodeId> {
        (0..self.cfg.n())
            .map(NodeId::from)
            .filter(|id| *id != me)
            .collect()
    }

    fn is_proxy(&self, id: NodeId) -> bool {
        match self.cfg.mode {
            Mode::One => false,
            Mode::Two | Mode::Three => self.cfg.proxies().contains(&id),
        }
    }

    fn decide(&mut self, ctx: &mut Context<SmMsg>, n: u64) {
        ctx.phase(SPAN, n, 0, CncPhase::Decision);
        ctx.span_close(SPAN, n, 0);
        let cmd = {
            let inst = self.instances.entry(n).or_default();
            if inst.decided {
                return;
            }
            inst.decided = true;
            inst.cmd.clone()
        };
        if let Some(cmd) = cmd {
            let me = ctx.id();
            ctx.send_many(self.peer_replicas(me), SmMsg::Decide { n, cmd });
        }
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut Context<SmMsg>) {
        loop {
            let next = self.executed_upto + 1;
            let ready = self
                .instances
                .get(&next)
                .is_some_and(|i| i.decided && !i.executed && i.cmd.is_some());
            if !ready {
                return;
            }
            let cmd = {
                let inst = self.instances.get_mut(&next).expect("ready");
                inst.executed = true;
                inst.cmd.clone().expect("ready")
            };
            let output = self
                .machine
                .apply(&consensus_core::SmrOp::Cmd(cmd.clone()))
                .expect("output");
            self.executed_upto = next;
            ctx.send(
                NodeId(cmd.client),
                SmMsg::Reply {
                    client: cmd.client,
                    seq: cmd.seq,
                    output,
                },
            );
        }
    }
}

impl Node for SmReplica {
    type Msg = SmMsg;

    fn on_start(&mut self, _ctx: &mut Context<SmMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<SmMsg>, from: NodeId, msg: SmMsg) {
        match msg {
            SmMsg::Request { cmd } => {
                if self.cfg.primary() != ctx.id() {
                    let p = self.cfg.primary();
                    ctx.send(p, SmMsg::Request { cmd });
                    return;
                }
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    ctx.send(
                        NodeId(cmd.client),
                        SmMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                let in_flight = self.instances.values().any(|i| {
                    !i.executed
                        && i.cmd
                            .as_ref()
                            .is_some_and(|c| c.client == cmd.client && c.seq == cmd.seq)
                });
                if in_flight {
                    return;
                }
                self.next_seq += 1;
                let n = self.next_seq;
                let digest = digest_of(&cmd);
                ctx.span_open(SPAN, n, 0);
                ctx.phase(SPAN, n, 0, CncPhase::ValueDiscovery);
                let me = ctx.id();
                let inst = self.instances.entry(n).or_default();
                inst.cmd = Some(cmd.clone());
                inst.digest = digest;
                inst.validated = self.cfg.mode != Mode::Three;
                if self.cfg.mode == Mode::One {
                    // The trusted primary's own vote counts toward the
                    // 2m+c+1 quorum.
                    inst.acks.insert(me);
                }
                let me2 = ctx.id();
                ctx.send_many(self.peer_replicas(me2), SmMsg::Propose { n, cmd, digest });
            }

            SmMsg::Propose { n, cmd, digest } => {
                if from != self.cfg.primary() || digest != digest_of(&cmd) {
                    return;
                }
                let me = ctx.id();
                let proxies = self.cfg.proxies();
                {
                    let inst = self.instances.entry(n).or_default();
                    if inst.cmd.is_some() && inst.digest != digest {
                        return; // equivocation: keep the first proposal
                    }
                    if inst.cmd.is_none() {
                        ctx.span_open(SPAN, n, 0);
                        ctx.phase(SPAN, n, 0, CncPhase::Agreement);
                    }
                    inst.cmd = Some(cmd);
                    inst.digest = digest;
                }
                match self.cfg.mode {
                    Mode::One => {
                        // Centralized: everyone acks to the trusted primary.
                        self.instances.entry(n).or_default().validated = true;
                        ctx.send(from, SmMsg::Ack { n, digest });
                    }
                    Mode::Two => {
                        // Decentralized: proxies ack among themselves.
                        self.instances.entry(n).or_default().validated = true;
                        if self.is_proxy(me) {
                            ctx.send_many(proxies.iter().copied(), SmMsg::Ack { n, digest });
                        }
                    }
                    Mode::Three => {
                        // Untrusted primary: validate first.
                        if self.is_proxy(me) {
                            ctx.send_many(
                                proxies.iter().copied(),
                                SmMsg::Validate { n, digest },
                            );
                        }
                    }
                }
            }

            SmMsg::Validate { n, digest } => {
                if self.cfg.mode != Mode::Three || !self.is_proxy(ctx.id()) {
                    return;
                }
                let quorum = self.cfg.quorum();
                let proxies = self.cfg.proxies();
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_some() && inst.digest != digest {
                    return;
                }
                inst.validates.insert(from);
                if inst.validates.len() >= quorum && !inst.validated {
                    inst.validated = true;
                    let d = if inst.cmd.is_some() { inst.digest } else { digest };
                    ctx.send_many(proxies.iter().copied(), SmMsg::Ack { n, digest: d });
                }
            }

            SmMsg::Ack { n, digest } => {
                let quorum = self.cfg.quorum();
                let me = ctx.id();
                // Mode 1: only the primary collects; modes 2–3: proxies.
                let collector = match self.cfg.mode {
                    Mode::One => self.cfg.primary() == me,
                    Mode::Two | Mode::Three => self.is_proxy(me),
                };
                if !collector {
                    return;
                }
                let ready = {
                    let inst = self.instances.entry(n).or_default();
                    if inst.cmd.is_some() && inst.digest != digest {
                        return;
                    }
                    if !inst.validated && self.cfg.mode == Mode::Three {
                        // Acks can arrive before our own validation quorum;
                        // buffer them.
                    }
                    inst.acks.insert(from);
                    inst.acks.len() >= quorum && inst.cmd.is_some()
                };
                if ready {
                    self.decide(ctx, n);
                }
            }

            SmMsg::Decide { n, cmd } => {
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_none() {
                    inst.digest = digest_of(&cmd);
                    inst.cmd = Some(cmd);
                }
                if !inst.decided {
                    ctx.phase(SPAN, n, 0, CncPhase::Decision);
                    ctx.span_close(SPAN, n, 0);
                }
                inst.decided = true;
                self.try_execute(ctx);
            }

            SmMsg::Reply { .. } => {}
        }
    }
}

const CLIENT_RETRY: u64 = 3;

/// A SeeMoRe client: `m+1` matching replies (a correct node is among them).
pub struct SmClient {
    /// Client id == node id.
    pub client_id: u32,
    cfg: SeeMoReConfig,
    workload: KvWorkload,
    total: usize,
    /// Completed.
    pub completed: usize,
    current: Option<(Command<KvCommand>, Time)>,
    votes: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Latencies.
    pub latencies: LatencyRecorder,
}

impl SmClient {
    /// Creates a client.
    pub fn new(client_id: u32, cfg: SeeMoReConfig, total: usize, seed: u64) -> Self {
        SmClient {
            client_id,
            cfg,
            workload: KvWorkload::new(client_id, KvMix::default(), seed),
            total,
            completed: 0,
            current: None,
            votes: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
        }
    }

    /// Whether done.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn send_next(&mut self, ctx: &mut Context<SmMsg>) {
        if self.done() {
            self.current = None;
            return;
        }
        let cmd = self.workload.next_command();
        self.current = Some((cmd.clone(), ctx.now()));
        self.votes.clear();
        let p = self.cfg.primary();
        ctx.send(p, SmMsg::Request { cmd });
        ctx.set_timer(200_000, CLIENT_RETRY);
    }
}

impl Node for SmClient {
    type Msg = SmMsg;

    fn on_start(&mut self, ctx: &mut Context<SmMsg>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<SmMsg>, from: NodeId, msg: SmMsg) {
        if let SmMsg::Reply { seq, output, .. } = msg {
            let Some((cmd, sent_at)) = &self.current else {
                return;
            };
            if cmd.seq != seq {
                return;
            }
            let key = digest_of(&output).0;
            let votes = self.votes.entry(key).or_default();
            votes.insert(from);
            // A trusted (private) replier is definitive; otherwise m+1
            // matching public replies.
            let trusted = votes.iter().any(|id| self.cfg.is_private(*id));
            if trusted || votes.len() >= self.cfg.m + 1 {
                let sent = *sent_at;
                self.latencies.record(sent, ctx.now());
                self.completed += 1;
                self.current = None;
                self.send_next(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<SmMsg>, timer: Timer) {
        if timer.kind == CLIENT_RETRY && self.current.is_some() {
            if let Some((cmd, _)) = &self.current {
                let cmd = cmd.clone();
                for r in 0..self.cfg.n() {
                    ctx.send(NodeId::from(r), SmMsg::Request { cmd: cmd.clone() });
                }
            }
            ctx.set_timer(200_000, CLIENT_RETRY);
        }
    }
}

simnet::node_enum! {
    /// A SeeMoRe process.
    pub enum SmProc: SmMsg {
        /// Replica.
        Replica(SmReplica),
        /// Client.
        Client(SmClient),
    }
}

/// A ready-to-run SeeMoRe cluster.
pub struct SmCluster {
    /// The simulation.
    pub sim: Sim<SmProc>,
    /// Configuration.
    pub cfg: SeeMoReConfig,
}

impl SmCluster {
    /// Builds the cluster with one client issuing `cmds` commands.
    pub fn new(cfg: SeeMoReConfig, cmds: usize, config: NetConfig, seed: u64) -> Self {
        let mut sim = Sim::new(config, seed);
        for _ in 0..cfg.n() {
            sim.add_node(SmReplica::new(cfg));
        }
        sim.add_node(SmClient::new(cfg.n() as u32, cfg, cmds, seed));
        SmCluster { sim, cfg }
    }

    /// Runs to completion or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.client().done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.client().done();
            }
        }
    }

    /// The client.
    pub fn client(&self) -> &SmClient {
        self.sim
            .nodes()
            .find_map(|(_, p)| match p {
                SmProc::Client(c) => Some(c),
                _ => None,
            })
            .expect("client exists")
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &SmReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            SmProc::Replica(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::DropAll;

    fn cfg(m: usize, c: usize, mode: Mode) -> SeeMoReConfig {
        SeeMoReConfig { m, c, mode }
    }

    #[test]
    fn config_math_matches_slides() {
        let k = cfg(1, 1, Mode::One);
        assert_eq!(k.n(), 6); // 3m+2c+1
        assert_eq!(k.quorum(), 4); // 2m+c+1
        assert_eq!(k.phases(), 2);
        let k2 = cfg(1, 1, Mode::Two);
        assert_eq!(k2.quorum(), 3); // 2m+1
        assert_eq!(k2.phases(), 2);
        let k3 = cfg(1, 1, Mode::Three);
        assert_eq!(k3.phases(), 3);
        assert_eq!(k3.proxies().len(), 4); // 3m+1
        assert!(k.is_private(NodeId(0)));
        assert!(!k.is_private(NodeId(5)));
    }

    #[test]
    fn all_three_modes_commit() {
        for mode in [Mode::One, Mode::Two, Mode::Three] {
            let mut cluster = SmCluster::new(cfg(1, 1, mode), 8, NetConfig::lan(), 1);
            assert!(
                cluster.run(Time::from_secs(20)),
                "{mode:?}: {}",
                cluster.client().completed
            );
            assert_eq!(cluster.client().completed, 8, "{mode:?}");
        }
    }

    #[test]
    fn mode1_is_linear_modes23_quadratic() {
        let msgs = |mode| {
            let mut cluster = SmCluster::new(cfg(1, 1, mode), 10, NetConfig::lan(), 2);
            assert!(cluster.run(Time::from_secs(20)));
            cluster.sim.metrics().sent as f64 / 10.0
        };
        let m1 = msgs(Mode::One);
        let m2 = msgs(Mode::Two);
        let m3 = msgs(Mode::Three);
        assert!(m2 > m1, "decentralized coordination costs more: {m1} vs {m2}");
        assert!(m3 > m2, "validation phase adds messages: {m2} vs {m3}");
    }

    #[test]
    fn mode3_has_validation_phase() {
        let mut cluster = SmCluster::new(cfg(1, 1, Mode::Three), 5, NetConfig::lan(), 3);
        assert!(cluster.run(Time::from_secs(20)));
        assert!(cluster.sim.metrics().kind("validate") > 0);
        let mut c1 = SmCluster::new(cfg(1, 1, Mode::One), 5, NetConfig::lan(), 3);
        assert!(c1.run(Time::from_secs(20)));
        assert_eq!(c1.sim.metrics().kind("validate"), 0);
    }

    #[test]
    fn tolerates_c_private_crashes_and_m_public_mutes() {
        for mode in [Mode::One, Mode::Two] {
            let k = cfg(1, 1, mode);
            let mut cluster = SmCluster::new(k, 6, NetConfig::lan(), 4);
            // Crash one private node outside the proxy set: c = 1.
            cluster.sim.crash_at(NodeId(1), Time::ZERO);
            // Mute one public node: m = 1 (it still receives but never
            // sends — a silent Byzantine fault).
            cluster.sim.set_filter(NodeId(5), Box::new(DropAll));
            assert!(
                cluster.run(Time::from_secs(30)),
                "{mode:?}: {}",
                cluster.client().completed
            );
            assert_eq!(cluster.client().completed, 6, "{mode:?}");
        }
    }

    #[test]
    fn replicas_converge() {
        let mut cluster = SmCluster::new(cfg(1, 1, Mode::One), 12, NetConfig::lan(), 5);
        assert!(cluster.run(Time::from_secs(20)));
        cluster.sim.run_for(300_000);
        let digests: BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.executed_upto >= 12)
            .map(|r| r.machine().digest())
            .collect();
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster = SmCluster::new(cfg(1, 1, Mode::Two), 6, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(20));
            (cluster.client().completed, cluster.sim.metrics().sent)
        };
        assert_eq!(run(6), run(6));
    }
}
