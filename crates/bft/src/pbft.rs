//! Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI '99).
//!
//! The tutorial's summary, all implemented here:
//!
//! * **Configuration**: `3f+1` replicas; quorums of `2f+1`; any two quorums
//!   intersect in at least one *correct* replica (`f+1` overlap).
//! * **Normal case** (three phases): *pre-prepare* picks the order of
//!   requests, *prepare* ensures order within views, *commit* ensures order
//!   across views. A replica executes request `m` once `m` is committed and
//!   all lower sequence numbers have executed; the client waits for `f+1`
//!   matching replies. Steady state costs `O(n²)` messages because prepare
//!   and commit are all-to-all.
//! * **View change**: timeouts trigger it; the new primary needs `2f+1`
//!   view-change messages and re-proposes every prepared request —
//!   `O(n³)` message complexity (each of `O(n)` view-changes carries
//!   `O(n)`-sized certificates to `O(n)` receivers).
//! * **Garbage collection**: periodic checkpoints; `2f+1` matching
//!   checkpoint messages form a stable proof allowing the log below the
//!   checkpoint to be discarded.
//!
//! Why not plain Paxos with Byzantine nodes? A malicious primary could
//! assign the same sequence number to different requests — the extra
//! (prepare) phase makes any two replicas that prepare the same `(v, n)`
//! agree on the request digest, which is exactly what the tests exercise
//! with an equivocating primary.

use std::collections::{BTreeMap, BTreeSet};

use consensus_core::driver::{
    BatchConfig, ByzantineWindow, ClusterDriver, DecidedEntry, DriverConfig,
};
use consensus_core::history::ClientRecord;
use consensus_core::smr::Slot;
use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder, WorkloadMode};
use consensus_core::{Command, HistorySink, KvCommand, KvResponse, ReplicatedLog, StateMachine};
use rand_chacha::ChaCha20Rng;
use simnet::{
    CausalSpan, CncPhase, Context, FilterAction, FnFilter, Metrics, NetConfig, Node, NodeId,
    RunOutcome, Sim, Time, Timer, TimerId,
};

use crate::sim_crypto::{digest_of, Digest};

/// Span protocol label; instances are sequence numbers, rounds are views.
const SPAN: &str = "pbft";

/// PBFT wire messages.
#[derive(Clone, Debug)]
pub enum PbftMsg {
    /// Client request.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Replica reply; the client accepts an output at `f+1` matching
    /// replies.
    Reply {
        /// View in which the request executed.
        view: u64,
        /// Client id.
        client: u32,
        /// Client sequence number.
        seq: u64,
        /// Execution output.
        output: KvResponse,
    },
    /// Phase 1: primary assigns sequence number `n` to a batch of requests.
    PrePrepare {
        /// Current view.
        view: u64,
        /// Assigned sequence number.
        n: u64,
        /// Digest of the batch.
        digest: Digest,
        /// The batched requests (one under `BatchConfig::unbatched()`).
        cmds: Vec<Command<KvCommand>>,
    },
    /// Phase 2: backups agree on the order within the view.
    Prepare {
        /// View.
        view: u64,
        /// Sequence number.
        n: u64,
        /// Request digest.
        digest: Digest,
    },
    /// Phase 3: replicas ensure the order survives view changes.
    Commit {
        /// View.
        view: u64,
        /// Sequence number.
        n: u64,
        /// Request digest.
        digest: Digest,
    },
    /// Periodic state checkpoint.
    Checkpoint {
        /// Sequence number of the checkpoint.
        n: u64,
        /// State digest after executing up to `n`.
        state: Digest,
    },
    /// View-change vote.
    ViewChange {
        /// Proposed new view.
        new_view: u64,
        /// Sender's last stable checkpoint.
        stable_n: u64,
        /// Batches prepared above the stable checkpoint: `(view, n, cmds)`.
        prepared: Vec<PreparedClaim>,
    },
    /// New primary's installation message.
    NewView {
        /// The new view.
        view: u64,
        /// Re-proposed pre-prepares `(n, cmds)`.
        pre_prepares: Vec<(u64, Vec<Command<KvCommand>>)>,
    },
}

impl simnet::Payload for PbftMsg {
    fn kind(&self) -> &'static str {
        match self {
            PbftMsg::Request { .. } => "request",
            PbftMsg::Reply { .. } => "reply",
            PbftMsg::PrePrepare { .. } => "pre-prepare",
            PbftMsg::Prepare { .. } => "prepare",
            PbftMsg::Commit { .. } => "commit",
            PbftMsg::Checkpoint { .. } => "checkpoint",
            PbftMsg::ViewChange { .. } => "view-change",
            PbftMsg::NewView { .. } => "new-view",
        }
    }

    fn size_bytes(&self) -> usize {
        // Per-command payload is 48 bytes; the constants are calibrated so
        // single-command messages weigh exactly what they did before
        // batching existed. Payload beyond the flat budget (padded large
        // values) adds its real bytes — see `KvCommand::payload_excess`.
        fn batch_bytes(cmds: &[Command<KvCommand>]) -> usize {
            cmds.iter().map(|c| 48 + c.op.payload_excess()).sum()
        }
        match self {
            PbftMsg::Request { cmd } => 80 + cmd.op.payload_excess(),
            PbftMsg::PrePrepare { cmds, .. } => 32 + batch_bytes(cmds),
            PbftMsg::ViewChange { prepared, .. } => {
                48 + prepared
                    .iter()
                    .map(|(_, _, cmds)| 48 + batch_bytes(cmds))
                    .sum::<usize>()
            }
            PbftMsg::NewView { pre_prepares, .. } => {
                32 + pre_prepares
                    .iter()
                    .map(|(_, cmds)| 32 + batch_bytes(cmds))
                    .sum::<usize>()
            }
            _ => 80,
        }
    }
}

/// The PBFT execution machine: a KV store plus the client dedup table,
/// executing one *batch* of commands per log slot (sequence number).
/// Identical state evolution to the unbatched machine given the same
/// flattened command sequence, so state digests are comparable across
/// batch configurations.
#[derive(Debug, Default)]
pub struct BatchMachine {
    kv: consensus_core::KvStore,
    client_table: BTreeMap<u32, (u64, KvResponse)>,
}

impl BatchMachine {
    /// Cached reply for `(client, seq)` if that command already applied.
    pub fn cached(&self, client: u32, seq: u64) -> Option<&KvResponse> {
        self.client_table
            .get(&client)
            .filter(|(s, _)| *s >= seq)
            .map(|(_, out)| out)
    }

    /// Applies one command with client-table dedup and returns the reply.
    fn apply_one(&mut self, cmd: &Command<KvCommand>) -> (u32, u64, KvResponse) {
        if let Some((last, out)) = self.client_table.get(&cmd.client) {
            if cmd.seq <= *last {
                return (cmd.client, cmd.seq, out.clone());
            }
        }
        let out = self.kv.apply(&cmd.op);
        self.client_table.insert(cmd.client, (cmd.seq, out.clone()));
        (cmd.client, cmd.seq, out)
    }
}

impl StateMachine for BatchMachine {
    type Op = Vec<Command<KvCommand>>;
    /// One `(client, seq, reply)` per command in the batch.
    type Output = Vec<(u32, u64, KvResponse)>;

    fn apply(&mut self, op: &Self::Op) -> Self::Output {
        op.iter().map(|c| self.apply_one(c)).collect()
    }

    fn digest(&self) -> u64 {
        let mut h = self.kv.digest();
        for (c, (s, _)) in &self.client_table {
            h = h
                .rotate_left(7)
                .wrapping_add(u64::from(*c).wrapping_mul(31).wrapping_add(*s));
        }
        h
    }
}

#[derive(Debug, Default)]
struct Instance {
    cmds: Option<Vec<Command<KvCommand>>>,
    digest: Digest,
    view: u64,
    pre_prepared: bool,
    prepares: BTreeSet<NodeId>,
    commits: BTreeSet<NodeId>,
    prepared: bool,
    committed: bool,
    executed: bool,
}

const VIEW_TIMER: u64 = 1;
/// Flush timer for underfull request batches (primary only).
const BATCH_FLUSH: u64 = 2;

/// Default checkpoint interval (sequence numbers between checkpoints).
pub const CHECKPOINT_INTERVAL: u64 = 16;

/// One replica's claim about a prepared batch, carried in view-change
/// messages: `(view, sequence number, commands)`.
pub type PreparedClaim = (u64, u64, Vec<Command<KvCommand>>);

/// A PBFT replica.
pub struct PbftReplica {
    n_replicas: usize,
    /// Fault bound `f = ⌊(n−1)/3⌋`.
    pub f: usize,
    /// Current view; primary = `view mod n`.
    pub view: u64,
    next_seq: u64,
    /// Last stable checkpoint sequence number.
    pub low_water: u64,
    instances: BTreeMap<u64, Instance>,
    exec: ReplicatedLog<BatchMachine>,
    /// Batching/pipelining knob. Under `BatchConfig::unbatched()` every
    /// request is ordered immediately in its own sequence number, exactly
    /// as before the knob existed.
    batch: BatchConfig,
    /// Requests accepted by the primary but not yet assigned a sequence
    /// number — the next batch.
    queue: Vec<Command<KvCommand>>,
    /// Whether a `BATCH_FLUSH` timer is outstanding.
    flush_armed: bool,
    /// The `BATCH_FLUSH` timer fired while the batch was held back.
    overdue: bool,
    /// Highest executed sequence number.
    pub executed_upto: u64,
    checkpoint_interval: u64,
    /// Checkpoint votes: (n, digest) → voters.
    checkpoint_votes: BTreeMap<(u64, Digest), BTreeSet<NodeId>>,
    /// View-change votes per proposed view.
    view_change_votes: BTreeMap<u64, BTreeMap<NodeId, (u64, Vec<PreparedClaim>)>>,
    /// Views this replica has vote-changed into.
    max_vc_sent: u64,
    view_timer: Option<TimerId>,
    /// Client requests relayed to the primary and not yet executed — these
    /// are what the view-change watchdog watches.
    pending_requests: BTreeSet<(u32, u64)>,
    /// Completed view changes observed (for experiment F12).
    pub view_changes_completed: u64,
    /// Whether a NewView for the current view was installed (primary sets
    /// it implicitly).
    in_new_view: bool,
}

impl PbftReplica {
    /// Creates an unbatched replica in a cluster of `n_replicas = 3f+1`.
    pub fn new(n_replicas: usize) -> Self {
        Self::new_with(n_replicas, BatchConfig::unbatched())
    }

    /// Creates a replica with an explicit batching config.
    pub fn new_with(n_replicas: usize, batch: BatchConfig) -> Self {
        let f = (n_replicas - 1) / 3;
        PbftReplica {
            n_replicas,
            f,
            view: 0,
            next_seq: 0,
            low_water: 0,
            instances: BTreeMap::new(),
            exec: ReplicatedLog::new(),
            batch,
            queue: Vec::new(),
            flush_armed: false,
            overdue: false,
            executed_upto: 0,
            checkpoint_interval: CHECKPOINT_INTERVAL,
            checkpoint_votes: BTreeMap::new(),
            view_change_votes: BTreeMap::new(),
            max_vc_sent: 0,
            view_timer: None,
            pending_requests: BTreeSet::new(),
            view_changes_completed: 0,
            in_new_view: true,
        }
    }

    /// Overrides the checkpoint interval (ablation experiments).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, k: u64) -> Self {
        self.checkpoint_interval = k;
        self
    }

    /// The primary of view `v`.
    pub fn primary_of(&self, v: u64) -> NodeId {
        NodeId((v % self.n_replicas as u64) as u32)
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self, me: NodeId) -> bool {
        self.primary_of(self.view) == me
    }

    /// Quorum size `2f+1`.
    pub fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Number of retained (non-GC'd) log instances.
    pub fn log_len(&self) -> usize {
        self.instances.len()
    }

    /// The replicated state machine.
    pub fn machine(&self) -> &BatchMachine {
        self.exec.machine()
    }

    /// The execution log (sequence `n` lives at slot `n - 1`) — what safety
    /// checkers compare across replicas.
    pub fn exec_log(&self) -> &ReplicatedLog<BatchMachine> {
        &self.exec
    }

    /// All replica ids except this node.
    fn peer_replicas(&self, me: NodeId) -> Vec<NodeId> {
        (0..self.n_replicas)
            .map(NodeId::from)
            .filter(|id| *id != me)
            .collect()
    }

    fn arm_view_timer(&mut self, ctx: &mut Context<PbftMsg>) {
        if self.view_timer.is_none() {
            // Grows with the view so cascading view changes eventually find
            // a live primary.
            let timeout = 40_000 * (1 + self.view.saturating_sub(self.max_vc_sent).min(4))
                + 10_000 * u64::from(ctx.id().0);
            self.view_timer = Some(ctx.set_timer(timeout, VIEW_TIMER));
        }
    }

    fn disarm_view_timer(&mut self, ctx: &mut Context<PbftMsg>) {
        if let Some(t) = self.view_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn has_pending_work(&self) -> bool {
        !self.pending_requests.is_empty()
            || self
                .instances
                .values()
                .any(|i| i.pre_prepared && !i.executed)
    }

    fn instance(&mut self, n: u64) -> &mut Instance {
        self.instances.entry(n).or_default()
    }

    /// Primary path: accept a new request into the batch queue.
    fn enqueue(&mut self, ctx: &mut Context<PbftMsg>, cmd: Command<KvCommand>) {
        let in_instances = self.instances.values().any(|i| {
            i.view == self.view
                && !i.executed
                && i.cmds
                    .iter()
                    .flatten()
                    .any(|c| c.client == cmd.client && c.seq == cmd.seq)
        });
        let in_queue = self
            .queue
            .iter()
            .any(|c| c.client == cmd.client && c.seq == cmd.seq);
        if in_instances || in_queue {
            return;
        }
        self.queue.push(cmd);
        self.try_flush(ctx);
    }

    /// Assigns sequence numbers to queued batches while the pipeline window
    /// has room. An underfull batch is held open `max_delay` µs for more
    /// requests (unless the flush timer already fired).
    fn try_flush(&mut self, ctx: &mut Context<PbftMsg>) {
        if !self.is_primary(ctx.id()) {
            return;
        }
        while !self.queue.is_empty() {
            let in_flight = self.next_seq.saturating_sub(self.executed_upto);
            if in_flight as usize >= self.batch.pipeline_window {
                return; // executions drain the window and re-trigger this
            }
            let underfull = self.queue.len() < self.batch.max_batch.max(1);
            if underfull && self.batch.max_delay > 0 && !self.overdue {
                if !self.flush_armed {
                    self.flush_armed = true;
                    ctx.set_timer(self.batch.max_delay, BATCH_FLUSH);
                }
                return;
            }
            self.flush_one(ctx);
        }
        self.overdue = false;
    }

    /// Primary path: bind the next batch to a sequence number.
    fn flush_one(&mut self, ctx: &mut Context<PbftMsg>) {
        let k = self.queue.len().min(self.batch.max_batch.max(1));
        let cmds: Vec<Command<KvCommand>> = self.queue.drain(..k).collect();
        ctx.record_batch(k as u64);
        self.next_seq += 1;
        let n = self.next_seq;
        let digest = digest_of(&cmds);
        let view = self.view;
        // Pre-prepare is where the primary binds a value to a sequence
        // number — PBFT's value-discovery phase.
        ctx.span_open(SPAN, n, view);
        ctx.phase(SPAN, n, view, CncPhase::ValueDiscovery);
        {
            let me = ctx.id();
            let inst = self.instance(n);
            inst.cmds = Some(cmds.clone());
            inst.digest = digest;
            inst.view = view;
            inst.pre_prepared = true;
            inst.prepares.insert(me); // the pre-prepare is the primary's prepare
        }
        let me = ctx.id();
        ctx.send_many(
            self.peer_replicas(me),
            PbftMsg::PrePrepare {
                view,
                n,
                digest,
                cmds,
            },
        );
        self.arm_view_timer(ctx);
    }

    /// Drops primary-side batching state (queued requests are re-sent by
    /// their clients' retry path if they matter).
    fn reset_batching(&mut self) {
        self.queue.clear();
        self.flush_armed = false;
        self.overdue = false;
    }

    fn on_prepared(&mut self, ctx: &mut Context<PbftMsg>, n: u64) {
        let view = self.view;
        let me = ctx.id();
        let inst = self.instance(n);
        if inst.prepared {
            return;
        }
        inst.prepared = true;
        inst.commits.insert(me);
        let digest = inst.digest;
        ctx.phase(SPAN, n, view, CncPhase::Agreement);
        ctx.send_many(self.peer_replicas(me), PbftMsg::Commit { view, n, digest });
        self.maybe_committed(ctx, n);
    }

    fn maybe_committed(&mut self, ctx: &mut Context<PbftMsg>, n: u64) {
        let quorum = self.quorum();
        let inst = self.instance(n);
        if inst.committed || !inst.prepared || inst.commits.len() < quorum {
            return;
        }
        inst.committed = true;
        let view = inst.view;
        ctx.phase(SPAN, n, view, CncPhase::Decision);
        ctx.span_close(SPAN, n, view);
        self.try_execute(ctx);
    }

    fn try_execute(&mut self, ctx: &mut Context<PbftMsg>) {
        loop {
            let next = self.executed_upto + 1;
            let ready = self
                .instances
                .get(&next)
                .is_some_and(|i| i.committed && !i.executed);
            if !ready {
                break;
            }
            let cmds = {
                let inst = self.instance(next);
                inst.executed = true;
                inst.cmds.clone().expect("committed instance has commands")
            };
            let outputs = self.exec.decide((next - 1) as usize, cmds.clone());
            self.executed_upto = next;
            for cmd in &cmds {
                self.pending_requests.remove(&(cmd.client, cmd.seq));
            }
            for (_, outs) in outputs {
                for (client, seq, output) in outs {
                    ctx.send(
                        NodeId(client),
                        PbftMsg::Reply {
                            view: self.view,
                            client,
                            seq,
                            output,
                        },
                    );
                }
            }
            // Progress: reset the watchdog.
            self.disarm_view_timer(ctx);
            if self.has_pending_work() {
                self.arm_view_timer(ctx);
            }
            // Executions drain the pipeline window: more batches may flush.
            self.try_flush(ctx);
            // Checkpoint?
            if next.is_multiple_of(self.checkpoint_interval) {
                let state = Digest(self.exec.machine().digest());
                let me = ctx.id();
                self.checkpoint_votes
                    .entry((next, state))
                    .or_default()
                    .insert(me);
                let me = ctx.id();
                ctx.send_many(
                    self.peer_replicas(me),
                    PbftMsg::Checkpoint { n: next, state },
                );
                self.maybe_stable_checkpoint(next, state);
            }
        }
    }

    fn maybe_stable_checkpoint(&mut self, n: u64, state: Digest) {
        let quorum = self.quorum();
        let stable = self
            .checkpoint_votes
            .get(&(n, state))
            .is_some_and(|votes| votes.len() >= quorum);
        if stable && n > self.low_water {
            self.low_water = n;
            // Discard everything at or below the stable checkpoint.
            self.instances.retain(|&seq, _| seq > n);
            self.checkpoint_votes.retain(|&(seq, _), _| seq > n);
            self.exec.truncate_prefix(n as usize);
        }
    }

    fn start_view_change(&mut self, ctx: &mut Context<PbftMsg>) {
        let new_view = self.view + 1;
        ctx.phase(SPAN, self.executed_upto + 1, new_view, CncPhase::LeaderElection);
        self.max_vc_sent = self.max_vc_sent.max(new_view);
        let prepared: Vec<PreparedClaim> = self
            .instances
            .iter()
            .filter(|(_, i)| i.prepared && !i.executed)
            .filter_map(|(&n, i)| i.cmds.clone().map(|c| (i.view, n, c)))
            .collect();
        let stable_n = self.low_water;
        // Record own vote.
        let me = ctx.id();
        self.view_change_votes
            .entry(new_view)
            .or_default()
            .insert(me, (stable_n, prepared.clone()));
        ctx.send_many(
            self.peer_replicas(me),
            PbftMsg::ViewChange {
                new_view,
                stable_n,
                prepared,
            },
        );
        self.maybe_install_view(ctx, new_view);
    }

    fn maybe_install_view(&mut self, ctx: &mut Context<PbftMsg>, v: u64) {
        if v <= self.view && self.in_new_view {
            return;
        }
        if self.primary_of(v) != ctx.id() {
            return;
        }
        let quorum = self.quorum();
        let Some(votes) = self.view_change_votes.get(&v) else {
            return;
        };
        if votes.len() < quorum {
            return;
        }
        // Become primary of view v: re-propose every prepared batch at
        // its original sequence number, choosing the highest-view claim
        // per n.
        let mut chosen: BTreeMap<u64, (u64, Vec<Command<KvCommand>>)> = BTreeMap::new();
        let mut max_n = self.low_water.max(self.executed_upto);
        for (_, (_, prepared)) in votes.iter() {
            for (pv, n, cmds) in prepared {
                max_n = max_n.max(*n);
                match chosen.get(n) {
                    Some((existing, _)) if *existing >= *pv => {}
                    _ => {
                        chosen.insert(*n, (*pv, cmds.clone()));
                    }
                }
            }
        }
        self.view = v;
        self.in_new_view = true;
        self.view_changes_completed += 1;
        self.next_seq = max_n;
        self.reset_batching();
        // Instances that neither committed nor appear in the new-view set
        // are abandoned; any request they carried will be re-ordered.
        self.instances.retain(|_, i| i.committed);
        self.disarm_view_timer(ctx);
        let pre_prepares: Vec<(u64, Vec<Command<KvCommand>>)> = chosen
            .iter()
            .map(|(&n, (_, cmds))| (n, cmds.clone()))
            .collect();
        let me = ctx.id();
        ctx.send_many(
            self.peer_replicas(me),
            PbftMsg::NewView {
                view: v,
                pre_prepares: pre_prepares.clone(),
            },
        );
        // Process own re-proposals.
        for (n, cmds) in pre_prepares {
            self.accept_pre_prepare(ctx, v, n, digest_of(&cmds), cmds, ctx.id());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn accept_pre_prepare(
        &mut self,
        ctx: &mut Context<PbftMsg>,
        view: u64,
        n: u64,
        digest: Digest,
        cmds: Vec<Command<KvCommand>>,
        from: NodeId,
    ) {
        if view != self.view || n <= self.low_water {
            return;
        }
        let me = ctx.id();
        let inst = self.instance(n);
        if inst.pre_prepared && inst.view == view && inst.digest != digest {
            // Equivocation within a view: refuse the second assignment.
            return;
        }
        if inst.view < view {
            // New view re-proposal supersedes the old instance state.
            inst.prepares.clear();
            inst.commits.clear();
            inst.prepared = false;
            inst.committed = inst.committed && inst.digest == digest;
        }
        let newly_seen = !inst.pre_prepared;
        inst.cmds = Some(cmds);
        inst.digest = digest;
        inst.view = view;
        inst.pre_prepared = true;
        inst.prepares.insert(from); // primary's implicit prepare
        inst.prepares.insert(me);
        if newly_seen {
            ctx.span_open(SPAN, n, view);
            ctx.phase(SPAN, n, view, CncPhase::ValueDiscovery);
        }
        ctx.send_many(self.peer_replicas(me), PbftMsg::Prepare { view, n, digest });
        self.arm_view_timer(ctx);
        self.maybe_prepared(ctx, n);
    }

    fn maybe_prepared(&mut self, ctx: &mut Context<PbftMsg>, n: u64) {
        let quorum = self.quorum();
        let ready = {
            let inst = self.instance(n);
            inst.pre_prepared && !inst.prepared && inst.prepares.len() >= quorum
        };
        if ready {
            self.on_prepared(ctx, n);
        }
    }
}

impl Node for PbftReplica {
    type Msg = PbftMsg;

    fn on_start(&mut self, _ctx: &mut Context<PbftMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<PbftMsg>, from: NodeId, msg: PbftMsg) {
        match msg {
            PbftMsg::Request { cmd } => {
                // Dedup: answer executed requests from the client table.
                if let Some(out) = self.exec.machine().cached(cmd.client, cmd.seq) {
                    ctx.send(
                        NodeId(cmd.client),
                        PbftMsg::Reply {
                            view: self.view,
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                if self.is_primary(ctx.id()) {
                    self.enqueue(ctx, cmd);
                } else {
                    // Relay to the primary and watch it.
                    let primary = self.primary_of(self.view);
                    self.pending_requests.insert((cmd.client, cmd.seq));
                    ctx.send(primary, PbftMsg::Request { cmd });
                    self.arm_view_timer(ctx);
                }
            }

            PbftMsg::PrePrepare {
                view,
                n,
                digest,
                cmds,
            } => {
                if from != self.primary_of(view) {
                    return; // only the view's primary may pre-prepare
                }
                if digest != digest_of(&cmds) {
                    return; // corrupted assignment
                }
                self.accept_pre_prepare(ctx, view, n, digest, cmds, from);
            }

            PbftMsg::Prepare { view, n, digest } => {
                if view != self.view || n <= self.low_water {
                    return;
                }
                let inst = self.instance(n);
                if inst.pre_prepared && inst.digest != digest {
                    return; // mismatched prepare
                }
                inst.prepares.insert(from);
                self.maybe_prepared(ctx, n);
            }

            PbftMsg::Commit { view, n, digest } => {
                if view != self.view || n <= self.low_water {
                    return;
                }
                let inst = self.instance(n);
                if inst.pre_prepared && inst.digest != digest {
                    return;
                }
                inst.commits.insert(from);
                self.maybe_committed(ctx, n);
            }

            PbftMsg::Checkpoint { n, state } => {
                self.checkpoint_votes
                    .entry((n, state))
                    .or_default()
                    .insert(from);
                self.maybe_stable_checkpoint(n, state);
            }

            PbftMsg::ViewChange {
                new_view,
                stable_n,
                prepared,
            } => {
                if new_view <= self.view {
                    return;
                }
                self.view_change_votes
                    .entry(new_view)
                    .or_default()
                    .insert(from, (stable_n, prepared));
                // Join the view change once f+1 replicas demand it (they
                // can't all be faulty).
                let votes = self.view_change_votes[&new_view].len();
                if votes > self.f && self.max_vc_sent < new_view {
                    self.view = new_view - 1; // ensure start_view_change targets new_view
                    self.in_new_view = false;
                    self.start_view_change(ctx);
                }
                self.maybe_install_view(ctx, new_view);
            }

            PbftMsg::NewView { view, pre_prepares } => {
                if view < self.view || from != self.primary_of(view) {
                    return;
                }
                self.view = view;
                self.in_new_view = true;
                self.view_changes_completed += 1;
                self.reset_batching();
                self.instances.retain(|_, i| i.committed);
                self.disarm_view_timer(ctx);
                for (n, cmds) in pre_prepares {
                    let digest = digest_of(&cmds);
                    self.accept_pre_prepare(ctx, view, n, digest, cmds, from);
                }
            }

            PbftMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PbftMsg>, timer: Timer) {
        match timer.kind {
            VIEW_TIMER => {
                self.view_timer = None;
                if self.has_pending_work() {
                    // The primary failed us: demand a view change. Escalate
                    // past views whose primaries never answered.
                    self.view = self.view.max(self.max_vc_sent);
                    self.in_new_view = false;
                    self.start_view_change(ctx);
                    self.arm_view_timer(ctx);
                }
            }
            BATCH_FLUSH => {
                self.flush_armed = false;
                if self.is_primary(ctx.id()) && !self.queue.is_empty() {
                    self.overdue = true;
                    self.try_flush(ctx);
                }
            }
            _ => {}
        }
    }
}

/// A PBFT client: waits for `f+1` matching replies per request.
/// Closed-loop by default (one outstanding request), optionally open-loop
/// with a fixed issue interval so batching experiments can saturate the
/// primary.
pub struct PbftClient {
    /// Client id == node id.
    pub client_id: u32,
    n_replicas: usize,
    f: usize,
    workload: KvWorkload,
    total: usize,
    mode: WorkloadMode,
    /// Completed requests.
    pub completed: usize,
    /// Issued-but-unaccepted requests, by client sequence number.
    outstanding: BTreeMap<u64, (Command<KvCommand>, Time)>,
    /// Reply votes: seq → output digest → replicas.
    votes: BTreeMap<u64, BTreeMap<u64, BTreeSet<NodeId>>>,
    /// Latencies.
    pub latencies: LatencyRecorder,
    /// Invoke/response history for safety checking.
    pub history: HistorySink,
}

const CLIENT_RETRY: u64 = 9;
const CLIENT_ISSUE: u64 = 10;

impl PbftClient {
    /// Creates a closed-loop client issuing `total` commands.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, mix: KvMix, seed: u64) -> Self {
        Self::new_with(client_id, n_replicas, total, mix, seed, WorkloadMode::Closed)
    }

    /// Creates a client with an explicit pacing mode.
    pub fn new_with(
        client_id: u32,
        n_replicas: usize,
        total: usize,
        mix: KvMix,
        seed: u64,
        mode: WorkloadMode,
    ) -> Self {
        PbftClient {
            client_id,
            n_replicas,
            f: (n_replicas - 1) / 3,
            workload: KvWorkload::new(client_id, mix, seed),
            total,
            mode,
            completed: 0,
            outstanding: BTreeMap::new(),
            votes: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
            history: HistorySink::new(),
        }
    }

    /// Whether the workload finished.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn issue_next(&mut self, ctx: &mut Context<PbftMsg>) {
        if self.workload.issued() as usize >= self.total {
            return;
        }
        let cmd = self.workload.next_command();
        self.history
            .invoke(cmd.client, cmd.seq, cmd.op.clone(), ctx.now().0);
        self.outstanding.insert(cmd.seq, (cmd.clone(), ctx.now()));
        // Optimistically to the (assumed) primary only.
        ctx.send(NodeId(0), PbftMsg::Request { cmd });
        ctx.set_timer(150_000, CLIENT_RETRY);
    }
}

impl Node for PbftClient {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Context<PbftMsg>) {
        self.issue_next(ctx);
        if let WorkloadMode::Open { interval_us } = self.mode {
            ctx.set_timer(interval_us.max(1), CLIENT_ISSUE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<PbftMsg>, from: NodeId, msg: PbftMsg) {
        if let PbftMsg::Reply { seq, output, .. } = msg {
            if !self.outstanding.contains_key(&seq) {
                return;
            }
            let key = digest_of(&output).0;
            let votes = self.votes.entry(seq).or_default().entry(key).or_default();
            votes.insert(from);
            if votes.len() >= self.f + 1 {
                let (cmd, sent_at) = self.outstanding.remove(&seq).expect("checked above");
                self.votes.remove(&seq);
                self.history
                    .complete(cmd.client, cmd.seq, ctx.now().0, output);
                self.latencies.record(sent_at, ctx.now());
                self.completed += 1;
                if self.mode == WorkloadMode::Closed {
                    self.issue_next(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PbftMsg>, timer: Timer) {
        match timer.kind {
            CLIENT_RETRY if !self.outstanding.is_empty() => {
                // Escalate: broadcast every pending request to all replicas
                // (this is what ultimately triggers a view change when the
                // primary is faulty).
                for (cmd, _) in self.outstanding.values() {
                    for r in 0..self.n_replicas {
                        ctx.send(NodeId::from(r), PbftMsg::Request { cmd: cmd.clone() });
                    }
                }
                ctx.set_timer(150_000, CLIENT_RETRY);
            }
            CLIENT_ISSUE => {
                self.issue_next(ctx);
                if let WorkloadMode::Open { interval_us } = self.mode {
                    if (self.workload.issued() as usize) < self.total {
                        ctx.set_timer(interval_us.max(1), CLIENT_ISSUE);
                    }
                }
            }
            _ => {}
        }
    }
}

simnet::node_enum! {
    /// A PBFT process.
    pub enum PbftProc: PbftMsg {
        /// Replica.
        Replica(PbftReplica),
        /// Client.
        Client(PbftClient),
    }
}

/// A ready-to-run PBFT cluster.
pub struct PbftCluster {
    /// The simulation.
    pub sim: Sim<PbftProc>,
    /// Replica count (`3f+1`).
    pub n_replicas: usize,
    /// Client count.
    pub n_clients: usize,
}

impl PbftCluster {
    /// Builds `n_replicas` replicas and `n_clients` clients issuing
    /// `cmds_per_client` commands each.
    pub fn new(
        n_replicas: usize,
        n_clients: usize,
        cmds_per_client: usize,
        config: NetConfig,
        seed: u64,
    ) -> Self {
        Self::new_with(
            n_replicas,
            n_clients,
            cmds_per_client,
            config,
            seed,
            BatchConfig::unbatched(),
            WorkloadMode::Closed,
        )
    }

    /// Builds a cluster with explicit batching and client-pacing configs.
    pub fn new_with(
        n_replicas: usize,
        n_clients: usize,
        cmds_per_client: usize,
        config: NetConfig,
        seed: u64,
        batch: BatchConfig,
        mode: WorkloadMode,
    ) -> Self {
        assert!(n_replicas >= 4, "PBFT needs at least 3f+1 = 4 replicas");
        let mut sim = Sim::new(config, seed);
        for _ in 0..n_replicas {
            sim.add_node(PbftReplica::new_with(n_replicas, batch));
        }
        for c in 0..n_clients {
            let id = (n_replicas + c) as u32;
            sim.add_node(PbftClient::new_with(
                id,
                n_replicas,
                cmds_per_client,
                KvMix::default(),
                seed,
                mode,
            ));
        }
        PbftCluster {
            sim,
            n_replicas,
            n_clients,
        }
    }

    /// Replaces every client's workload mix. A builder — call before the
    /// first step; with the default mix it is a no-op, so existing runs are
    /// untouched.
    #[must_use]
    pub fn with_mix(mut self, mix: KvMix) -> Self {
        for c in 0..self.n_clients {
            let id = NodeId::from(self.n_replicas + c);
            if let PbftProc::Client(cl) = self.sim.node_mut(id) {
                cl.workload.set_mix(mix);
            }
        }
        self
    }

    /// Runs until clients finish or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.all_done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.all_done();
            }
        }
    }

    /// Whether every client finished.
    pub fn all_done(&self) -> bool {
        self.clients().all(|c| c.done())
    }

    /// Iterates over clients.
    pub fn clients(&self) -> impl Iterator<Item = &PbftClient> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            PbftProc::Client(c) => Some(c),
            _ => None,
        })
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &PbftReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            PbftProc::Replica(r) => Some(r),
            _ => None,
        })
    }

    /// Total completed commands.
    pub fn total_completed(&self) -> usize {
        self.clients().map(|c| c.completed).sum()
    }

    /// Aggregated latencies.
    pub fn latencies(&self) -> LatencyRecorder {
        let mut agg = LatencyRecorder::new();
        for c in self.clients() {
            for &s in c.latencies.samples() {
                agg.record_micros(s);
            }
        }
        agg
    }

    /// Checks that all replicas that executed a common prefix agree on the
    /// state digest at the shortest prefix. Returns that prefix length.
    pub fn check_state_agreement(&self) -> u64 {
        let live: Vec<&PbftReplica> = self
            .sim
            .nodes()
            .filter(|(id, _)| self.sim.is_alive(*id))
            .filter_map(|(_, p)| match p {
                PbftProc::Replica(r) => Some(r),
                _ => None,
            })
            .collect();
        let min_exec = live.iter().map(|r| r.executed_upto).max().unwrap_or(0);
        // Digest comparison is only meaningful at equal prefixes; compare
        // replicas that executed exactly the same amount.
        let mut by_prefix: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for r in &live {
            by_prefix
                .entry(r.executed_upto)
                .or_default()
                .insert(r.machine().digest());
        }
        for (prefix, digests) in &by_prefix {
            assert!(
                digests.len() <= 1,
                "replicas diverged at prefix {prefix}: {digests:?}"
            );
        }
        min_exec
    }
}

/// An outbound filter that makes a replica equivocate: every `PrePrepare`
/// it sends to an odd-numbered destination is replaced by a forged batch
/// (with a matching forged digest, so only quorum intersection — not digest
/// checking — protects the cluster). Used by the nemesis Byzantine windows
/// and the in-crate tests.
pub fn equivocation_filter() -> impl simnet::Filter<PbftMsg> {
    FnFilter(
        |_from, to: NodeId, msg: &PbftMsg, _rng: &mut ChaCha20Rng| match msg {
            PbftMsg::PrePrepare { view, n, .. } if to.0 % 2 == 1 => {
                let forged = Command {
                    client: 0,
                    seq: 9_999,
                    op: KvCommand::Put {
                        key: "evil".to_string(),
                        value: format!("forged-{n}-for-{to}"),
                    },
                };
                let cmds = vec![forged];
                FilterAction::Replace(PbftMsg::PrePrepare {
                    view: *view,
                    n: *n,
                    digest: digest_of(&cmds),
                    cmds,
                })
            }
            _ => FilterAction::Deliver,
        },
    )
}

/// Sub-index stride for flattening batched sequence numbers into
/// per-command [`DecidedEntry`] indices: command `j` of sequence `n`
/// (log slot `n − 1`) gets `(n − 1)·2²⁰ + j`.
const SUB_INDEX: u64 = 1 << 20;

impl ClusterDriver for PbftCluster {
    fn from_config(cfg: &DriverConfig) -> Self {
        PbftCluster::new_with(
            cfg.n_replicas,
            cfg.n_clients,
            cfg.cmds_per_client,
            cfg.net.clone(),
            cfg.seed,
            cfg.batch,
            cfg.mode,
        )
        .with_mix(cfg.mix)
    }

    fn protocol(&self) -> &'static str {
        "pbft"
    }

    fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    fn now(&self) -> Time {
        self.sim.now()
    }

    fn run_until(&mut self, at: Time) -> RunOutcome {
        let mut guard = 0;
        loop {
            let outcome = self.sim.run_until(at);
            if outcome != RunOutcome::Stopped || guard > 10_000 {
                return outcome;
            }
            guard += 1;
        }
    }

    fn run(&mut self, horizon: Time) -> bool {
        PbftCluster::run(self, horizon)
    }

    fn all_done(&self) -> bool {
        PbftCluster::all_done(self)
    }

    fn completed_ops(&self) -> usize {
        self.total_completed()
    }

    fn decided_log(&self) -> Vec<DecidedEntry> {
        let mut entries = Vec::new();
        for (id, proc_) in self.sim.nodes() {
            let PbftProc::Replica(r) = proc_ else { continue };
            let log = r.exec_log();
            for i in 0..log.len() {
                let cmds = match log.slot(i) {
                    Slot::Decided(cmds) | Slot::Applied(cmds) => cmds,
                    Slot::Empty => continue,
                };
                let base = i as u64 * SUB_INDEX;
                for (j, cmd) in cmds.iter().enumerate() {
                    entries.push(DecidedEntry {
                        node: id.0,
                        index: base + j as u64,
                        op: format!("{cmd:?}"),
                        origin: Some((cmd.client, cmd.seq)),
                    });
                }
            }
        }
        entries
    }

    fn state_digests(&self) -> Vec<(u32, u64, u64)> {
        self.sim
            .nodes()
            .filter_map(|(id, p)| match p {
                PbftProc::Replica(r) => Some((id.0, r.executed_upto, r.machine().digest())),
                _ => None,
            })
            .collect()
    }

    fn history(&self) -> Vec<ClientRecord> {
        HistorySink::merge(self.clients().map(|c| &c.history))
    }

    fn latencies(&self) -> LatencyRecorder {
        PbftCluster::latencies(self)
    }

    fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    fn enable_tracing(&mut self, site: u32) {
        self.sim.enable_tracing(site);
    }

    fn causal_spans(&self) -> Vec<CausalSpan> {
        self.sim.causal_spans().to_vec()
    }

    fn open_span_instances(&self) -> usize {
        self.sim.open_instance_count()
    }

    fn crash_at(&mut self, node: NodeId, at: Time) {
        self.sim.crash_at(node, at);
    }

    fn restart_at(&mut self, node: NodeId, at: Time) {
        self.sim.restart_at(node, at);
    }

    fn partition_at(&mut self, at: Time, groups: Vec<Vec<NodeId>>) {
        self.sim.partition_at(at, groups);
    }

    fn heal_at(&mut self, at: Time) {
        self.sim.heal_at(at);
    }

    fn set_drop_prob(&mut self, p: f64) {
        self.sim.set_drop_prob(p);
    }

    fn open_byzantine_window(&mut self, kind: ByzantineWindow, node: NodeId) -> bool {
        match kind {
            ByzantineWindow::Mute => {
                self.sim.set_filter(
                    node,
                    Box::new(FnFilter(
                        |_f, _t: NodeId, _m: &PbftMsg, _r: &mut ChaCha20Rng| FilterAction::Drop,
                    )),
                );
            }
            ByzantineWindow::Equivocate => {
                self.sim.set_filter(node, Box::new(equivocation_filter()));
            }
        }
        true
    }

    fn close_byzantine_window(&mut self, node: NodeId) {
        self.sim.clear_filter(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{FilterAction, FnFilter};

    #[test]
    fn commits_requests_fault_free() {
        let mut cluster = PbftCluster::new(4, 1, 10, NetConfig::lan(), 1);
        assert!(cluster.run(Time::from_secs(10)), "{}", cluster.total_completed());
        assert_eq!(cluster.total_completed(), 10);
        assert!(cluster.check_state_agreement() >= 10);
    }

    #[test]
    fn three_phases_on_the_wire() {
        let mut cluster = PbftCluster::new(4, 1, 5, NetConfig::lan(), 2);
        assert!(cluster.run(Time::from_secs(10)));
        let m = cluster.sim.metrics();
        assert!(m.kind("pre-prepare") >= 5 * 3);
        assert!(m.kind("prepare") > 0);
        assert!(m.kind("commit") > 0);
        // Prepare and commit are all-to-all: each ≈ n(n−1) per request vs
        // pre-prepare's (n−1).
        assert!(m.kind("prepare") > 2 * m.kind("pre-prepare"));
    }

    #[test]
    fn quadratic_message_growth() {
        let mut per_request = Vec::new();
        for n in [4usize, 7, 10] {
            let mut cluster = PbftCluster::new(n, 1, 10, NetConfig::lan(), 3);
            assert!(cluster.run(Time::from_secs(30)));
            per_request.push(cluster.sim.metrics().sent as f64 / 10.0);
        }
        // Quadratic: going 4 → 10 replicas should grow messages by more
        // than the linear ratio 10/4 = 2.5.
        let growth = per_request[2] / per_request[0];
        assert!(
            growth > 4.0,
            "expected ≫ linear growth, got {growth:.1} ({per_request:?})"
        );
    }

    #[test]
    fn tolerates_f_crashed_backups() {
        let mut cluster = PbftCluster::new(4, 1, 10, NetConfig::lan(), 4);
        cluster.sim.crash_at(NodeId(3), Time::ZERO);
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.total_completed(), 10);
        cluster.check_state_agreement();
    }

    #[test]
    fn primary_crash_triggers_view_change() {
        let mut cluster = PbftCluster::new(4, 1, 10, NetConfig::lan(), 5);
        cluster.sim.run_until(Time::from_millis(10));
        cluster.sim.crash_at(NodeId(0), Time::from_millis(11));
        assert!(
            cluster.run(Time::from_secs(30)),
            "only {} completed",
            cluster.total_completed()
        );
        assert_eq!(cluster.total_completed(), 10);
        cluster.check_state_agreement();
        let vc = cluster
            .replicas()
            .map(|r| r.view_changes_completed)
            .max()
            .unwrap();
        assert!(vc >= 1, "view change must have happened");
        let view = cluster.replicas().map(|r| r.view).max().unwrap();
        assert!(view >= 1);
    }

    #[test]
    fn equivocating_primary_cannot_split_the_cluster() {
        // The primary sends different commands (hence digests) to different
        // backups for the same sequence number. Prepares won't match, the
        // request stalls, a view change fires, and an honest primary takes
        // over. Safety is never violated.
        let mut cluster = PbftCluster::new(4, 1, 8, NetConfig::lan(), 6);
        cluster
            .sim
            .set_filter(NodeId(0), Box::new(equivocation_filter()));
        assert!(
            cluster.run(Time::from_secs(60)),
            "honest primary must eventually serve: {}",
            cluster.total_completed()
        );
        cluster.check_state_agreement();
        // A view change happened to escape the malicious primary.
        let view = cluster.replicas().map(|r| r.view).max().unwrap();
        assert!(view >= 1, "should have left view 0");
    }

    #[test]
    fn checkpoints_garbage_collect_the_log() {
        let mut cluster = PbftCluster::new(4, 1, 40, NetConfig::lan(), 7);
        assert!(cluster.run(Time::from_secs(30)));
        // Let checkpoint traffic settle.
        cluster.sim.run_for(200_000);
        for r in cluster.replicas() {
            assert!(
                r.low_water >= CHECKPOINT_INTERVAL,
                "stable checkpoint expected, low_water={}",
                r.low_water
            );
            assert!(
                (r.log_len() as u64) < 40,
                "log should have been GC'd: {} entries",
                r.log_len()
            );
        }
    }

    #[test]
    fn byzantine_backup_noise_is_harmless() {
        // A backup spams wrong prepares/commits; quorums of 2f+1 honest
        // replicas are unaffected.
        let mut cluster = PbftCluster::new(4, 1, 10, NetConfig::lan(), 8);
        cluster.sim.set_filter(
            NodeId(3),
            Box::new(FnFilter(
                |_f, _t: NodeId, msg: &PbftMsg, _r: &mut rand_chacha::ChaCha20Rng| match msg {
                    PbftMsg::Prepare { view, n, .. } => FilterAction::Replace(PbftMsg::Prepare {
                        view: *view,
                        n: *n,
                        digest: Digest(0xBAD),
                    }),
                    PbftMsg::Commit { view, n, .. } => FilterAction::Replace(PbftMsg::Commit {
                        view: *view,
                        n: *n,
                        digest: Digest(0xBAD),
                    }),
                    _ => FilterAction::Deliver,
                },
            )),
        );
        assert!(cluster.run(Time::from_secs(20)));
        assert_eq!(cluster.total_completed(), 10);
        cluster.check_state_agreement();
    }

    #[test]
    fn checkpoint_interval_ablation() {
        // Smaller checkpoint intervals keep the retained log smaller (at
        // the cost of more checkpoint traffic) — the F12 ablation.
        let run = |interval: u64| {
            let mut cluster = PbftCluster::new(4, 1, 40, NetConfig::lan(), 12);
            for i in 0..4 {
                if let PbftProc::Replica(r) = cluster.sim.node_mut(NodeId(i)) {
                    *r = PbftReplica::new(4).with_checkpoint_interval(interval);
                }
            }
            assert!(cluster.run(Time::from_secs(30)));
            cluster.sim.run_for(300_000);
            let max_log = cluster.replicas().map(|r| r.log_len()).max().unwrap();
            let ckpt_msgs = cluster.sim.metrics().kind("checkpoint");
            (max_log, ckpt_msgs)
        };
        let (log_small, msgs_small) = run(4);
        let (log_large, msgs_large) = run(32);
        assert!(
            log_small <= log_large,
            "tighter checkpoints should retain less: {log_small} vs {log_large}"
        );
        assert!(
            msgs_small > msgs_large,
            "tighter checkpoints cost more traffic: {msgs_small} vs {msgs_large}"
        );
    }

    #[test]
    fn multiple_clients() {
        let mut cluster = PbftCluster::new(4, 3, 10, NetConfig::lan(), 9);
        assert!(cluster.run(Time::from_secs(30)));
        assert_eq!(cluster.total_completed(), 30);
        cluster.check_state_agreement();
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster = PbftCluster::new(4, 1, 10, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(10));
            (cluster.total_completed(), cluster.sim.metrics().sent)
        };
        assert_eq!(run(11), run(11));
    }

    /// Per-command `(client, seq)` sequence of the most-executed replica,
    /// flattened across batches in execution order.
    fn flattened_origins(cluster: &PbftCluster) -> Vec<(u32, u64)> {
        let log = cluster.decided_log();
        let best = log.iter().map(|e| e.node).fold(
            (0u32, 0usize),
            |(best, best_len), node| {
                let len = log.iter().filter(|e| e.node == node).count();
                if len > best_len {
                    (node, len)
                } else {
                    (best, best_len)
                }
            },
        );
        let mut mine: Vec<&DecidedEntry> = log.iter().filter(|e| e.node == best.0).collect();
        mine.sort_by_key(|e| e.index);
        mine.iter().filter_map(|e| e.origin).collect()
    }

    #[test]
    fn batched_runs_execute_the_same_command_sequence() {
        // Same seed + workload ⇒ the flattened executed command sequence is
        // identical whatever the batch shape. Synchronous delays keep the
        // arrival order independent of per-message RNG draws.
        let run = |batch: BatchConfig| {
            let mut cluster = PbftCluster::new_with(
                4,
                2,
                20,
                NetConfig::synchronous(),
                42,
                batch,
                WorkloadMode::Closed,
            );
            // Keep every executed slot: checkpoint GC would otherwise free
            // the prefix we want to compare.
            for i in 0..4 {
                if let PbftProc::Replica(r) = cluster.sim.node_mut(NodeId(i)) {
                    *r = PbftReplica::new_with(4, batch).with_checkpoint_interval(1_000);
                }
            }
            assert!(cluster.run(Time::from_secs(60)), "batch {batch:?} stalled");
            flattened_origins(&cluster)
        };
        let baseline = run(BatchConfig::unbatched());
        assert_eq!(baseline.len(), 40);
        for batch in [
            BatchConfig::new(4, 200, 2),
            BatchConfig::new(8, 500, 4),
            BatchConfig::new(2, 0, 1),
        ] {
            assert_eq!(run(batch), baseline, "batch {batch:?} diverged");
        }
    }

    #[test]
    fn primary_crash_under_batched_config_recovers() {
        // A primary dies with batches in flight; the view change re-proposes
        // prepared batches and client retries re-inject the rest.
        let mut cluster = PbftCluster::new_with(
            4,
            1,
            10,
            NetConfig::lan(),
            5,
            BatchConfig::new(4, 300, 2),
            WorkloadMode::Closed,
        );
        cluster.sim.run_until(Time::from_millis(10));
        cluster.sim.crash_at(NodeId(0), Time::from_millis(11));
        assert!(
            cluster.run(Time::from_secs(60)),
            "only {} completed",
            cluster.total_completed()
        );
        assert_eq!(cluster.total_completed(), 10);
        cluster.check_state_agreement();
    }

    #[test]
    fn open_loop_clients_build_real_batches() {
        // Open-loop arrivals outpace the pipeline window, so the primary's
        // queue fills and multi-command batches actually form.
        let mut cluster = PbftCluster::new_with(
            4,
            2,
            30,
            NetConfig::lan(),
            9,
            BatchConfig::new(8, 400, 2),
            WorkloadMode::Open { interval_us: 200 },
        );
        assert!(cluster.run(Time::from_secs(30)));
        assert_eq!(cluster.total_completed(), 60);
        cluster.check_state_agreement();
        let h = &cluster.sim.metrics().batch_size;
        assert!(
            h.max().unwrap_or(0) > 1,
            "batches never formed: max {:?}",
            h.max()
        );
    }

    #[test]
    fn cluster_driver_trait_drives_and_harvests() {
        let mut cluster = PbftCluster::from_config(&DriverConfig::new(4, 2, 5, 7));
        let drv: &mut dyn ClusterDriver = &mut cluster;
        assert_eq!(drv.protocol(), "pbft");
        assert_eq!(drv.n_replicas(), 4);
        assert!(drv.run(Time::from_secs(10)));
        assert!(drv.all_done());
        assert_eq!(drv.completed_ops(), 10);
        assert_eq!(drv.state_digests().len(), 4);
        assert_eq!(drv.history().len(), 10);
        assert_eq!(drv.issued().len(), 10);
        assert_eq!(drv.latencies().count(), 10);
        let log = drv.decided_log();
        assert!(log.iter().filter(|e| e.node == 0 && e.origin.is_some()).count() >= 10);
        assert!(drv.metrics().sent > 0);
    }

    #[test]
    fn byzantine_window_hooks_install_and_clear() {
        // Equivocation through the driver hook stalls view 0; after the
        // window closes and a view change lands, the workload completes.
        let mut cluster = PbftCluster::from_config(&DriverConfig::new(4, 1, 8, 6));
        let drv: &mut dyn ClusterDriver = &mut cluster;
        assert!(drv.open_byzantine_window(ByzantineWindow::Equivocate, NodeId(0)));
        drv.run_until(Time::from_millis(300));
        drv.close_byzantine_window(NodeId(0));
        assert!(drv.run(Time::from_secs(60)), "never recovered");
        cluster.check_state_agreement();
    }
}
