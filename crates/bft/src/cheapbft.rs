//! CheapBFT (Kapitza et al., EuroSys '12): resource-efficient BFT with
//! trusted hardware and active/passive replication.
//!
//! The trusted **CASH** subsystem (modelled by [`crate::sim_crypto::Usig`])
//! assigns unique counter values and creates/validates message
//! certificates; it can fail only by crashing. That lets the normal-case
//! protocol run with just **`f+1` active replicas**:
//!
//! 1. **CheapTiny** — the default protocol: only the `f+1` active replicas
//!    agree (prepare/commit with CASH certificates); the `f` passive
//!    replicas merely receive state *updates*.
//! 2. **CheapSwitch** — on any suspected fault a replica (or client)
//!    broadcasts **PANIC**; replicas exchange the abort history and switch.
//! 3. **MinBFT** — the fallback involving all `2f+1` replicas; eventually
//!    the system may switch back to CheapTiny (not modelled — the
//!    experiment measures the cost of the switch itself).

use std::collections::{BTreeMap, BTreeSet};

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, StateMachine};
use simnet::{CncPhase, Context, NetConfig, Node, NodeId, RunOutcome, Sim, Time, Timer};

/// Span protocol label; instances are sequence numbers.
const SPAN: &str = "cheapbft";

use crate::sim_crypto::{digest_of, Usig, UsigCert, UsigVerifier};

/// Which protocol the cluster is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// CheapTiny: `f+1` active replicas.
    CheapTiny,
    /// Fallback: all `2f+1` replicas, MinBFT-style.
    MinBft,
}

/// CheapBFT wire messages.
#[derive(Clone, Debug)]
pub enum CheapMsg {
    /// Client request.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Reply (`f+1` matching required).
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence.
        seq: u64,
        /// Output.
        output: KvResponse,
    },
    /// Primary's CASH-certified ordering. The sequence number restarts at
    /// 1 in each protocol epoch; the CASH certificate attests the
    /// `(protocol, seq, command)` binding. (MinBFT's stricter counter≡seq
    /// binding lives in `crate::minbft`; CheapBFT's threat experiments here
    /// cover crash and silent faults.)
    Prepare {
        /// Protocol under which this was sent.
        proto: Protocol,
        /// Epoch-local sequence number.
        seq: u64,
        /// CASH certificate over `(proto, seq, cmd)`.
        ui: UsigCert,
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Active replica's CASH-certified endorsement (to the primary).
    Commit {
        /// Protocol.
        proto: Protocol,
        /// Sequence being endorsed.
        n: u64,
        /// Endorser's certificate.
        ui: UsigCert,
    },
    /// Decision notification (also the state *update* for passive
    /// replicas, who apply it without having participated in agreement).
    Update {
        /// Protocol.
        proto: Protocol,
        /// Sequence.
        n: u64,
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Fault suspicion: triggers CheapSwitch.
    Panic,
    /// Abort-history broadcast during CheapSwitch: the sender's executed
    /// history, so everyone resumes MinBFT from a common state.
    SwitchHistory {
        /// Executed commands, in order.
        history: Vec<Command<KvCommand>>,
    },
}

impl simnet::Payload for CheapMsg {
    fn kind(&self) -> &'static str {
        match self {
            CheapMsg::Request { .. } => "request",
            CheapMsg::Reply { .. } => "reply",
            CheapMsg::Prepare { .. } => "prepare",
            CheapMsg::Commit { .. } => "commit",
            CheapMsg::Update { .. } => "update",
            CheapMsg::Panic => "panic",
            CheapMsg::SwitchHistory { .. } => "switch",
        }
    }
}

#[derive(Debug, Default)]
struct CheapInstance {
    cmd: Option<Command<KvCommand>>,
    commits: BTreeSet<NodeId>,
    decided: bool,
    executed: bool,
}

const PROGRESS_TIMER: u64 = 1;

/// A CheapBFT replica. Nodes `0..=f` are initially active; the rest are
/// passive.
pub struct CheapReplica {
    n_replicas: usize,
    /// Primary's epoch-local sequence counter.
    next_seq: u64,
    /// Fault bound `f = ⌊(n−1)/2⌋`.
    pub f: usize,
    /// Current protocol.
    pub proto: Protocol,
    usig: Usig,
    verifier: UsigVerifier,
    instances: BTreeMap<u64, CheapInstance>,
    /// Executed history.
    history: Vec<Command<KvCommand>>,
    executed_counter: u64,
    machine: DedupKvMachine,
    pending_requests: BTreeSet<(u32, u64)>,
    progress_timer_armed: bool,
    /// Whether this replica already panicked.
    panicked: bool,
    switch_votes: BTreeSet<NodeId>,
    /// Counter base after the protocol switch.
    switch_base: u64,
}

impl CheapReplica {
    /// Creates a replica for a `2f+1` cluster.
    pub fn new(n_replicas: usize, id_hint: u32) -> Self {
        CheapReplica {
            n_replicas,
            next_seq: 0,
            f: (n_replicas - 1) / 2,
            proto: Protocol::CheapTiny,
            usig: Usig::new(NodeId(id_hint)),
            verifier: UsigVerifier::new(),
            instances: BTreeMap::new(),
            history: Vec::new(),
            executed_counter: 0,
            machine: DedupKvMachine::default(),
            pending_requests: BTreeSet::new(),
            progress_timer_armed: false,
            panicked: false,
            switch_votes: BTreeSet::new(),
            switch_base: 0,
        }
    }

    /// The machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    /// Executed command count.
    pub fn executed(&self) -> usize {
        self.history.len()
    }

    /// The active replica set under the current protocol.
    pub fn active_set(&self) -> Vec<NodeId> {
        match self.proto {
            Protocol::CheapTiny => (0..=self.f).map(NodeId::from).collect(),
            Protocol::MinBft => (0..self.n_replicas).map(NodeId::from).collect(),
        }
    }

    /// Is `id` active right now?
    pub fn is_active(&self, id: NodeId) -> bool {
        self.active_set().contains(&id)
    }

    /// Commit quorum: in CheapTiny **all** `f+1` active replicas must
    /// endorse (no spare redundancy — that is the point); in MinBFT mode,
    /// `f+1` of `2f+1`.
    fn quorum(&self) -> usize {
        self.f + 1
    }

    fn primary(&self) -> NodeId {
        NodeId(0)
    }

    fn peer_replicas(&self, me: NodeId) -> Vec<NodeId> {
        (0..self.n_replicas)
            .map(NodeId::from)
            .filter(|id| *id != me)
            .collect()
    }

    fn try_execute(&mut self, ctx: &mut Context<CheapMsg>) {
        loop {
            let next = self.executed_counter + 1;
            let ready = self
                .instances
                .get(&next)
                .is_some_and(|i| i.decided && !i.executed && i.cmd.is_some());
            if !ready {
                return;
            }
            let cmd = {
                let inst = self.instances.get_mut(&next).expect("ready");
                inst.executed = true;
                inst.cmd.clone().expect("ready")
            };
            self.apply(ctx, cmd);
            self.executed_counter = next;
        }
    }

    fn apply(&mut self, ctx: &mut Context<CheapMsg>, cmd: Command<KvCommand>) {
        let output = self
            .machine
            .apply(&consensus_core::SmrOp::Cmd(cmd.clone()))
            .expect("output");
        self.pending_requests.remove(&(cmd.client, cmd.seq));
        self.history.push(cmd.clone());
        ctx.send(
            NodeId(cmd.client),
            CheapMsg::Reply {
                client: cmd.client,
                seq: cmd.seq,
                output,
            },
        );
    }

    fn panic(&mut self, ctx: &mut Context<CheapMsg>) {
        if self.panicked {
            return;
        }
        self.panicked = true;
        let me = ctx.id();
        ctx.send_many(self.peer_replicas(me), CheapMsg::Panic);
        // Broadcast our abort history so everyone converges.
        let history = self.history.clone();
        ctx.send_many(self.peer_replicas(me), CheapMsg::SwitchHistory { history });
    }

    fn enter_minbft(&mut self, ctx: &mut Context<CheapMsg>) {
        if self.proto == Protocol::MinBft {
            return;
        }
        self.proto = Protocol::MinBft;
        self.instances.clear();
        self.switch_base = self.usig.counter();
        // Sequence numbering restarts in the new protocol epoch.
        self.next_seq = 0;
        self.executed_counter = 0;
        let _ = ctx;
    }
}

impl Node for CheapReplica {
    type Msg = CheapMsg;

    fn on_start(&mut self, _ctx: &mut Context<CheapMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<CheapMsg>, from: NodeId, msg: CheapMsg) {
        match msg {
            CheapMsg::Request { cmd } => {
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    ctx.send(
                        NodeId(cmd.client),
                        CheapMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                if self.primary() == ctx.id() {
                    let in_flight = self.instances.values().any(|i| {
                        !i.executed
                            && i.cmd
                                .as_ref()
                                .is_some_and(|c| c.client == cmd.client && c.seq == cmd.seq)
                    });
                    if in_flight {
                        return;
                    }
                    self.next_seq += 1;
                    let n = self.next_seq;
                    ctx.span_open(SPAN, n, 0);
                    ctx.phase(SPAN, n, 0, CncPhase::ValueDiscovery);
                    let proto = self.proto;
                    let ui = self
                        .usig
                        .create(digest_of(&(proto_tag(proto), n, &cmd)));
                    let me = ctx.id();
                    let inst = self.instances.entry(n).or_default();
                    inst.cmd = Some(cmd.clone());
                    inst.commits.insert(me);
                    // Prepare goes only to the *active* replicas.
                    let targets: Vec<NodeId> = self
                        .active_set()
                        .into_iter()
                        .filter(|id| *id != me)
                        .collect();
                    ctx.send_many(
                        targets,
                        CheapMsg::Prepare {
                            proto,
                            seq: n,
                            ui,
                            cmd,
                        },
                    );
                } else {
                    self.pending_requests.insert((cmd.client, cmd.seq));
                    let p = self.primary();
                    ctx.send(p, CheapMsg::Request { cmd });
                    if !self.progress_timer_armed {
                        self.progress_timer_armed = true;
                        ctx.set_timer(60_000 + 10_000 * u64::from(ctx.id().0), PROGRESS_TIMER);
                    }
                }
            }

            CheapMsg::Prepare {
                proto,
                seq,
                ui,
                cmd,
            } => {
                if proto != self.proto || from != self.primary() {
                    return;
                }
                if !self.is_active(ctx.id()) {
                    return;
                }
                if !self
                    .verifier
                    .verify_monotonic(&ui, digest_of(&(proto_tag(proto), seq, &cmd)))
                {
                    return;
                }
                let inst = self.instances.entry(seq).or_default();
                if inst.cmd.is_none() {
                    ctx.span_open(SPAN, seq, 0);
                    ctx.phase(SPAN, seq, 0, CncPhase::Agreement);
                }
                inst.cmd = Some(cmd);
                inst.commits.insert(from);
                let my_ui = self.usig.create(digest_of(&(proto_tag(proto), seq)));
                ctx.send(
                    from,
                    CheapMsg::Commit {
                        proto,
                        n: seq,
                        ui: my_ui,
                    },
                );
            }

            CheapMsg::Commit { proto, n, ui } => {
                if proto != self.proto || self.primary() != ctx.id() {
                    return;
                }
                if !self
                    .verifier
                    .verify_monotonic(&ui, digest_of(&(proto_tag(proto), n)))
                {
                    return;
                }
                let quorum = self.quorum();
                let proto = self.proto;
                let inst = self.instances.entry(n).or_default();
                inst.commits.insert(from);
                if inst.commits.len() >= quorum && !inst.decided {
                    inst.decided = true;
                    ctx.phase(SPAN, n, 0, CncPhase::Decision);
                    ctx.span_close(SPAN, n, 0);
                    let cmd = inst.cmd.clone().expect("prepared");
                    // Updates serve both as decide for actives and state
                    // transfer for passives.
                    let me = ctx.id();
                    ctx.send_many(
                        self.peer_replicas(me),
                        CheapMsg::Update { proto, n, cmd },
                    );
                    self.try_execute(ctx);
                }
            }

            CheapMsg::Update { proto, n, cmd } => {
                if proto != self.proto || from != self.primary() {
                    return;
                }
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_none() {
                    inst.cmd = Some(cmd);
                }
                if !inst.decided {
                    ctx.phase(SPAN, n, 0, CncPhase::Decision);
                    ctx.span_close(SPAN, n, 0);
                }
                inst.decided = true;
                self.try_execute(ctx);
            }

            CheapMsg::Panic => {
                // Any panic triggers the switch protocol.
                self.panic(ctx);
                self.switch_votes.insert(from);
                self.enter_minbft(ctx);
            }

            CheapMsg::SwitchHistory { history } => {
                // Adopt any commands we miss (dedup table makes this
                // idempotent), then run under MinBFT.
                for cmd in history {
                    if self.machine.cached(cmd.client, cmd.seq).is_none() {
                        self.apply(ctx, cmd);
                    }
                }
                self.enter_minbft(ctx);
            }

            CheapMsg::Reply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<CheapMsg>, timer: Timer) {
        if timer.kind == PROGRESS_TIMER {
            self.progress_timer_armed = false;
            if !self.pending_requests.is_empty() {
                // Something is stuck: PANIC.
                self.panic(ctx);
                self.enter_minbft(ctx);
            }
        }
    }
}

fn proto_tag(p: Protocol) -> u8 {
    match p {
        Protocol::CheapTiny => 0,
        Protocol::MinBft => 1,
    }
}

const CLIENT_RETRY: u64 = 5;

/// A CheapBFT client.
pub struct CheapClient {
    /// Client id == node id.
    pub client_id: u32,
    n_replicas: usize,
    f: usize,
    workload: KvWorkload,
    total: usize,
    /// Completed.
    pub completed: usize,
    current: Option<(Command<KvCommand>, Time)>,
    votes: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Latencies.
    pub latencies: LatencyRecorder,
    /// Panics this client raised.
    pub panics_sent: u64,
}

impl CheapClient {
    /// Creates a client.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, seed: u64) -> Self {
        CheapClient {
            client_id,
            n_replicas,
            f: (n_replicas - 1) / 2,
            workload: KvWorkload::new(client_id, KvMix::default(), seed),
            total,
            completed: 0,
            current: None,
            votes: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
            panics_sent: 0,
        }
    }

    /// Whether done.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn send_next(&mut self, ctx: &mut Context<CheapMsg>) {
        if self.done() {
            self.current = None;
            return;
        }
        let cmd = self.workload.next_command();
        self.current = Some((cmd.clone(), ctx.now()));
        self.votes.clear();
        ctx.send(NodeId(0), CheapMsg::Request { cmd });
        ctx.set_timer(150_000, CLIENT_RETRY);
    }
}

impl Node for CheapClient {
    type Msg = CheapMsg;

    fn on_start(&mut self, ctx: &mut Context<CheapMsg>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<CheapMsg>, from: NodeId, msg: CheapMsg) {
        if let CheapMsg::Reply { seq, output, .. } = msg {
            let Some((cmd, sent_at)) = &self.current else {
                return;
            };
            if cmd.seq != seq {
                return;
            }
            let key = digest_of(&output).0;
            let votes = self.votes.entry(key).or_default();
            votes.insert(from);
            if votes.len() >= self.f + 1 {
                let sent = *sent_at;
                self.latencies.record(sent, ctx.now());
                self.completed += 1;
                self.current = None;
                self.send_next(ctx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<CheapMsg>, timer: Timer) {
        if timer.kind == CLIENT_RETRY && self.current.is_some() {
            // The client is CheapBFT's fault detector: a missing reply
            // raises PANIC at all replicas.
            self.panics_sent += 1;
            for r in 0..self.n_replicas {
                ctx.send(NodeId::from(r), CheapMsg::Panic);
            }
            if let Some((cmd, _)) = &self.current {
                let cmd = cmd.clone();
                for r in 0..self.n_replicas {
                    ctx.send(NodeId::from(r), CheapMsg::Request { cmd: cmd.clone() });
                }
            }
            ctx.set_timer(150_000, CLIENT_RETRY);
        }
    }
}

simnet::node_enum! {
    /// A CheapBFT process.
    pub enum CheapProc: CheapMsg {
        /// Replica.
        Replica(CheapReplica),
        /// Client.
        Client(CheapClient),
    }
}

/// A ready-to-run CheapBFT cluster.
pub struct CheapCluster {
    /// The simulation.
    pub sim: Sim<CheapProc>,
    /// Replica count (`2f+1`).
    pub n_replicas: usize,
}

impl CheapCluster {
    /// Builds the cluster with one client issuing `cmds` commands.
    pub fn new(n_replicas: usize, cmds: usize, config: NetConfig, seed: u64) -> Self {
        let mut sim = Sim::new(config, seed);
        for i in 0..n_replicas {
            sim.add_node(CheapReplica::new(n_replicas, i as u32));
        }
        sim.add_node(CheapClient::new(n_replicas as u32, n_replicas, cmds, seed));
        CheapCluster { sim, n_replicas }
    }

    /// Runs to completion or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.client().done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.client().done();
            }
        }
    }

    /// The client.
    pub fn client(&self) -> &CheapClient {
        self.sim
            .nodes()
            .find_map(|(_, p)| match p {
                CheapProc::Client(c) => Some(c),
                _ => None,
            })
            .expect("client exists")
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &CheapReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            CheapProc::Replica(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheaptiny_uses_only_f_plus_one_actives() {
        // n = 3 (f = 1): actives = {0, 1}; node 2 is passive.
        let mut cluster = CheapCluster::new(3, 10, NetConfig::lan(), 1);
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.client().completed, 10);
        // No panic, still CheapTiny.
        for r in cluster.replicas() {
            assert_eq!(r.proto, Protocol::CheapTiny);
        }
        // The passive replica never sent a prepare/commit...
        let m = cluster.sim.metrics();
        // prepares: primary → 1 active backup (1 per req); commits: 1 per
        // req. Updates: to both others.
        assert_eq!(m.kind("prepare"), 10);
        assert_eq!(m.kind("commit"), 10);
        assert_eq!(m.kind("update"), 20);
        assert_eq!(m.kind("panic"), 0);
    }

    #[test]
    fn passive_replica_catches_up_via_updates() {
        let mut cluster = CheapCluster::new(3, 10, NetConfig::lan(), 2);
        assert!(cluster.run(Time::from_secs(10)));
        cluster.sim.run_for(300_000);
        let executed: Vec<usize> = cluster.replicas().map(|r| r.executed()).collect();
        assert!(
            executed.iter().all(|&e| e == 10),
            "passive replica lags: {executed:?}"
        );
        let digests: BTreeSet<u64> = cluster.replicas().map(|r| r.machine().digest()).collect();
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn active_backup_crash_triggers_switch_to_minbft() {
        // Active backup (node 1) dies: CheapTiny can't form its all-active
        // quorum; the client panics; the cluster switches to MinBFT and
        // completes with {0, 2}.
        let mut cluster = CheapCluster::new(3, 6, NetConfig::lan(), 3);
        cluster.sim.run_until(Time::from_millis(5));
        cluster.sim.crash_at(NodeId(1), Time::from_millis(6));
        assert!(
            cluster.run(Time::from_secs(60)),
            "completed {}",
            cluster.client().completed
        );
        assert_eq!(cluster.client().completed, 6);
        assert!(cluster.client().panics_sent > 0);
        for (id, r) in cluster.sim.nodes().filter_map(|(id, p)| match p {
            CheapProc::Replica(r) => Some((id, r)),
            _ => None,
        }) {
            if cluster.sim.is_alive(id) {
                assert_eq!(r.proto, Protocol::MinBft, "{id} didn't switch");
            }
        }
        assert!(cluster.sim.metrics().kind("panic") > 0);
        assert!(cluster.sim.metrics().kind("switch") > 0);
    }

    #[test]
    fn message_savings_versus_full_participation() {
        // CheapTiny's normal case touches f+1 replicas; MinBFT's touches
        // 2f+1. Compare messages per request, fault-free.
        let mut cheap = CheapCluster::new(3, 20, NetConfig::lan(), 4);
        assert!(cheap.run(Time::from_secs(10)));
        let cheap_msgs = cheap.sim.metrics().sent as f64 / 20.0;
        let mut min = crate::minbft::MinCluster::new(3, 20, NetConfig::lan(), 4);
        assert!(min.run(Time::from_secs(10)));
        let min_msgs = min.sim.metrics().sent as f64 / 20.0;
        assert!(
            cheap_msgs < min_msgs,
            "CheapTiny ({cheap_msgs}) should beat MinBFT ({min_msgs})"
        );
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster = CheapCluster::new(3, 8, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(10));
            (cluster.client().completed, cluster.sim.metrics().sent)
        };
        assert_eq!(run(5), run(5));
    }
}
