//! Structural stand-ins for cryptography.
//!
//! The surveyed protocols use digests, MACs/signatures, threshold
//! signatures, and trusted monotonic counters. Their *logic* depends only
//! on what these primitives prove, so we substitute structural equivalents
//! (see DESIGN.md): the simulator authenticates senders, and certificates
//! carry the explicit signer sets a verifier would check.

use std::collections::BTreeSet;

use simnet::NodeId;

/// A message digest (FNV-1a over the debug rendering — stable, collision
/// resistant enough for simulation, and *not* forgeable within the model
/// because Byzantine nodes can only substitute whole messages, which the
/// receivers re-digest themselves).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Digest(pub u64);

/// Digests any debug-renderable value.
pub fn digest_of<T: std::fmt::Debug>(value: &T) -> Digest {
    let s = format!("{value:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Digest(h)
}

/// A quorum certificate: proof that `signers` (distinct replicas) endorsed
/// `digest`. Stands in for a `(k,n)`-threshold signature — verification
/// checks the signer count against the threshold, exactly what threshold
/// signature verification proves.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QuorumCert {
    /// What was endorsed.
    pub digest: Digest,
    /// Who endorsed it.
    pub signers: BTreeSet<NodeId>,
}

impl QuorumCert {
    /// An empty certificate for `digest`.
    pub fn new(digest: Digest) -> Self {
        QuorumCert {
            digest,
            signers: BTreeSet::new(),
        }
    }

    /// Adds a signer's share; returns true if newly added.
    pub fn add(&mut self, signer: NodeId) -> bool {
        self.signers.insert(signer)
    }

    /// Whether the certificate carries at least `threshold` distinct shares.
    pub fn complete(&self, threshold: usize) -> bool {
        self.signers.len() >= threshold
    }
}

/// A Unique Sequential Identifier Generator — MinBFT/CheapBFT's trusted
/// component. The counter is monotonic *by construction* (the only mutating
/// method increments it), which is precisely the guarantee the trusted
/// hardware provides: a Byzantine replica may refuse to send or send
/// corrupted payloads, but it cannot produce two different messages bearing
/// the same counter value, nor skip backwards.
#[derive(Clone, Debug)]
pub struct Usig {
    owner: NodeId,
    counter: u64,
}

/// An attestation produced by a [`Usig`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UsigCert {
    /// The attesting replica.
    pub owner: NodeId,
    /// The unique, sequential counter value.
    pub counter: u64,
    /// Digest of the attested message.
    pub digest: Digest,
}

impl Usig {
    /// Creates the trusted component for `owner`.
    pub fn new(owner: NodeId) -> Self {
        Usig { owner, counter: 0 }
    }

    /// Assigns the next counter value to `digest`.
    pub fn create(&mut self, digest: Digest) -> UsigCert {
        self.counter += 1;
        UsigCert {
            owner: self.owner,
            counter: self.counter,
            digest,
        }
    }

    /// The last issued counter.
    pub fn counter(&self) -> u64 {
        self.counter
    }
}

/// Verifier-side USIG state: accepts certificates from each replica only in
/// strict counter order, which is what makes equivocation impossible — two
/// different messages cannot both be "message number k from replica r".
#[derive(Clone, Debug, Default)]
pub struct UsigVerifier {
    last_seen: std::collections::BTreeMap<NodeId, u64>,
}

impl UsigVerifier {
    /// Creates an empty verifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts `cert` iff it is the next counter from its owner and it
    /// matches `expected` digest. Advances the window on success.
    pub fn verify(&mut self, cert: &UsigCert, expected: Digest) -> bool {
        if cert.digest != expected {
            return false;
        }
        let last = self.last_seen.entry(cert.owner).or_insert(0);
        if cert.counter == *last + 1 {
            *last = cert.counter;
            true
        } else {
            false
        }
    }

    /// Accepts `cert` iff its counter is strictly greater than the last
    /// accepted one from its owner (gaps allowed — the owner may have
    /// attested messages we never saw). Sufficient to exclude equivocation:
    /// no two accepted certificates share a counter.
    pub fn verify_monotonic(&mut self, cert: &UsigCert, expected: Digest) -> bool {
        if cert.digest != expected {
            return false;
        }
        let last = self.last_seen.entry(cert.owner).or_insert(0);
        if cert.counter > *last {
            *last = cert.counter;
            true
        } else {
            false
        }
    }

    /// Advances the expected-counter window for `owner` to `counter`
    /// (used after a view change, when the new primary attests its counter
    /// base in the NewView message).
    pub fn fast_forward(&mut self, owner: NodeId, counter: u64) {
        let last = self.last_seen.entry(owner).or_insert(0);
        *last = (*last).max(counter);
    }

    /// The last accepted counter from `owner`.
    pub fn last(&self, owner: NodeId) -> u64 {
        self.last_seen.get(&owner).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn digests_are_stable_and_distinguishing() {
        assert_eq!(digest_of(&42u64), digest_of(&42u64));
        assert_ne!(digest_of(&42u64), digest_of(&43u64));
        assert_ne!(digest_of(&"a"), digest_of(&"b"));
    }

    #[test]
    fn quorum_cert_counts_distinct_signers() {
        let mut qc = QuorumCert::new(digest_of(&1));
        assert!(qc.add(NodeId(0)));
        assert!(!qc.add(NodeId(0)), "duplicate shares don't count");
        qc.add(NodeId(1));
        qc.add(NodeId(2));
        assert!(qc.complete(3));
        assert!(!qc.complete(4));
    }

    #[test]
    fn usig_counters_are_sequential() {
        let mut usig = Usig::new(NodeId(1));
        let d = digest_of(&"m");
        let c1 = usig.create(d);
        let c2 = usig.create(d);
        assert_eq!(c1.counter, 1);
        assert_eq!(c2.counter, 2);
    }

    #[test]
    fn verifier_rejects_gaps_replays_and_wrong_digests() {
        let mut usig = Usig::new(NodeId(1));
        let mut verifier = UsigVerifier::new();
        let d1 = digest_of(&"m1");
        let d2 = digest_of(&"m2");
        let d3 = digest_of(&"m3");
        let c1 = usig.create(d1);
        let c2 = usig.create(d2);
        let c3 = usig.create(d3);
        // Wrong digest: the attestation doesn't cover this message.
        assert!(!verifier.verify(&c1, d2));
        assert!(verifier.verify(&c1, d1));
        // Replay rejected.
        assert!(!verifier.verify(&c1, d1));
        // Gap rejected (c3 before c2).
        assert!(!verifier.verify(&c3, d3));
        assert!(verifier.verify(&c2, d2));
        assert!(verifier.verify(&c3, d3));
        assert_eq!(verifier.last(NodeId(1)), 3);
    }

    proptest! {
        /// No interleaving of create calls can produce two accepted
        /// certificates with the same counter (the USIG non-equivocation
        /// property).
        #[test]
        fn prop_usig_no_equivocation(msgs in proptest::collection::vec(0u64..100, 1..50)) {
            let mut usig = Usig::new(NodeId(7));
            let mut verifier = UsigVerifier::new();
            let mut accepted_counters = std::collections::BTreeSet::new();
            for m in msgs {
                let d = digest_of(&m);
                let cert = usig.create(d);
                if verifier.verify(&cert, d) {
                    prop_assert!(accepted_counters.insert(cert.counter),
                        "counter {} accepted twice", cert.counter);
                }
            }
        }
    }
}
