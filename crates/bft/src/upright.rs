//! UpRight (Clement et al., SOSP '09): cluster services under a hybrid
//! fault model.
//!
//! UpRight counts faults in two dimensions — at most `m` malicious
//! (commission) and at most `c` crash (omission) failures — and derives the
//! quorum arithmetic the tutorial tabulates:
//!
//! * network size: `3m + 2c + 1`
//! * quorum size: `2m + c + 1`
//! * quorum intersection: `m + 1`
//!
//! plus the three engineering moves the slide lists: *request quorums*
//! (separate data path from control path), Zyzzyva-style speculation, and
//! Yin et al.'s **separation of agreement from execution** — agreement
//! needs the full `3m + 2c + 1` cluster, execution only `2m + c + 1`.
//!
//! This module provides the fault-model arithmetic, its exhaustive
//! validation against [`consensus_core::QuorumSpec::Hybrid`], and an
//! end-to-end run: the agreement tier is the SeeMoRe mode-1 engine (a
//! hybrid-quorum protocol with exactly UpRight's sizes), demonstrating that
//! the numbers are achievable, with the execution-tier size computed per
//! the separation result.

use consensus_core::QuorumSpec;

/// The UpRight fault model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpRightConfig {
    /// Maximum commission (malicious) faults.
    pub m: usize,
    /// Maximum omission (crash) faults.
    pub c: usize,
}

impl UpRightConfig {
    /// Creates a config.
    pub fn new(m: usize, c: usize) -> Self {
        UpRightConfig { m, c }
    }

    /// Agreement-tier size: `3m + 2c + 1`.
    pub fn agreement_nodes(&self) -> usize {
        3 * self.m + 2 * self.c + 1
    }

    /// Execution-tier size (separating agreement from execution):
    /// `2m + c + 1`.
    pub fn execution_nodes(&self) -> usize {
        2 * self.m + self.c + 1
    }

    /// Quorum size: `2m + c + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.m + self.c + 1
    }

    /// Guaranteed quorum intersection: `m + 1`.
    pub fn intersection(&self) -> usize {
        self.quorum() * 2 - self.agreement_nodes()
    }

    /// The matching quorum system.
    pub fn quorum_spec(&self) -> QuorumSpec {
        QuorumSpec::Hybrid {
            m: self.m,
            c: self.c,
        }
    }

    /// Request-quorum size: a client must send its request to at least
    /// `m + 1` replicas so at least one correct replica holds the data —
    /// the "separate the data path from the control path" trick.
    pub fn request_quorum(&self) -> usize {
        self.m + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_core::quorum::{verify_intersection_exhaustively, Phase};
    use crate::seemore::{Mode, SeeMoReConfig, SmCluster};
    use simnet::{NetConfig, Time};

    #[test]
    fn slide_numbers_for_m1_c1() {
        let u = UpRightConfig::new(1, 1);
        assert_eq!(u.agreement_nodes(), 6);
        assert_eq!(u.quorum(), 4);
        assert_eq!(u.intersection(), 2); // m + 1
        assert_eq!(u.execution_nodes(), 4);
        assert_eq!(u.request_quorum(), 2);
    }

    #[test]
    fn degenerate_cases_recover_classic_bounds() {
        // Pure Byzantine (c = 0): 3m+1 nodes, 2m+1 quorums — PBFT.
        let byz = UpRightConfig::new(1, 0);
        assert_eq!(byz.agreement_nodes(), 4);
        assert_eq!(byz.quorum(), 3);
        assert_eq!(byz.intersection(), 2);
        // Pure crash (m = 0): 2c+1 nodes, c+1 quorums — Paxos.
        let crash = UpRightConfig::new(0, 2);
        assert_eq!(crash.agreement_nodes(), 5);
        assert_eq!(crash.quorum(), 3);
        assert_eq!(crash.intersection(), 1);
    }

    #[test]
    fn intersection_formula_verified_exhaustively() {
        for m in 0..3 {
            for c in 0..3 {
                let u = UpRightConfig::new(m, c);
                let spec = u.quorum_spec();
                assert_eq!(spec.n(), u.agreement_nodes());
                assert_eq!(spec.quorum_size(Phase::Agreement), u.quorum());
                assert_eq!(spec.min_intersection(), u.intersection());
                assert!(u.intersection() >= m + 1, "m={m} c={c}");
                if u.agreement_nodes() <= 9 {
                    assert!(verify_intersection_exhaustively(&spec));
                }
            }
        }
    }

    #[test]
    fn execution_tier_is_smaller_than_agreement_tier() {
        for m in 0..4 {
            for c in 0..4 {
                let u = UpRightConfig::new(m, c);
                if m + c > 0 {
                    assert!(
                        u.execution_nodes() < u.agreement_nodes(),
                        "separation saves replicas for m={m} c={c}"
                    );
                }
            }
        }
    }

    #[test]
    fn end_to_end_under_upright_sizes() {
        // The agreement tier at UpRight's exact sizes, running a hybrid-
        // quorum protocol (SeeMoRe mode 1) with m malicious-capable and c
        // crash-prone nodes.
        let u = UpRightConfig::new(1, 1);
        let cfg = SeeMoReConfig {
            m: u.m,
            c: u.c,
            mode: Mode::One,
        };
        assert_eq!(cfg.n(), u.agreement_nodes());
        assert_eq!(cfg.quorum(), u.quorum());
        let mut cluster = SmCluster::new(cfg, 6, NetConfig::lan(), 1);
        assert!(cluster.run(Time::from_secs(20)));
        assert_eq!(cluster.client().completed, 6);
    }
}
