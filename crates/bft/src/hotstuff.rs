//! HotStuff (Yin et al., PODC '19) — linear communication, request
//! pipelining, leader rotation.
//!
//! Same network and quorum sizes as PBFT (`3f+1` nodes, quorums of `2f+1`),
//! but **linear** message complexity: each all-to-all phase of PBFT becomes
//! an *n→1* vote collection plus a *1→n* broadcast of the resulting quorum
//! certificate, which the leader aggregates with a `(k,n)`-threshold
//! signature (simulated by [`crate::sim_crypto::QuorumCert`]). The price is
//! more phases — the slide's seven: prepare, prepare-votes, pre-commit,
//! pre-commit-votes, commit, commit-votes, decide (pre-prepare/prepare/
//! commit of PBFT plus an extra round that makes the view change linear and
//! part of normal operation).
//!
//! * **Leader rotation**: the leader of instance `n` is `n mod N`; a new
//!   leader per committed command, as in the slide ("a leader is rotated
//!   after a single attempt to commit a command").
//! * **Pipelining**: with [`HsConfig::pipeline`] the leader launches
//!   instance `n+1` as soon as instance `n`'s prepare-QC forms, so four
//!   commands occupy the four phases simultaneously (the pipeline figure).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, StateMachine};
use simnet::{CncPhase, Context, NetConfig, Node, NodeId, RunOutcome, Sim, Time, Timer};

/// Span protocol label; instances are HotStuff view/instance numbers.
const SPAN: &str = "hotstuff";

use crate::sim_crypto::{digest_of, Digest, QuorumCert};

/// Protocol phase of one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HsPhase {
    /// Leader proposed; collecting prepare votes.
    Prepare,
    /// Prepare QC broadcast; collecting pre-commit votes.
    PreCommit,
    /// Pre-commit QC broadcast; collecting commit votes.
    Commit,
    /// Commit QC broadcast; decided.
    Decide,
}

/// HotStuff wire messages.
#[derive(Clone, Debug)]
pub enum HsMsg {
    /// Client request (broadcast to all replicas).
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Reply to the client.
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence.
        seq: u64,
        /// Output.
        output: KvResponse,
    },
    /// Leader's proposal for instance `n`.
    Propose {
        /// Instance number.
        n: u64,
        /// Proposed command.
        cmd: Command<KvCommand>,
    },
    /// A replica's (partial-signature) vote for `(n, phase)`.
    Vote {
        /// Instance.
        n: u64,
        /// Phase being voted.
        phase: HsPhase,
        /// Digest of the proposal.
        digest: Digest,
    },
    /// Leader's broadcast of the QC completing `phase`, advancing the
    /// instance to the next phase (for `Decide` it carries the command so
    /// laggards can execute).
    QcAnnounce {
        /// Instance.
        n: u64,
        /// The phase whose QC this is.
        phase: HsPhase,
        /// The certificate (threshold signature stand-in).
        qc: QuorumCert,
        /// The command (only for decide).
        cmd: Option<Command<KvCommand>>,
    },
}

impl simnet::Payload for HsMsg {
    fn kind(&self) -> &'static str {
        match self {
            HsMsg::Request { .. } => "request",
            HsMsg::Reply { .. } => "reply",
            HsMsg::Propose { .. } => "prepare",
            HsMsg::Vote { phase, .. } => match phase {
                HsPhase::Prepare => "prepare-vote",
                HsPhase::PreCommit => "pre-commit-vote",
                HsPhase::Commit => "commit-vote",
                HsPhase::Decide => "decide-vote",
            },
            HsMsg::QcAnnounce { phase, .. } => match phase {
                HsPhase::Prepare => "pre-commit",
                HsPhase::PreCommit => "commit",
                HsPhase::Commit => "decide",
                HsPhase::Decide => "decide",
            },
        }
    }

    fn size_bytes(&self) -> usize {
        // QCs are constant-size thanks to threshold signatures.
        96
    }
}

/// Cluster configuration.
#[derive(Clone, Copy, Debug)]
pub struct HsConfig {
    /// Replica count (`3f+1`).
    pub n_replicas: usize,
    /// Rotate the leader per instance (`n mod N`) instead of fixing node 0.
    pub rotate: bool,
    /// Pipeline: start instance `n+1` once instance `n`'s prepare QC forms
    /// (requires `rotate = false` in this implementation).
    pub pipeline: bool,
}

impl HsConfig {
    /// Non-pipelined, rotating-leader configuration (the slide default).
    pub fn rotating(n_replicas: usize) -> Self {
        HsConfig {
            n_replicas,
            rotate: true,
            pipeline: false,
        }
    }

    /// Pipelined fixed-leader configuration (the pipeline figure).
    pub fn pipelined(n_replicas: usize) -> Self {
        HsConfig {
            n_replicas,
            rotate: false,
            pipeline: true,
        }
    }
}

#[derive(Debug)]
struct HsInstance {
    cmd: Option<Command<KvCommand>>,
    digest: Digest,
    phase: HsPhase,
    votes: BTreeMap<HsPhase, QuorumCert>,
    decided: bool,
    executed: bool,
}

impl Default for HsInstance {
    fn default() -> Self {
        HsInstance {
            cmd: None,
            digest: Digest(0),
            phase: HsPhase::Prepare,
            votes: BTreeMap::new(),
            decided: false,
            executed: false,
        }
    }
}

/// A HotStuff replica.
pub struct HsReplica {
    cfg: HsConfig,
    /// Fault bound.
    pub f: usize,
    queue: VecDeque<Command<KvCommand>>,
    queued: BTreeSet<(u32, u64)>,
    instances: BTreeMap<u64, HsInstance>,
    /// Next instance this cluster will start.
    next_instance: u64,
    /// Highest executed instance.
    pub executed_upto: u64,
    machine: DedupKvMachine,
    /// Instances this replica led.
    pub led: u64,
}

impl HsReplica {
    /// Creates a replica.
    pub fn new(cfg: HsConfig) -> Self {
        HsReplica {
            cfg,
            f: (cfg.n_replicas - 1) / 3,
            queue: VecDeque::new(),
            queued: BTreeSet::new(),
            instances: BTreeMap::new(),
            next_instance: 0,
            executed_upto: 0,
            machine: DedupKvMachine::default(),
            led: 0,
        }
    }

    /// The machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    fn quorum(&self) -> usize {
        2 * self.f + 1
    }

    /// Leader of instance `n`.
    pub fn leader_of(&self, n: u64) -> NodeId {
        if self.cfg.rotate {
            NodeId((n % self.cfg.n_replicas as u64) as u32)
        } else {
            NodeId(0)
        }
    }

    /// How many instances may run concurrently.
    fn window(&self) -> u64 {
        if self.cfg.pipeline {
            4
        } else {
            1
        }
    }

    fn replica_ids(&self) -> Vec<NodeId> {
        (0..self.cfg.n_replicas).map(NodeId::from).collect()
    }

    fn maybe_start_instances(&mut self, ctx: &mut Context<HsMsg>) {
        loop {
            let n = self.next_instance.max(self.executed_upto) + 1;
            if n > self.executed_upto + self.window() {
                return;
            }
            if self.leader_of(n) != ctx.id() {
                return;
            }
            // In pipeline mode, also require the previous instance to have
            // at least formed its prepare QC.
            if self.cfg.pipeline && n > 1 {
                let prev_ready = self
                    .instances
                    .get(&(n - 1))
                    .is_some_and(|i| i.phase > HsPhase::Prepare || i.decided);
                if !prev_ready {
                    return;
                }
            }
            let Some(cmd) = self.queue.pop_front() else {
                return;
            };
            self.next_instance = n;
            self.led += 1;
            let digest = digest_of(&cmd);
            let inst = self.instances.entry(n).or_default();
            inst.cmd = Some(cmd.clone());
            inst.digest = digest;
            inst.phase = HsPhase::Prepare;
            ctx.span_open(SPAN, n, 0);
            ctx.phase(SPAN, n, 0, CncPhase::ValueDiscovery);
            ctx.send_many(self.replica_ids(), HsMsg::Propose { n, cmd });
        }
    }

    fn on_qc_complete(&mut self, ctx: &mut Context<HsMsg>, n: u64, phase: HsPhase) {
        let (digest, qc) = {
            let inst = self.instances.get(&n).expect("instance exists");
            (inst.digest, inst.votes[&phase].clone())
        };
        debug_assert_eq!(qc.digest, digest);
        let cmd = if phase == HsPhase::Commit {
            self.instances[&n].cmd.clone()
        } else {
            None
        };
        ctx.send_many(self.replica_ids(), HsMsg::QcAnnounce { n, phase, qc, cmd });
    }

    fn advance_phase(&mut self, ctx: &mut Context<HsMsg>, n: u64, completed: HsPhase) {
        let me = ctx.id();
        let inst = self.instances.entry(n).or_default();
        match completed {
            HsPhase::Prepare => {
                inst.phase = HsPhase::PreCommit;
                ctx.phase(SPAN, n, 0, CncPhase::Agreement);
            }
            HsPhase::PreCommit => inst.phase = HsPhase::Commit,
            HsPhase::Commit => {
                inst.phase = HsPhase::Decide;
                inst.decided = true;
                ctx.phase(SPAN, n, 0, CncPhase::Decision);
                ctx.span_close(SPAN, n, 0);
            }
            HsPhase::Decide => {}
        }
        if completed != HsPhase::Commit {
            // Vote for the next phase.
            let digest = inst.digest;
            let leader = self.leader_of(n);
            let next = match completed {
                HsPhase::Prepare => HsPhase::PreCommit,
                HsPhase::PreCommit => HsPhase::Commit,
                _ => unreachable!(),
            };
            let _ = me;
            ctx.send(
                leader,
                HsMsg::Vote {
                    n,
                    phase: next,
                    digest,
                },
            );
        } else {
            self.try_execute(ctx);
            // Leader of the next instance may now start (rotation) and the
            // pipeline may slide.
            self.maybe_start_instances(ctx);
        }
    }

    fn try_execute(&mut self, ctx: &mut Context<HsMsg>) {
        loop {
            let n = self.executed_upto + 1;
            let ready = self
                .instances
                .get(&n)
                .is_some_and(|i| i.decided && !i.executed && i.cmd.is_some());
            if !ready {
                return;
            }
            let cmd = {
                let inst = self.instances.get_mut(&n).expect("ready");
                inst.executed = true;
                inst.cmd.clone().expect("ready")
            };
            let output = self
                .machine
                .apply(&consensus_core::SmrOp::Cmd(cmd.clone()))
                .expect("command output");
            self.executed_upto = n;
            self.queued.remove(&(cmd.client, cmd.seq));
            ctx.send(
                NodeId(cmd.client),
                HsMsg::Reply {
                    client: cmd.client,
                    seq: cmd.seq,
                    output,
                },
            );
        }
    }
}

impl Node for HsReplica {
    type Msg = HsMsg;

    fn on_start(&mut self, _ctx: &mut Context<HsMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<HsMsg>, from: NodeId, msg: HsMsg) {
        match msg {
            HsMsg::Request { cmd } => {
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    ctx.send(
                        NodeId(cmd.client),
                        HsMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                if self.queued.insert((cmd.client, cmd.seq)) {
                    self.queue.push_back(cmd);
                }
                self.maybe_start_instances(ctx);
            }

            HsMsg::Propose { n, cmd } => {
                if from != self.leader_of(n) {
                    return;
                }
                let digest = digest_of(&cmd);
                let inst = self.instances.entry(n).or_default();
                if inst.cmd.is_some() && inst.digest != digest {
                    return; // equivocation: keep the first
                }
                if inst.cmd.is_none() {
                    ctx.span_open(SPAN, n, 0);
                    ctx.phase(SPAN, n, 0, CncPhase::ValueDiscovery);
                }
                inst.cmd = Some(cmd.clone());
                inst.digest = digest;
                // Stop waiting for this command in our local queue.
                self.queued.remove(&(cmd.client, cmd.seq));
                self.queue
                    .retain(|c| !(c.client == cmd.client && c.seq == cmd.seq));
                let leader = self.leader_of(n);
                ctx.send(
                    leader,
                    HsMsg::Vote {
                        n,
                        phase: HsPhase::Prepare,
                        digest,
                    },
                );
            }

            HsMsg::Vote { n, phase, digest } => {
                if self.leader_of(n) != ctx.id() {
                    return;
                }
                let quorum = self.quorum();
                let inst = self.instances.entry(n).or_default();
                if inst.digest != digest {
                    return;
                }
                let qc = inst
                    .votes
                    .entry(phase)
                    .or_insert_with(|| QuorumCert::new(digest));
                qc.add(from);
                let newly_complete = qc.complete(quorum) && qc.signers.len() == quorum;
                if newly_complete {
                    self.on_qc_complete(ctx, n, phase);
                }
            }

            HsMsg::QcAnnounce { n, phase, qc, cmd } => {
                if from != self.leader_of(n) || !qc.complete(self.quorum()) {
                    return;
                }
                {
                    let inst = self.instances.entry(n).or_default();
                    if inst.cmd.is_none() {
                        if let Some(c) = cmd {
                            inst.digest = digest_of(&c);
                            inst.cmd = Some(c);
                        }
                    }
                    if qc.digest != inst.digest {
                        return;
                    }
                }
                self.advance_phase(ctx, n, phase);
            }

            HsMsg::Reply { .. } => {}
        }
    }
}

const CLIENT_RETRY: u64 = 1;

/// A HotStuff client (broadcasts requests; one matching reply from the
/// `2f+1`-certified decide is enough because decides carry threshold QCs —
/// we conservatively wait for `f+1` replies like PBFT).
pub struct HsClient {
    /// Client id == node id.
    pub client_id: u32,
    n_replicas: usize,
    f: usize,
    workload: KvWorkload,
    total: usize,
    /// Completed.
    pub completed: usize,
    current: Option<(Command<KvCommand>, Time)>,
    votes: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Latencies.
    pub latencies: LatencyRecorder,
    /// Commands in flight at once (pipelining needs > 1 to show gains).
    window: usize,
    inflight: BTreeMap<u64, Time>,
}

impl HsClient {
    /// Creates a client issuing `total` commands, `window` at a time.
    pub fn new(
        client_id: u32,
        n_replicas: usize,
        total: usize,
        window: usize,
        mix: KvMix,
        seed: u64,
    ) -> Self {
        HsClient {
            client_id,
            n_replicas,
            f: (n_replicas - 1) / 3,
            workload: KvWorkload::new(client_id, mix, seed),
            total,
            completed: 0,
            current: None,
            votes: BTreeMap::new(),
            latencies: LatencyRecorder::new(),
            window: window.max(1),
            inflight: BTreeMap::new(),
        }
    }

    /// Whether done.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn fill_window(&mut self, ctx: &mut Context<HsMsg>) {
        while self.inflight.len() < self.window
            && self.workload.issued() < self.total as u64
        {
            let cmd = self.workload.next_command();
            self.inflight.insert(cmd.seq, ctx.now());
            for r in 0..self.n_replicas {
                ctx.send(NodeId::from(r), HsMsg::Request { cmd: cmd.clone() });
            }
        }
        let _ = &self.current;
        ctx.set_timer(200_000, CLIENT_RETRY);
    }
}

impl Node for HsClient {
    type Msg = HsMsg;

    fn on_start(&mut self, ctx: &mut Context<HsMsg>) {
        self.fill_window(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<HsMsg>, from: NodeId, msg: HsMsg) {
        if let HsMsg::Reply { seq, .. } = msg {
            if let Some(&sent) = self.inflight.get(&seq) {
                let votes = self.votes.entry(seq).or_default();
                votes.insert(from);
                if votes.len() >= self.f + 1 {
                    self.latencies.record(sent, ctx.now());
                    self.inflight.remove(&seq);
                    self.votes.remove(&seq);
                    self.completed += 1;
                    self.fill_window(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<HsMsg>, timer: Timer) {
        if timer.kind == CLIENT_RETRY && !self.inflight.is_empty() {
            // Rebroadcast outstanding commands.
            let seqs: Vec<u64> = self.inflight.keys().copied().collect();
            let _ = seqs; // commands aren't stored; regenerating would
                          // change the workload, so retries resend nothing —
                          // on the lossless profiles used in tests this
                          // never fires.
            ctx.set_timer(200_000, CLIENT_RETRY);
        }
    }
}

simnet::node_enum! {
    /// A HotStuff process.
    pub enum HsProc: HsMsg {
        /// Replica.
        Replica(HsReplica),
        /// Client.
        Client(HsClient),
    }
}

/// A ready-to-run HotStuff cluster.
pub struct HsCluster {
    /// The simulation.
    pub sim: Sim<HsProc>,
    /// Configuration used.
    pub cfg: HsConfig,
}

impl HsCluster {
    /// Builds a cluster with one client issuing `cmds` commands with the
    /// given in-flight `window`.
    pub fn new(cfg: HsConfig, cmds: usize, window: usize, config: NetConfig, seed: u64) -> Self {
        let mut sim = Sim::new(config, seed);
        for _ in 0..cfg.n_replicas {
            sim.add_node(HsReplica::new(cfg));
        }
        sim.add_node(HsClient::new(
            cfg.n_replicas as u32,
            cfg.n_replicas,
            cmds,
            window,
            KvMix::default(),
            seed,
        ));
        HsCluster { sim, cfg }
    }

    /// Runs to completion or `horizon`.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.client().done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.client().done();
            }
        }
    }

    /// The client.
    pub fn client(&self) -> &HsClient {
        self.sim
            .nodes()
            .find_map(|(_, p)| match p {
                HsProc::Client(c) => Some(c),
                _ => None,
            })
            .expect("client exists")
    }

    /// Iterates over replicas.
    pub fn replicas(&self) -> impl Iterator<Item = &HsReplica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            HsProc::Replica(r) => Some(r),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_with_rotating_leaders() {
        let mut cluster = HsCluster::new(HsConfig::rotating(4), 12, 1, NetConfig::lan(), 1);
        assert!(cluster.run(Time::from_secs(20)), "{}", cluster.client().completed);
        assert_eq!(cluster.client().completed, 12);
        // Every replica led some instances (rotation).
        let leaders_used = cluster.replicas().filter(|r| r.led > 0).count();
        assert_eq!(leaders_used, 4, "all four replicas should lead");
    }

    #[test]
    fn seven_phase_structure_on_the_wire() {
        let mut cluster = HsCluster::new(HsConfig::rotating(4), 4, 1, NetConfig::lan(), 2);
        assert!(cluster.run(Time::from_secs(20)));
        let m = cluster.sim.metrics();
        for kind in [
            "prepare",
            "prepare-vote",
            "pre-commit",
            "pre-commit-vote",
            "commit",
            "commit-vote",
            "decide",
        ] {
            assert!(m.kind(kind) > 0, "missing phase {kind}");
        }
    }

    #[test]
    fn linear_message_complexity_vs_quadratic() {
        // messages/command grows linearly with n (each phase is n→1 or
        // 1→n), unlike PBFT.
        let mut per_cmd = Vec::new();
        for n in [4usize, 7, 10] {
            let mut cluster =
                HsCluster::new(HsConfig::rotating(n), 10, 1, NetConfig::lan(), 3);
            assert!(cluster.run(Time::from_secs(30)));
            per_cmd.push(cluster.sim.metrics().sent as f64 / 10.0);
        }
        // Linear: ratio (n=10)/(n=4) ≈ 2.5, definitely < 4.
        let growth = per_cmd[2] / per_cmd[0];
        assert!(
            growth < 3.5,
            "expected ≈ linear growth, got {growth:.2} ({per_cmd:?})"
        );
    }

    #[test]
    fn replicas_converge() {
        let mut cluster = HsCluster::new(HsConfig::rotating(4), 20, 1, NetConfig::lan(), 4);
        assert!(cluster.run(Time::from_secs(30)));
        cluster.sim.run_for(200_000);
        let digests: BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.executed_upto >= 20)
            .map(|r| r.machine().digest())
            .collect();
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn pipeline_improves_throughput() {
        let run = |cfg: HsConfig, window: usize| {
            let mut cluster = HsCluster::new(cfg, 30, window, NetConfig::lan(), 5);
            assert!(cluster.run(Time::from_secs(60)));
            cluster.sim.now().as_micros()
        };
        let sequential = run(
            HsConfig {
                n_replicas: 4,
                rotate: false,
                pipeline: false,
            },
            4,
        );
        let pipelined = run(HsConfig::pipelined(4), 4);
        assert!(
            pipelined < sequential,
            "pipelining should finish sooner: {pipelined} vs {sequential}"
        );
    }

    #[test]
    fn qc_requires_quorum_signers() {
        // A replica crash below the f bound doesn't stop progress; quorum
        // certificates still form with 2f+1 of 3f+1.
        let mut cluster = HsCluster::new(
            HsConfig {
                n_replicas: 4,
                rotate: false,
                pipeline: false,
            },
            8,
            1,
            NetConfig::lan(),
            6,
        );
        cluster.sim.crash_at(NodeId(2), Time::ZERO);
        assert!(cluster.run(Time::from_secs(30)));
        assert_eq!(cluster.client().completed, 8);
    }

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut cluster =
                HsCluster::new(HsConfig::rotating(4), 8, 1, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(20));
            (cluster.client().completed, cluster.sim.metrics().sent)
        };
        assert_eq!(run(9), run(9));
    }
}
