//! # atomic-commit — 2PC and 3PC
//!
//! A distributed transaction accesses data stored across multiple servers;
//! an *atomic commitment* protocol ensures either all servers commit or no
//! server commits. This crate implements the tutorial's commitment side:
//!
//! * [`two_phase`] — classic 2PC (vote request / vote / global decision)
//!   including **cooperative termination**, and a demonstration of the
//!   protocol's *blocking window*: if the coordinator crashes after every
//!   participant voted yes but before any decision escaped, participants
//!   hold their locks forever.
//! * [`three_phase`] — 3PC adds a *pre-commit* phase that replicates the
//!   decision to the cohorts before committing (like Paxos' fault-tolerant
//!   agreement phase in the C&C framework), plus the termination protocol:
//!   on coordinator failure the cohorts elect a successor that completes or
//!   aborts the transaction — non-blocking under crash faults.
//! * [`paxos_commit`] — Gray & Lamport's Paxos Commit: one Paxos instance
//!   per participant's prepared/aborted vote over a shared `2F+1` acceptor
//!   set, with `F+1` coordinators any of which can drive the decision.
//!   Non-blocking for `F ≥ 1`, and provably (by test) identical to 2PC's
//!   message pattern and outcomes at `F = 0`.
//!
//! The abstract versions of both protocols also exist as C&C framework
//! instances in `consensus_core::cnc`; here they are implemented with the
//! full state machines (Initial/Ready/PreCommitted/Committed/Aborted) and
//! per-state timeout actions.

pub mod msg;
pub mod paxos_commit;
pub mod three_phase;
pub mod two_phase;

pub use msg::{CommitMsg, TxnState};
