//! Messages and participant states shared by 2PC and 3PC.

use simnet::Payload;

/// A participant's transaction state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxnState {
    /// Has not voted yet (can still unilaterally abort).
    Initial,
    /// Voted yes and holds locks; awaiting the decision (2PC's uncertain /
    /// blocking state).
    Ready,
    /// 3PC only: knows the decision *will be* commit (pre-committed).
    PreCommitted,
    /// Final: committed.
    Committed,
    /// Final: aborted.
    Aborted,
}

impl TxnState {
    /// Whether the state is terminal.
    pub fn is_final(self) -> bool {
        matches!(self, TxnState::Committed | TxnState::Aborted)
    }
}

/// Wire messages of both commitment protocols.
#[derive(Clone, Debug)]
pub enum CommitMsg {
    /// Phase 1: coordinator asks for votes.
    VoteRequest {
        /// Transaction id.
        txn: u64,
    },
    /// Phase 1 response.
    Vote {
        /// Transaction id.
        txn: u64,
        /// Yes (commit) or no (abort).
        yes: bool,
    },
    /// 3PC phase 2: replicate the commit decision before finalizing.
    PreCommit {
        /// Transaction id.
        txn: u64,
    },
    /// 3PC phase 2 response.
    PreCommitAck {
        /// Transaction id.
        txn: u64,
    },
    /// Final decision: commit.
    GlobalCommit {
        /// Transaction id.
        txn: u64,
    },
    /// Final decision: abort.
    GlobalAbort {
        /// Transaction id.
        txn: u64,
    },
    /// Cooperative termination / recovery: "what state are you in?".
    StateRequest {
        /// Transaction id.
        txn: u64,
        /// Recovery round (ties broken by node id ordering of timeouts).
        round: u32,
    },
    /// Termination response.
    StateReport {
        /// Transaction id.
        txn: u64,
        /// Reporting participant's state.
        state: TxnState,
    },
}

impl Payload for CommitMsg {
    fn kind(&self) -> &'static str {
        match self {
            CommitMsg::VoteRequest { .. } => "vote-request",
            CommitMsg::Vote { .. } => "vote",
            CommitMsg::PreCommit { .. } => "pre-commit",
            CommitMsg::PreCommitAck { .. } => "pre-commit-ack",
            CommitMsg::GlobalCommit { .. } => "global-commit",
            CommitMsg::GlobalAbort { .. } => "global-abort",
            CommitMsg::StateRequest { .. } => "state-request",
            CommitMsg::StateReport { .. } => "state-report",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_states() {
        assert!(TxnState::Committed.is_final());
        assert!(TxnState::Aborted.is_final());
        assert!(!TxnState::Ready.is_final());
        assert!(!TxnState::PreCommitted.is_final());
        assert!(!TxnState::Initial.is_final());
    }

    #[test]
    fn kinds_are_labelled() {
        assert_eq!(CommitMsg::VoteRequest { txn: 1 }.kind(), "vote-request");
        assert_eq!(CommitMsg::PreCommit { txn: 1 }.kind(), "pre-commit");
    }
}
