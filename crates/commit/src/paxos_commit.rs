//! Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit").
//!
//! Atomic commitment recast as consensus: one Paxos instance per resource
//! manager's prepared/aborted vote, sharing a single acceptor set of
//! `2F + 1` acceptors, with `F + 1` coordinators any one of which can drive
//! the decision. The transaction commits iff every instance chooses
//! `Prepared`.
//!
//! The fast path is ballot 0: each RM acts as the phase-1-free proposer of
//! its *own* instance and sends `Phase2a⟨ballot 0⟩` straight to the
//! acceptors. A backup coordinator that suspects the leader runs phase 1
//! for the undecided instances at a higher ballot; if a quorum reports no
//! accepted value the backup is *free* to choose `Aborted` — this is what
//! makes the protocol non-blocking where 2PC stalls.
//!
//! With `F = 0` there is one acceptor co-located with the single
//! coordinator: `Phase2b` becomes a local delivery and the wire pattern
//! collapses to exactly 2PC's three linear phases (vote-request, vote,
//! decision — `3n` messages). The tests prove both the message-pattern and
//! the per-outcome equivalence against [`crate::two_phase`].

use std::collections::BTreeMap;

use simnet::{CncPhase, Context, NetConfig, Node, NodeId, Payload, Sim, Time, Timer};

use crate::msg::TxnState;

/// Span protocol label; the single transaction is instance [`TXN`].
const SPAN: &str = "paxos-commit";
/// Transaction id driven by one sim instance.
const TXN: u64 = 1;

/// Backup-coordinator watchdog timer kind.
const WATCHDOG: u64 = 1;
/// Blocked-RM timer kind (mirrors 2PC's decision timeout).
const RM_BLOCK: u64 = 2;
/// Timeout before a backup coordinator (or blocked RM) acts (µs); matches
/// [`crate::two_phase`] so crash schedules are comparable.
const TIMEOUT_US: u64 = 30_000;

/// Where the leader coordinator may crash (fault injection), mirroring
/// [`crate::two_phase::CrashPoint`]: freeze after every vote instance is
/// learned and before any decision escapes. At `F = 0` this is 2PC's
/// blocking window; at `F ≥ 1` a backup coordinator completes the commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Run to completion.
    None,
    /// Freeze after learning all prepared votes (before any decision escapes).
    AfterVotes,
}

/// The value decided by one per-RM Paxos instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Vote {
    /// The RM is prepared to commit.
    Prepared,
    /// The RM aborted (or a recovering coordinator chose the free abort).
    Aborted,
}

/// Node layout: acceptors on nodes `0..2F+1`, coordinators co-located on
/// nodes `0..F+1` (node 0 is the initial leader), RMs after the acceptors.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Tolerated coordinator/acceptor crash faults.
    pub f: usize,
    /// Number of resource managers (voting participants).
    pub n_rms: usize,
}

impl Layout {
    /// Acceptor-set size `2F + 1`.
    pub fn n_acceptors(&self) -> usize {
        2 * self.f + 1
    }

    /// Coordinator count `F + 1`.
    pub fn n_coordinators(&self) -> usize {
        self.f + 1
    }

    /// Acceptor majority `F + 1`.
    pub fn quorum(&self) -> usize {
        self.f + 1
    }

    /// Total sim nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_acceptors() + self.n_rms
    }

    /// Acceptor node ids.
    pub fn acceptors(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_acceptors() as u32).map(NodeId)
    }

    /// Coordinator node ids (a prefix of the acceptors).
    pub fn coordinators(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_coordinators() as u32).map(NodeId)
    }

    /// RM node ids.
    pub fn rms(&self) -> impl Iterator<Item = NodeId> {
        let base = self.n_acceptors() as u32;
        (base..base + self.n_rms as u32).map(NodeId)
    }
}

/// Wire messages of Paxos Commit.
#[derive(Clone, Debug)]
pub enum PcMsg {
    /// Leader asks every RM to prepare (begins the transaction).
    VoteRequest,
    /// Proposer → acceptors: accept `vote` for `instance` at `ballot`.
    /// Ballot 0 comes from the instance's own RM (the fast path); higher
    /// ballots come from a recovering coordinator.
    Phase2a {
        /// Per-RM Paxos instance (the RM's index).
        instance: u32,
        /// Paxos ballot.
        ballot: u32,
        /// Proposed vote value.
        vote: Vote,
    },
    /// Acceptor → coordinators: accepted `vote` at `ballot`.
    Phase2b {
        /// Per-RM Paxos instance.
        instance: u32,
        /// Paxos ballot.
        ballot: u32,
        /// Accepted vote value.
        vote: Vote,
    },
    /// Recovering coordinator → acceptors: promise request.
    Phase1a {
        /// Per-RM Paxos instance.
        instance: u32,
        /// Takeover ballot.
        ballot: u32,
    },
    /// Acceptor → recovering coordinator: promise, reporting any accepted
    /// value.
    Phase1b {
        /// Per-RM Paxos instance.
        instance: u32,
        /// The promised ballot (echoed).
        ballot: u32,
        /// Highest accepted `(ballot, vote)`, if any.
        accepted: Option<(u32, Vote)>,
    },
    /// Coordinator → RMs (and peer coordinators): the global decision.
    Outcome {
        /// Commit (true) or abort (false).
        commit: bool,
    },
}

impl Payload for PcMsg {
    fn kind(&self) -> &'static str {
        match self {
            PcMsg::VoteRequest => "vote-request",
            PcMsg::Phase2a { .. } => "phase2a",
            PcMsg::Phase2b { .. } => "phase2b",
            PcMsg::Phase1a { .. } => "phase1a",
            PcMsg::Phase1b { .. } => "phase1b",
            PcMsg::Outcome { .. } => "outcome",
        }
    }
}

/// Sends `msg` to `to`, short-circuiting co-located roles: a message to the
/// node itself is queued for local dispatch instead of hitting the wire.
/// This is what collapses `Phase2b` to zero messages at `F = 0`.
fn post(
    ctx: &mut Context<PcMsg>,
    out: &mut Vec<(NodeId, PcMsg)>,
    to: NodeId,
    msg: PcMsg,
) {
    if to == ctx.id() {
        out.push((ctx.id(), msg));
    } else {
        ctx.send(to, msg);
    }
}

/// Per-instance acceptor slot.
#[derive(Clone, Copy, Debug, Default)]
struct AccSlot {
    promised: u32,
    accepted: Option<(u32, Vote)>,
}

/// One member of the shared acceptor set.
pub struct Acceptor {
    layout: Layout,
    slots: BTreeMap<u32, AccSlot>,
}

impl Acceptor {
    fn new(layout: Layout) -> Self {
        Acceptor {
            layout,
            slots: BTreeMap::new(),
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<PcMsg>,
        from: NodeId,
        msg: PcMsg,
        out: &mut Vec<(NodeId, PcMsg)>,
    ) {
        match msg {
            PcMsg::Phase2a {
                instance,
                ballot,
                vote,
            } => {
                let slot = self.slots.entry(instance).or_default();
                if ballot >= slot.promised {
                    slot.promised = ballot;
                    slot.accepted = Some((ballot, vote));
                    for c in self.layout.coordinators() {
                        post(
                            ctx,
                            out,
                            c,
                            PcMsg::Phase2b {
                                instance,
                                ballot,
                                vote,
                            },
                        );
                    }
                }
            }
            PcMsg::Phase1a { instance, ballot } => {
                let slot = self.slots.entry(instance).or_default();
                if ballot > slot.promised {
                    slot.promised = ballot;
                    post(
                        ctx,
                        out,
                        from,
                        PcMsg::Phase1b {
                            instance,
                            ballot,
                            accepted: slot.accepted,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

/// One of the `F + 1` coordinators. Index 0 is the initial leader; backups
/// watch with staggered timeouts and take over undecided instances.
pub struct Coordinator {
    layout: Layout,
    /// Index among coordinators (0 = initial leader).
    idx: usize,
    /// Injected fault on the leader (mirrors 2PC).
    pub crash_point: CrashPoint,
    /// Chosen vote per instance.
    learned: BTreeMap<u32, Vote>,
    /// Phase2b tallies: `(instance, ballot)` → acceptor → vote.
    tally2b: BTreeMap<(u32, u32), BTreeMap<u32, Vote>>,
    /// Phase1b gathering during takeover: instance → acceptor → accepted.
    recovery: BTreeMap<u32, BTreeMap<u32, Option<(u32, Vote)>>>,
    /// Current takeover ballot (0 until the first takeover round).
    ballot: u32,
    /// Takeover retry round.
    round: u32,
    /// The global decision, once known.
    pub decided: Option<bool>,
    /// Whether this coordinator already broadcast (or saw) the decision.
    announced: bool,
    /// Frozen at the crash point (leader only).
    frozen: bool,
    /// Takeover span (round 1) currently open.
    span1_open: bool,
    marked_agreement: bool,
}

impl Coordinator {
    fn new(layout: Layout, idx: usize) -> Self {
        Coordinator {
            layout,
            idx,
            crash_point: CrashPoint::None,
            learned: BTreeMap::new(),
            tally2b: BTreeMap::new(),
            recovery: BTreeMap::new(),
            ballot: 0,
            round: 0,
            decided: None,
            announced: false,
            frozen: false,
            span1_open: false,
            marked_agreement: false,
        }
    }

    fn is_leader(&self) -> bool {
        self.idx == 0
    }

    fn on_start(&mut self, ctx: &mut Context<PcMsg>) {
        if self.is_leader() {
            // No leader election on the fast path; asking for votes is the
            // value-discovery phase, as in 2PC.
            ctx.span_open(SPAN, TXN, 0);
            ctx.phase(SPAN, TXN, 0, CncPhase::ValueDiscovery);
            for rm in self.layout.rms() {
                ctx.send(rm, PcMsg::VoteRequest);
            }
        } else {
            // Staggered watchdogs: backup i acts after i timeouts.
            ctx.set_timer(TIMEOUT_US * self.idx as u64, WATCHDOG);
        }
    }

    /// Sends the decision to every RM and peer coordinator.
    fn announce(&mut self, ctx: &mut Context<PcMsg>, out: &mut Vec<(NodeId, PcMsg)>, commit: bool) {
        self.announced = true;
        for rm in self.layout.rms() {
            post(ctx, out, rm, PcMsg::Outcome { commit });
        }
        for c in self.layout.coordinators() {
            if c != ctx.id() {
                post(ctx, out, c, PcMsg::Outcome { commit });
            }
        }
    }

    /// Closes the takeover span if one is open.
    fn settle_takeover_span(&mut self, ctx: &mut Context<PcMsg>) {
        if self.span1_open {
            ctx.phase(SPAN, TXN, 1, CncPhase::Decision);
            ctx.span_close(SPAN, TXN, 1);
            self.span1_open = false;
        }
    }

    /// Decides as soon as the outcome is determined: any instance chosen
    /// `Aborted`, or all instances chosen `Prepared`.
    fn maybe_decide(&mut self, ctx: &mut Context<PcMsg>, out: &mut Vec<(NodeId, PcMsg)>) {
        if self.decided.is_some() || self.frozen {
            return;
        }
        let any_abort = self.learned.values().any(|v| *v == Vote::Aborted);
        let all_prepared = self.learned.len() >= self.layout.n_rms && !any_abort;
        if !any_abort && !all_prepared {
            return;
        }
        let commit = all_prepared;
        if commit && self.is_leader() && self.crash_point == CrashPoint::AfterVotes {
            // Freeze inside the window: every vote learned, no decision out.
            self.frozen = true;
            return;
        }
        self.decided = Some(commit);
        if self.is_leader() {
            ctx.phase(SPAN, TXN, 0, CncPhase::Decision);
            ctx.span_close(SPAN, TXN, 0);
            self.announce(ctx, out, commit);
        } else if self.span1_open {
            // Decision reached by takeover.
            self.settle_takeover_span(ctx);
            self.announce(ctx, out, commit);
        }
        // A passively-learning backup records the outcome and stays quiet;
        // its watchdog re-announces only if the leader's decision never
        // reached the RMs.
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<PcMsg>,
        from: NodeId,
        msg: PcMsg,
        out: &mut Vec<(NodeId, PcMsg)>,
    ) {
        match msg {
            PcMsg::Phase2b {
                instance,
                ballot,
                vote,
            } => {
                if self.is_leader() && !self.marked_agreement && !self.frozen {
                    ctx.phase(SPAN, TXN, 0, CncPhase::Agreement);
                    self.marked_agreement = true;
                }
                let tally = self.tally2b.entry((instance, ballot)).or_default();
                tally.insert(from.0, vote);
                if tally.len() >= self.layout.quorum() {
                    self.learned.entry(instance).or_insert(vote);
                    self.maybe_decide(ctx, out);
                }
            }
            PcMsg::Phase1b {
                instance,
                ballot,
                accepted,
            } => {
                if ballot != self.ballot {
                    return; // stale takeover round
                }
                let Some(gather) = self.recovery.get_mut(&instance) else {
                    return; // already re-proposed (or never ours)
                };
                gather.insert(from.0, accepted);
                if gather.len() >= self.layout.quorum() {
                    // Paxos rule: re-propose the highest-ballot accepted
                    // value; a quorum with nothing accepted frees us to
                    // choose — and Paxos Commit chooses Aborted.
                    let vote = gather
                        .values()
                        .flatten()
                        .max_by_key(|(b, _)| *b)
                        .map_or(Vote::Aborted, |(_, v)| *v);
                    self.recovery.remove(&instance);
                    if !self.marked_agreement {
                        ctx.phase(SPAN, TXN, 1, CncPhase::Agreement);
                        self.marked_agreement = true;
                    }
                    let ballot = self.ballot;
                    for a in self.layout.acceptors() {
                        post(
                            ctx,
                            out,
                            a,
                            PcMsg::Phase2a {
                                instance,
                                ballot,
                                vote,
                            },
                        );
                    }
                }
            }
            PcMsg::Outcome { commit } => {
                // A peer coordinator already drove the decision.
                self.decided = Some(commit);
                self.announced = true;
                self.settle_takeover_span(ctx);
            }
            _ => {}
        }
    }

    fn on_watchdog(&mut self, ctx: &mut Context<PcMsg>, out: &mut Vec<(NodeId, PcMsg)>) {
        if let Some(commit) = self.decided {
            // Learned passively but the RMs may still be waiting (the
            // leader could have crashed between learning and announcing).
            if !self.announced {
                self.settle_takeover_span(ctx);
                self.announce(ctx, out, commit);
            }
            return;
        }
        // Take over the undecided instances at a fresh, globally unique
        // ballot: coordinator idx owns ballots idx+1, idx+1+(F+1), ...
        self.ballot = self.round * self.layout.n_coordinators() as u32 + self.idx as u32 + 1;
        self.round += 1;
        if !self.span1_open {
            ctx.span_open(SPAN, TXN, 1);
            ctx.phase(SPAN, TXN, 1, CncPhase::LeaderElection);
            self.span1_open = true;
        }
        self.recovery.clear();
        for instance in 0..self.layout.n_rms as u32 {
            if self.learned.contains_key(&instance) {
                continue;
            }
            self.recovery.insert(instance, BTreeMap::new());
            let ballot = self.ballot;
            for a in self.layout.acceptors() {
                post(ctx, out, a, PcMsg::Phase1a { instance, ballot });
            }
        }
        // Retry with a higher ballot if this round stalls.
        ctx.set_timer(TIMEOUT_US * (self.idx as u64 + 1), WATCHDOG);
    }
}

/// A resource manager: the proposer of its own vote instance.
pub struct Rm {
    layout: Layout,
    /// This RM's Paxos instance (its index).
    instance: u32,
    vote_yes: bool,
    /// Current transaction state.
    pub state: TxnState,
    /// Times the RM's decision timeout fired while still uncertain.
    pub blocked_rounds: u64,
}

impl Rm {
    fn new(layout: Layout, instance: u32, vote_yes: bool) -> Self {
        Rm {
            layout,
            instance,
            vote_yes,
            state: TxnState::Initial,
            blocked_rounds: 0,
        }
    }

    fn finish(&mut self, commit: bool) {
        let new = if commit {
            TxnState::Committed
        } else {
            TxnState::Aborted
        };
        if self.state.is_final() {
            assert_eq!(self.state, new, "Paxos Commit atomicity violated");
        }
        self.state = new;
    }

    /// Ballot-0 fast path: propose our own vote directly to the acceptors.
    fn cast_vote(&mut self, ctx: &mut Context<PcMsg>, out: &mut Vec<(NodeId, PcMsg)>) {
        let vote = if self.vote_yes {
            Vote::Prepared
        } else {
            Vote::Aborted
        };
        let instance = self.instance;
        for a in self.layout.acceptors() {
            post(
                ctx,
                out,
                a,
                PcMsg::Phase2a {
                    instance,
                    ballot: 0,
                    vote,
                },
            );
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<PcMsg>,
        _from: NodeId,
        msg: PcMsg,
        out: &mut Vec<(NodeId, PcMsg)>,
    ) {
        match msg {
            PcMsg::VoteRequest => {
                if self.state != TxnState::Initial {
                    return;
                }
                if self.vote_yes {
                    self.state = TxnState::Ready; // locks held from here on
                    ctx.set_timer(TIMEOUT_US, RM_BLOCK);
                } else {
                    self.state = TxnState::Aborted; // unilateral abort
                }
                self.cast_vote(ctx, out);
            }
            PcMsg::Outcome { commit } => {
                if self.state.is_final() {
                    self.finish(commit); // asserts consistency
                    return;
                }
                ctx.span_close(SPAN, TXN, 0);
                self.finish(commit);
            }
            _ => {}
        }
    }

    fn on_block_timer(&mut self, ctx: &mut Context<PcMsg>, out: &mut Vec<(NodeId, PcMsg)>) {
        if self.state == TxnState::Ready {
            self.blocked_rounds += 1;
            // Re-propose in case the first Phase2a was lost.
            self.cast_vote(ctx, out);
            ctx.set_timer(TIMEOUT_US, RM_BLOCK);
        }
    }
}

/// One Paxos Commit process: a node may co-locate an acceptor with a
/// coordinator (nodes `0..F+1`), be a plain acceptor, or host an RM.
pub struct PcProc {
    /// Acceptor role, if this node is in the acceptor set.
    pub acceptor: Option<Acceptor>,
    /// Coordinator role, if this node is one of the `F + 1` coordinators.
    pub coordinator: Option<Coordinator>,
    /// RM role, if this node hosts a resource manager.
    pub rm: Option<Rm>,
}

impl PcProc {
    /// Dispatches messages to roles, looping over co-located deliveries.
    fn drain(&mut self, ctx: &mut Context<PcMsg>, mut pending: Vec<(NodeId, PcMsg)>) {
        while let Some((from, msg)) = pending.pop() {
            let mut out = Vec::new();
            match &msg {
                PcMsg::VoteRequest => {
                    if let Some(rm) = self.rm.as_mut() {
                        rm.on_message(ctx, from, msg, &mut out);
                    }
                }
                PcMsg::Outcome { .. } => {
                    if let Some(rm) = self.rm.as_mut() {
                        rm.on_message(ctx, from, msg.clone(), &mut out);
                    }
                    if let Some(c) = self.coordinator.as_mut() {
                        c.on_message(ctx, from, msg, &mut out);
                    }
                }
                PcMsg::Phase2a { .. } | PcMsg::Phase1a { .. } => {
                    if let Some(a) = self.acceptor.as_mut() {
                        a.on_message(ctx, from, msg, &mut out);
                    }
                }
                PcMsg::Phase2b { .. } | PcMsg::Phase1b { .. } => {
                    if let Some(c) = self.coordinator.as_mut() {
                        c.on_message(ctx, from, msg, &mut out);
                    }
                }
            }
            pending.extend(out);
        }
    }
}

impl Node for PcProc {
    type Msg = PcMsg;

    fn on_start(&mut self, ctx: &mut Context<PcMsg>) {
        if let Some(c) = self.coordinator.as_mut() {
            c.on_start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<PcMsg>, from: NodeId, msg: PcMsg) {
        self.drain(ctx, vec![(from, msg)]);
    }

    fn on_timer(&mut self, ctx: &mut Context<PcMsg>, timer: Timer) {
        let mut out = Vec::new();
        match timer.kind {
            WATCHDOG => {
                if let Some(c) = self.coordinator.as_mut() {
                    c.on_watchdog(ctx, &mut out);
                }
            }
            RM_BLOCK => {
                if let Some(rm) = self.rm.as_mut() {
                    rm.on_block_timer(ctx, &mut out);
                }
            }
            _ => {}
        }
        self.drain(ctx, out);
    }
}

/// Builds a Paxos Commit instance tolerating `f` coordinator/acceptor
/// faults: `2f + 1` acceptors (coordinators co-located on the first
/// `f + 1`, node 0 leading) plus one RM per vote in `votes`.
pub fn build(votes: &[bool], f: usize, config: NetConfig, seed: u64) -> Sim<PcProc> {
    build_with_crash(votes, f, CrashPoint::None, config, seed)
}

/// Builds a Paxos Commit instance with the leader crashing at
/// `crash_point`, mirroring [`crate::two_phase::build_with_crash`]: the
/// leader freezes inside the window and is then crashed outright. At
/// `F = 0` the RMs block exactly like 2PC; at `F ≥ 1` a backup
/// coordinator drives the commit to completion.
pub fn build_with_crash(
    votes: &[bool],
    f: usize,
    crash_point: CrashPoint,
    config: NetConfig,
    seed: u64,
) -> Sim<PcProc> {
    let layout = Layout {
        f,
        n_rms: votes.len(),
    };
    let mut sim = Sim::new(config, seed);
    for a in 0..layout.n_acceptors() {
        let coordinator = (a < layout.n_coordinators()).then(|| {
            let mut c = Coordinator::new(layout, a);
            if a == 0 {
                c.crash_point = crash_point;
            }
            c
        });
        sim.add_node(PcProc {
            acceptor: Some(Acceptor::new(layout)),
            coordinator,
            rm: None,
        });
    }
    for (i, &v) in votes.iter().enumerate() {
        sim.add_node(PcProc {
            acceptor: None,
            coordinator: None,
            rm: Some(Rm::new(layout, i as u32, v)),
        });
    }
    if crash_point != CrashPoint::None {
        // The frozen leader also stops answering; its co-located acceptor
        // dies with it (the remaining 2F acceptors still hold a majority
        // only when F ≥ 1).
        sim.crash_at(NodeId(0), Time(10_000));
    }
    sim
}

/// Collects RM final states in instance order.
pub fn participant_states(sim: &Sim<PcProc>) -> Vec<TxnState> {
    sim.nodes()
        .filter_map(|(_, p)| p.rm.as_ref().map(|rm| rm.state))
        .collect()
}

/// Sums `blocked_rounds` across RMs.
pub fn blocked_rounds(sim: &Sim<PcProc>) -> u64 {
    sim.nodes()
        .filter_map(|(_, p)| p.rm.as_ref().map(|rm| rm.blocked_rounds))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_phase;

    #[test]
    fn unanimous_yes_commits_everywhere() {
        let mut sim = build(&[true, true, true], 1, NetConfig::lan(), 1);
        sim.run_until(Time::from_secs(1));
        assert!(participant_states(&sim)
            .iter()
            .all(|s| *s == TxnState::Committed));
    }

    #[test]
    fn single_no_aborts_everywhere() {
        let mut sim = build(&[true, false, true], 1, NetConfig::lan(), 2);
        sim.run_until(Time::from_secs(1));
        assert!(participant_states(&sim)
            .iter()
            .all(|s| *s == TxnState::Aborted));
    }

    #[test]
    fn f0_reduces_to_two_pc_message_pattern() {
        // F = 0: one acceptor co-located with the only coordinator. The
        // Phase2b deliveries are local, so the wire carries exactly 2PC's
        // three linear phases: n vote-requests, n votes (Phase2a), n
        // decisions.
        for n in [3usize, 6, 9] {
            let votes = vec![true; n];
            let mut sim = build(&votes, 0, NetConfig::lan(), 6);
            sim.run_until(Time::from_secs(1));
            assert!(participant_states(&sim)
                .iter()
                .all(|s| *s == TxnState::Committed));
            assert_eq!(sim.metrics().sent, 3 * n as u64, "3 linear phases");
            assert_eq!(sim.metrics().kind("vote-request"), n as u64);
            assert_eq!(sim.metrics().kind("phase2a"), n as u64);
            assert_eq!(sim.metrics().kind("outcome"), n as u64);
            assert_eq!(sim.metrics().kind("phase2b"), 0);
            assert_eq!(sim.metrics().kind("phase1a"), 0);
        }
    }

    #[test]
    fn f0_outcomes_match_two_pc_across_seeds() {
        // Seed-swept equivalence: the F = 0 degenerate case must produce
        // the same per-participant outcome as classic 2PC.
        let patterns: [&[bool]; 4] = [
            &[true, true, true],
            &[true, false, true],
            &[false, false, false],
            &[true, true, true, true, false],
        ];
        for seed in 0..8u64 {
            for votes in patterns {
                let mut pc = build(votes, 0, NetConfig::lan(), seed);
                pc.run_until(Time::from_secs(1));
                let mut tp = two_phase::build(votes, NetConfig::lan(), seed);
                tp.run_until(Time::from_secs(1));
                assert_eq!(
                    participant_states(&pc),
                    two_phase::participant_states(&tp),
                    "F=0 Paxos Commit must equal 2PC (seed {seed}, votes {votes:?})"
                );
            }
        }
    }

    #[test]
    fn f0_blocking_window_blocks_forever() {
        // The degenerate case inherits 2PC's fatal flaw: with F = 0 the
        // crashed leader takes the only acceptor with it and the RMs hold
        // their locks forever.
        let mut sim = build_with_crash(
            &[true, true, true],
            0,
            CrashPoint::AfterVotes,
            NetConfig::lan(),
            3,
        );
        sim.run_until(Time::from_secs(2));
        let states = participant_states(&sim);
        assert!(
            states.iter().all(|s| *s == TxnState::Ready),
            "participants must stay blocked: {states:?}"
        );
        assert!(blocked_rounds(&sim) > 0, "RMs noticed and found no exit");
    }

    #[test]
    fn f1_survives_the_same_crash_schedule() {
        // Identical crash schedule, F = 1: acceptors 1 and 2 still hold a
        // majority with the ballot-0 Prepared votes, so the backup
        // coordinator's takeover re-proposes them and commits.
        let mut sim = build_with_crash(
            &[true, true, true],
            1,
            CrashPoint::AfterVotes,
            NetConfig::lan(),
            3,
        );
        sim.run_until(Time::from_secs(2));
        let states = participant_states(&sim);
        assert!(
            states.iter().all(|s| *s == TxnState::Committed),
            "backup coordinator must complete the commit: {states:?}"
        );
    }

    #[test]
    fn takeover_free_aborts_an_unvoted_instance() {
        // An RM that dies before voting leaves its instance empty; the
        // backup's phase 1 finds no accepted value and is free to choose
        // Aborted — non-blocking where 2PC would hold locks.
        let mut sim = build(&[true, true, true], 1, NetConfig::lan(), 4);
        sim.crash_at(NodeId(3), Time(0)); // first RM, never votes
        sim.run_until(Time::from_secs(2));
        let states = participant_states(&sim);
        assert_eq!(states[0], TxnState::Initial, "crashed RM is frozen");
        assert!(
            states[1..].iter().all(|s| *s == TxnState::Aborted),
            "live RMs must be released by the free abort: {states:?}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = build_with_crash(
                &[true, true, true, true],
                1,
                CrashPoint::AfterVotes,
                NetConfig::lan(),
                seed,
            );
            sim.run_until(Time::from_secs(2));
            (participant_states(&sim), sim.metrics().sent)
        };
        assert_eq!(run(9), run(9));
    }
}
