//! Two-phase commit, with cooperative termination and the blocking window.

use std::collections::BTreeMap;

use simnet::{CncPhase, Context, NetConfig, Node, NodeId, Sim, Time, Timer};

use crate::msg::{CommitMsg, TxnState};

/// Span protocol label; instances are transaction ids.
const SPAN: &str = "2pc";

const DECISION_TIMEOUT: u64 = 1;
/// Participant timeout before starting cooperative termination (µs).
const TIMEOUT_US: u64 = 30_000;

/// Where the 2PC coordinator may crash (fault injection), mirroring
/// [`crate::three_phase::CrashPoint`]. 2PC has only one interesting spot:
/// inside the blocking window, after every vote arrived and before any
/// decision escapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Run to completion.
    None,
    /// Freeze after collecting all yes votes (before any decision escapes).
    AfterVotes,
}

/// The 2PC coordinator (node 0). Drives one transaction.
pub struct Coordinator {
    n_participants: usize,
    /// Coordinator's own decision state.
    pub state: TxnState,
    votes: BTreeMap<NodeId, bool>,
    txn: u64,
    /// Injected fault: freezing at the crash point models the
    /// crash-inside-the-window scenario without racing the simulator clock.
    pub crash_point: CrashPoint,
}

impl Coordinator {
    /// Creates the coordinator for `n_participants` cohorts.
    pub fn new(n_participants: usize) -> Self {
        Coordinator {
            n_participants,
            state: TxnState::Initial,
            votes: BTreeMap::new(),
            txn: 1,
            crash_point: CrashPoint::None,
        }
    }

    fn decide(&mut self, ctx: &mut Context<CommitMsg>, commit: bool) {
        self.state = if commit {
            TxnState::Committed
        } else {
            TxnState::Aborted
        };
        let txn = self.txn;
        ctx.phase(SPAN, txn, 0, CncPhase::Decision);
        ctx.span_close(SPAN, txn, 0);
        let msg = if commit {
            CommitMsg::GlobalCommit { txn }
        } else {
            CommitMsg::GlobalAbort { txn }
        };
        ctx.broadcast(msg);
    }
}

impl Node for Coordinator {
    type Msg = CommitMsg;

    fn on_start(&mut self, ctx: &mut Context<CommitMsg>) {
        // 2PC has no leader election (the coordinator is fixed); voting is
        // its value-discovery phase — learning whether commit is possible.
        ctx.span_open(SPAN, self.txn, 0);
        ctx.phase(SPAN, self.txn, 0, CncPhase::ValueDiscovery);
        ctx.broadcast(CommitMsg::VoteRequest { txn: self.txn });
        self.state = TxnState::Ready;
    }

    fn on_message(&mut self, ctx: &mut Context<CommitMsg>, from: NodeId, msg: CommitMsg) {
        match msg {
            CommitMsg::Vote { txn, yes } if txn == self.txn => {
                if self.state.is_final() {
                    return;
                }
                if !yes {
                    // One no is enough: abort immediately.
                    self.decide(ctx, false);
                    return;
                }
                self.votes.insert(from, yes);
                if self.votes.len() >= self.n_participants {
                    if self.crash_point == CrashPoint::AfterVotes {
                        // Freeze inside the blocking window.
                        return;
                    }
                    self.decide(ctx, true);
                }
            }
            CommitMsg::StateRequest { txn, .. } if txn == self.txn => {
                ctx.send(
                    from,
                    CommitMsg::StateReport {
                        txn,
                        state: self.state,
                    },
                );
            }
            _ => {}
        }
    }
}

/// A 2PC participant.
pub struct Participant {
    /// This participant's vote.
    vote_yes: bool,
    /// Current transaction state.
    pub state: TxnState,
    txn: u64,
    n_nodes_hint: usize,
    /// State reports gathered during cooperative termination.
    reports: BTreeMap<NodeId, TxnState>,
    /// How many times this participant entered cooperative termination and
    /// remained blocked (all peers `Ready`).
    pub blocked_rounds: u64,
}

impl Participant {
    /// Creates a participant with a fixed vote.
    pub fn new(vote_yes: bool) -> Self {
        Participant {
            vote_yes,
            state: TxnState::Initial,
            txn: 1,
            n_nodes_hint: 0,
            reports: BTreeMap::new(),
            blocked_rounds: 0,
        }
    }

    fn finish(&mut self, commit: bool) {
        let new = if commit {
            TxnState::Committed
        } else {
            TxnState::Aborted
        };
        if self.state.is_final() {
            assert_eq!(self.state, new, "2PC atomicity violated");
        }
        self.state = new;
    }

    /// Cooperative termination resolution rule.
    fn try_resolve(&mut self, ctx: &mut Context<CommitMsg>) {
        // Any final state seen → adopt it.
        if let Some(state) = self.reports.values().find(|s| s.is_final()) {
            let commit = *state == TxnState::Committed;
            self.finish(commit);
            // Help others.
            let txn = self.txn;
            ctx.broadcast(if commit {
                CommitMsg::GlobalCommit { txn }
            } else {
                CommitMsg::GlobalAbort { txn }
            });
            return;
        }
        // Any peer still Initial → the coordinator cannot have committed:
        // abort is safe.
        if self.reports.values().any(|s| *s == TxnState::Initial) {
            self.finish(false);
            let txn = self.txn;
            ctx.broadcast(CommitMsg::GlobalAbort { txn });
            return;
        }
        // Everyone Ready (the uncertainty window): must block. Re-arm and
        // hope the coordinator recovers.
        if self.reports.len() >= self.n_nodes_hint.saturating_sub(2) {
            self.blocked_rounds += 1;
            ctx.set_timer(TIMEOUT_US, DECISION_TIMEOUT);
        }
    }
}

impl Node for Participant {
    type Msg = CommitMsg;

    fn on_start(&mut self, _ctx: &mut Context<CommitMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<CommitMsg>, from: NodeId, msg: CommitMsg) {
        match msg {
            CommitMsg::VoteRequest { txn } => {
                self.txn = txn;
                self.n_nodes_hint = ctx.n_nodes();
                if self.state != TxnState::Initial {
                    return;
                }
                if self.vote_yes {
                    self.state = TxnState::Ready; // locks held from here on
                    ctx.send(from, CommitMsg::Vote { txn, yes: true });
                    // Await the decision; if it never comes, run the
                    // termination protocol.
                    ctx.set_timer(TIMEOUT_US, DECISION_TIMEOUT);
                } else {
                    self.state = TxnState::Aborted; // unilateral abort
                    ctx.send(from, CommitMsg::Vote { txn, yes: false });
                }
            }
            CommitMsg::GlobalCommit { txn } if txn == self.txn => {
                ctx.span_close(SPAN, txn, 0);
                self.finish(true);
            }
            CommitMsg::GlobalAbort { txn } if txn == self.txn => {
                ctx.span_close(SPAN, txn, 0);
                self.finish(false);
            }
            CommitMsg::StateRequest { txn, .. } if txn == self.txn => {
                ctx.send(
                    from,
                    CommitMsg::StateReport {
                        txn,
                        state: self.state,
                    },
                );
            }
            CommitMsg::StateReport { txn, state } if txn == self.txn
                && self.state == TxnState::Ready => {
                    self.reports.insert(from, state);
                    self.try_resolve(ctx);
                }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<CommitMsg>, timer: Timer) {
        if timer.kind == DECISION_TIMEOUT && self.state == TxnState::Ready {
            // Cooperative termination: ask everyone (including the maybe-
            // recovered coordinator) for their state.
            self.reports.clear();
            ctx.broadcast(CommitMsg::StateRequest {
                txn: self.txn,
                round: 0,
            });
        }
    }
}

simnet::node_enum! {
    /// A 2PC process.
    pub enum TwoPcProc: CommitMsg {
        /// The coordinator (node 0).
        Coordinator(Coordinator),
        /// A voting participant.
        Participant(Participant),
    }
}

/// Builds a 2PC instance: coordinator (node 0) plus one participant per
/// vote in `votes`.
pub fn build(votes: &[bool], config: NetConfig, seed: u64) -> Sim<TwoPcProc> {
    build_with_crash(votes, CrashPoint::None, config, seed)
}

/// Builds a 2PC instance with the coordinator crashing at `crash_point`,
/// mirroring [`crate::three_phase::build`]. With
/// [`CrashPoint::AfterVotes`] the coordinator freezes inside the blocking
/// window and is then crashed outright so it cannot answer state requests —
/// the canonical 2PC blocking scenario.
pub fn build_with_crash(
    votes: &[bool],
    crash_point: CrashPoint,
    config: NetConfig,
    seed: u64,
) -> Sim<TwoPcProc> {
    let mut sim = Sim::new(config, seed);
    let mut coord = Coordinator::new(votes.len());
    coord.crash_point = crash_point;
    sim.add_node(coord);
    for &v in votes {
        sim.add_node(Participant::new(v));
    }
    if crash_point != CrashPoint::None {
        // The frozen coordinator also stops answering state requests.
        sim.crash_at(NodeId(0), Time(10_000));
    }
    sim
}

/// Collects participants' final states.
pub fn participant_states(sim: &Sim<TwoPcProc>) -> Vec<TxnState> {
    sim.nodes()
        .filter_map(|(_, p)| match p {
            TwoPcProc::Participant(p) => Some(p.state),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Time;

    #[test]
    fn unanimous_yes_commits_everywhere() {
        let mut sim = build(&[true, true, true], NetConfig::lan(), 1);
        sim.run_until(Time::from_secs(1));
        assert!(participant_states(&sim)
            .iter()
            .all(|s| *s == TxnState::Committed));
        // Phase structure: 3 vote-requests, 3 votes, 3 commits.
        assert_eq!(sim.metrics().kind("vote-request"), 3);
        assert_eq!(sim.metrics().kind("vote"), 3);
        assert_eq!(sim.metrics().kind("global-commit"), 3);
    }

    #[test]
    fn single_no_aborts_everywhere() {
        let mut sim = build(&[true, false, true], NetConfig::lan(), 2);
        sim.run_until(Time::from_secs(1));
        assert!(participant_states(&sim)
            .iter()
            .all(|s| *s == TxnState::Aborted));
    }

    #[test]
    fn blocking_window_blocks_forever() {
        // Coordinator freezes after collecting all yes votes and before any
        // decision escapes: cooperative termination sees all-Ready and must
        // block — 2PC's fundamental weakness.
        let mut sim = build_with_crash(
            &[true, true, true],
            CrashPoint::AfterVotes,
            NetConfig::lan(),
            3,
        );
        sim.run_until(Time::from_secs(2));
        let states = participant_states(&sim);
        assert!(
            states.iter().all(|s| *s == TxnState::Ready),
            "participants must stay blocked: {states:?}"
        );
        let blocked: u64 = sim
            .nodes()
            .filter_map(|(_, p)| match p {
                TwoPcProc::Participant(p) => Some(p.blocked_rounds),
                _ => None,
            })
            .sum();
        assert!(blocked > 0, "termination protocol ran and found no exit");
    }

    #[test]
    fn cooperative_termination_resolves_partial_decision() {
        // Coordinator sends GlobalCommit to exactly one participant then
        // crashes: the others learn the outcome from that peer.
        let mut sim = build(&[true, true, true], NetConfig::lan(), 4);
        // Let the vote-requests and votes travel normally, then make the
        // decision broadcast crawl on two of the three links so only one
        // participant hears it before the coordinator dies.
        use simnet::DelayModel;
        sim.run_until(Time(100));
        sim.set_link_delay(NodeId(0), NodeId(2), DelayModel::Fixed(10_000_000));
        sim.set_link_delay(NodeId(0), NodeId(3), DelayModel::Fixed(10_000_000));
        sim.crash_at(NodeId(0), Time(5_000));
        sim.run_until(Time::from_secs(2));
        let states = participant_states(&sim);
        assert!(
            states.iter().all(|s| *s == TxnState::Committed),
            "peers should learn the decision cooperatively: {states:?}"
        );
    }

    #[test]
    fn participant_crash_before_voting_aborts() {
        // A participant that never votes ⇒ coordinator never gets all
        // votes; other participants' termination protocol sees an Initial
        // peer... but here the crashed node can't answer. The coordinator
        // simply never decides commit, and peers stay Ready (conservative).
        // To keep the transaction live, real systems put a timeout at the
        // coordinator: model it by the coordinator aborting on timeout.
        let mut sim = build(&[true, true, true], NetConfig::lan(), 5);
        sim.crash_at(NodeId(2), Time(0));
        sim.run_until(Time::from_secs(1));
        let states = participant_states(&sim);
        // The crashed one is stuck Initial; live ones hold Ready (blocked)
        // since nobody can rule out a commit.
        assert_eq!(states[1], TxnState::Initial);
        for s in [states[0], states[2]] {
            assert!(
                s == TxnState::Ready || s == TxnState::Aborted,
                "unexpected state {s:?}"
            );
        }
    }

    #[test]
    fn message_counts_are_linear() {
        for n in [3usize, 6, 9] {
            let votes = vec![true; n];
            let mut sim = build(&votes, NetConfig::lan(), 6);
            sim.run_until(Time::from_secs(1));
            assert_eq!(sim.metrics().sent, 3 * n as u64, "3 linear phases");
        }
    }
}
