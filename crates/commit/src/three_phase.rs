//! Three-phase commit: non-blocking atomic commitment.
//!
//! 3PC inserts a *pre-commit* phase between voting and committing: the
//! commit decision is replicated to the cohorts **before** anyone commits —
//! the same "make the decision fault-tolerant" move Paxos makes in the C&C
//! framework. If the coordinator fails, the cohorts elect a successor and
//! run the termination protocol:
//!
//! * any cohort already **committed/aborted** → adopt that outcome;
//! * any cohort **pre-committed** → the decision was commit: finish it;
//! * otherwise → abort is safe (nobody can have committed).

use std::collections::BTreeMap;

use simnet::{CncPhase, Context, NetConfig, Node, NodeId, Sim, Time, Timer};

use crate::msg::{CommitMsg, TxnState};

/// Span protocol label; instances are transaction ids.
const SPAN: &str = "3pc";

const DECISION_TIMEOUT: u64 = 1;
const TIMEOUT_US: u64 = 30_000;

/// Which stage the 3PC coordinator may crash at (fault injection).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Run to completion.
    None,
    /// Freeze after collecting all yes votes (before pre-commit escapes).
    AfterVotes,
    /// Freeze after broadcasting pre-commit (before global-commit).
    AfterPreCommit,
}

/// The 3PC coordinator (node 0).
pub struct Coordinator {
    n_participants: usize,
    /// Coordinator's decision state.
    pub state: TxnState,
    votes: BTreeMap<NodeId, bool>,
    precommit_acks: BTreeMap<NodeId, ()>,
    txn: u64,
    /// Injected fault.
    pub crash_point: CrashPoint,
}

impl Coordinator {
    /// Creates the coordinator.
    pub fn new(n_participants: usize) -> Self {
        Coordinator {
            n_participants,
            state: TxnState::Initial,
            votes: BTreeMap::new(),
            precommit_acks: BTreeMap::new(),
            txn: 1,
            crash_point: CrashPoint::None,
        }
    }
}

impl Node for Coordinator {
    type Msg = CommitMsg;

    fn on_start(&mut self, ctx: &mut Context<CommitMsg>) {
        ctx.span_open(SPAN, self.txn, 0);
        ctx.phase(SPAN, self.txn, 0, CncPhase::ValueDiscovery);
        ctx.broadcast(CommitMsg::VoteRequest { txn: self.txn });
        self.state = TxnState::Ready;
    }

    fn on_message(&mut self, ctx: &mut Context<CommitMsg>, from: NodeId, msg: CommitMsg) {
        match msg {
            CommitMsg::Vote { txn, yes } if txn == self.txn => {
                if self.state != TxnState::Ready {
                    return;
                }
                if !yes {
                    self.state = TxnState::Aborted;
                    ctx.phase(SPAN, txn, 0, CncPhase::Decision);
                    ctx.span_close(SPAN, txn, 0);
                    ctx.broadcast(CommitMsg::GlobalAbort { txn });
                    return;
                }
                self.votes.insert(from, yes);
                if self.votes.len() >= self.n_participants {
                    if self.crash_point == CrashPoint::AfterVotes {
                        return;
                    }
                    self.state = TxnState::PreCommitted;
                    // Pre-commit replicates the decision before anyone acts
                    // on it — 3PC's fault-tolerant agreement phase.
                    ctx.phase(SPAN, txn, 0, CncPhase::Agreement);
                    ctx.broadcast(CommitMsg::PreCommit { txn });
                }
            }
            CommitMsg::PreCommitAck { txn } if txn == self.txn => {
                if self.state != TxnState::PreCommitted {
                    return;
                }
                self.precommit_acks.insert(from, ());
                if self.precommit_acks.len() >= self.n_participants {
                    if self.crash_point == CrashPoint::AfterPreCommit {
                        return;
                    }
                    self.state = TxnState::Committed;
                    ctx.phase(SPAN, txn, 0, CncPhase::Decision);
                    ctx.span_close(SPAN, txn, 0);
                    ctx.broadcast(CommitMsg::GlobalCommit { txn });
                }
            }
            CommitMsg::StateRequest { txn, .. } if txn == self.txn => {
                ctx.send(
                    from,
                    CommitMsg::StateReport {
                        txn,
                        state: self.state,
                    },
                );
            }
            _ => {}
        }
    }
}

/// A 3PC participant with termination-protocol recovery.
pub struct Participant {
    vote_yes: bool,
    /// Current state.
    pub state: TxnState,
    txn: u64,
    /// Reports gathered while acting as recovery coordinator.
    reports: BTreeMap<NodeId, TxnState>,
    recovering: bool,
    /// Times this participant led a recovery round.
    pub recoveries_led: u64,
}

impl Participant {
    /// Creates a participant with a fixed vote.
    pub fn new(vote_yes: bool) -> Self {
        Participant {
            vote_yes,
            state: TxnState::Initial,
            txn: 1,
            reports: BTreeMap::new(),
            recovering: false,
            recoveries_led: 0,
        }
    }

    fn finish(&mut self, commit: bool) {
        let new = if commit {
            TxnState::Committed
        } else {
            TxnState::Aborted
        };
        if self.state.is_final() {
            assert_eq!(self.state, new, "3PC atomicity violated");
        }
        self.state = new;
    }

    fn arm_watchdog(&mut self, ctx: &mut Context<CommitMsg>) {
        // Staggered by id: the lowest live cohort recovers first.
        let delay = TIMEOUT_US * u64::from(ctx.id().0);
        ctx.set_timer(delay, DECISION_TIMEOUT);
    }

    /// Termination protocol decision rule, applied once all live cohorts
    /// reported (we approximate "all live" as "everyone who answered before
    /// another timeout period"; with crash faults only this is safe).
    fn resolve(&mut self, ctx: &mut Context<CommitMsg>) {
        let txn = self.txn;
        ctx.phase(SPAN, txn, 1, CncPhase::Decision);
        ctx.span_close(SPAN, txn, 1);
        if let Some(s) = self.reports.values().find(|s| s.is_final()) {
            let commit = *s == TxnState::Committed;
            self.finish(commit);
            ctx.broadcast(if commit {
                CommitMsg::GlobalCommit { txn }
            } else {
                CommitMsg::GlobalAbort { txn }
            });
        } else if self
            .reports
            .values()
            .chain(std::iter::once(&self.state))
            .any(|s| *s == TxnState::PreCommitted)
        {
            // Someone pre-committed ⇒ every cohort voted yes and the
            // decision was commit.
            self.finish(true);
            ctx.broadcast(CommitMsg::GlobalCommit { txn });
        } else {
            // Nobody past Ready: abort is safe.
            self.finish(false);
            ctx.broadcast(CommitMsg::GlobalAbort { txn });
        }
        self.recovering = false;
    }
}

impl Node for Participant {
    type Msg = CommitMsg;

    fn on_start(&mut self, _ctx: &mut Context<CommitMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<CommitMsg>, from: NodeId, msg: CommitMsg) {
        match msg {
            CommitMsg::VoteRequest { txn } => {
                self.txn = txn;
                if self.state != TxnState::Initial {
                    return;
                }
                if self.vote_yes {
                    self.state = TxnState::Ready;
                    ctx.send(from, CommitMsg::Vote { txn, yes: true });
                    self.arm_watchdog(ctx);
                } else {
                    self.state = TxnState::Aborted;
                    ctx.send(from, CommitMsg::Vote { txn, yes: false });
                }
            }
            CommitMsg::PreCommit { txn } if txn == self.txn
                && self.state == TxnState::Ready => {
                    self.state = TxnState::PreCommitted;
                    ctx.send(from, CommitMsg::PreCommitAck { txn });
                    self.arm_watchdog(ctx);
                }
            CommitMsg::GlobalCommit { txn } if txn == self.txn => {
                ctx.span_close(SPAN, txn, 0);
                self.finish(true);
            }
            CommitMsg::GlobalAbort { txn } if txn == self.txn => {
                ctx.span_close(SPAN, txn, 0);
                self.finish(false);
            }
            CommitMsg::StateRequest { txn, .. } if txn == self.txn => {
                ctx.send(
                    from,
                    CommitMsg::StateReport {
                        txn,
                        state: self.state,
                    },
                );
            }
            CommitMsg::StateReport { txn, state } if txn == self.txn
                && self.recovering => {
                    self.reports.insert(from, state);
                    // Resolve as soon as every *other participant* that is
                    // still alive could have answered; with n participants
                    // we expect up to n-1 reports, but any single
                    // PreCommitted/final report is already decisive. For
                    // all-Ready we wait for everyone we can hear (handled
                    // in the timer re-check).
                    let decisive = state.is_final() || state == TxnState::PreCommitted;
                    if decisive || self.reports.len() >= ctx.n_nodes().saturating_sub(2) {
                        self.resolve(ctx);
                    }
                }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<CommitMsg>, timer: Timer) {
        if timer.kind == DECISION_TIMEOUT && !self.state.is_final() {
            if self.recovering {
                // Nobody decisive answered in time: resolve with what we
                // have (crash-only model makes this safe).
                self.resolve(ctx);
                return;
            }
            // Become the recovery coordinator — 3PC's only leader-election
            // moment: the lowest live cohort takes over the decision.
            ctx.phase(SPAN, self.txn, 1, CncPhase::LeaderElection);
            self.recovering = true;
            self.recoveries_led += 1;
            self.reports.clear();
            ctx.broadcast(CommitMsg::StateRequest {
                txn: self.txn,
                round: 1,
            });
            ctx.set_timer(TIMEOUT_US, DECISION_TIMEOUT);
        }
    }
}

simnet::node_enum! {
    /// A 3PC process.
    pub enum ThreePcProc: CommitMsg {
        /// The coordinator (node 0).
        Coordinator(Coordinator),
        /// A voting participant.
        Participant(Participant),
    }
}

/// Builds a 3PC instance with the coordinator crashing at `crash_point`.
pub fn build(
    votes: &[bool],
    crash_point: CrashPoint,
    config: NetConfig,
    seed: u64,
) -> Sim<ThreePcProc> {
    let mut sim = Sim::new(config, seed);
    let mut coord = Coordinator::new(votes.len());
    coord.crash_point = crash_point;
    sim.add_node(coord);
    for &v in votes {
        sim.add_node(Participant::new(v));
    }
    if crash_point != CrashPoint::None {
        // The frozen coordinator also stops answering state requests.
        sim.crash_at(NodeId(0), Time(10_000));
    }
    sim
}

/// Collects participants' final states.
pub fn participant_states(sim: &Sim<ThreePcProc>) -> Vec<TxnState> {
    sim.nodes()
        .filter_map(|(_, p)| match p {
            ThreePcProc::Participant(p) => Some(p.state),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_yes_commits_in_three_phases() {
        let mut sim = build(&[true, true, true], CrashPoint::None, NetConfig::lan(), 1);
        sim.run_until(Time::from_secs(1));
        assert!(participant_states(&sim)
            .iter()
            .all(|s| *s == TxnState::Committed));
        let m = sim.metrics();
        assert_eq!(m.kind("vote-request"), 3);
        assert_eq!(m.kind("pre-commit"), 3);
        assert_eq!(m.kind("global-commit"), 3);
    }

    #[test]
    fn any_no_aborts() {
        let mut sim = build(&[true, false, true], CrashPoint::None, NetConfig::lan(), 2);
        sim.run_until(Time::from_secs(1));
        assert!(participant_states(&sim)
            .iter()
            .all(|s| *s == TxnState::Aborted));
        assert_eq!(sim.metrics().kind("pre-commit"), 0);
    }

    #[test]
    fn coordinator_crash_after_votes_aborts_not_blocks() {
        // Where 2PC blocks forever, 3PC's termination protocol aborts.
        let mut sim = build(&[true, true, true], CrashPoint::AfterVotes, NetConfig::lan(), 3);
        sim.run_until(Time::from_secs(3));
        let states = participant_states(&sim);
        assert!(
            states.iter().all(|s| *s == TxnState::Aborted),
            "3PC must terminate with abort: {states:?}"
        );
    }

    #[test]
    fn coordinator_crash_after_precommit_commits() {
        // Pre-commit reached the cohorts: the decision is recoverable and
        // must be commit.
        let mut sim = build(
            &[true, true, true],
            CrashPoint::AfterPreCommit,
            NetConfig::lan(),
            4,
        );
        sim.run_until(Time::from_secs(3));
        let states = participant_states(&sim);
        assert!(
            states.iter().all(|s| *s == TxnState::Committed),
            "pre-committed transaction must commit: {states:?}"
        );
    }

    #[test]
    fn all_outcomes_agree_under_random_crash_times() {
        // Sweep the coordinator crash over the whole protocol window; in
        // every case all surviving participants agree.
        for crash_ms in [1u64, 2, 3, 5, 8, 13, 21] {
            let mut sim = build(&[true, true, true], CrashPoint::None, NetConfig::lan(), 5);
            sim.crash_at(NodeId(0), Time::from_millis(crash_ms));
            sim.run_until(Time::from_secs(3));
            let states = participant_states(&sim);
            let finals: std::collections::BTreeSet<_> = states
                .iter()
                .filter(|s| s.is_final())
                .copied()
                .collect();
            assert!(
                finals.len() <= 1,
                "crash at {crash_ms}ms produced mixed outcomes: {states:?}"
            );
            assert!(
                states.iter().all(|s| s.is_final()),
                "crash at {crash_ms}ms left someone blocked: {states:?}"
            );
        }
    }

    #[test]
    fn recovery_is_led_by_lowest_cohort() {
        let mut sim = build(&[true, true, true], CrashPoint::AfterVotes, NetConfig::lan(), 6);
        sim.run_until(Time::from_secs(3));
        let leaders: Vec<u64> = sim
            .nodes()
            .filter_map(|(_, p)| match p {
                ThreePcProc::Participant(p) => Some(p.recoveries_led),
                _ => None,
            })
            .collect();
        assert!(leaders[0] >= 1, "node 1 (lowest) should lead: {leaders:?}");
    }
}
