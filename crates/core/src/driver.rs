//! The unified cluster-driver API.
//!
//! Every steady-state SMR protocol in this workspace (Multi-Paxos, Raft,
//! PBFT) can be built from a seed, stepped through simulated time, subjected
//! to faults, and harvested for evidence — and until now each consumer
//! (the nemesis harness, the bench experiments, ad-hoc tests) hand-rolled
//! that loop per protocol. [`ClusterDriver`] is the one trait that captures
//! it: construct from a [`DriverConfig`], `run`/`run_until` to advance, the
//! fault hooks to perturb, and the harvest methods to extract the decided
//! log, state digests, and client histories that the safety checkers
//! consume. Adding a protocol to bench *and* nemesis is now one impl.
//!
//! The same module defines [`BatchConfig`], the batching/pipelining knob the
//! three protocols share. `BatchConfig::unbatched()` reproduces the
//! pre-batching behaviour exactly (one command per slot, proposed
//! immediately, unbounded pipeline), so it is the default everywhere.

use std::collections::BTreeSet;

use crate::history::ClientRecord;
use crate::workload::{KvMix, LatencyRecorder, WorkloadMode};
use simnet::{CausalSpan, Metrics, NetConfig, NodeId, RunOutcome, Time};

/// Batching and pipelining configuration shared by the SMR protocols.
///
/// * Multi-Paxos: the leader accumulates up to `max_batch` commands per log
///   slot and keeps at most `pipeline_window` undecided slots in flight.
/// * Raft: the leader appends immediately but defers the replication
///   fan-out until `max_batch` entries are unflushed (or `max_delay`
///   elapses), grouping them into one `AppendEntries` wave.
/// * PBFT: the primary assigns up to `max_batch` requests to one sequence
///   number and keeps at most `pipeline_window` unexecuted sequences open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commands per batch (per slot / sequence number / flush wave).
    pub max_batch: usize,
    /// How long (simulated µs) to hold an underfull batch open waiting for
    /// more commands. `0` means flush immediately.
    pub max_delay: u64,
    /// Maximum concurrent in-flight (undecided / unexecuted) slots.
    pub pipeline_window: usize,
}

impl BatchConfig {
    /// The pre-batching behaviour: one command per slot, proposed the moment
    /// it arrives, with no artificial bound on concurrent slots. Runs under
    /// this config are message-for-message identical to the code before the
    /// batching knob existed.
    pub const fn unbatched() -> Self {
        BatchConfig {
            max_batch: 1,
            max_delay: 0,
            pipeline_window: usize::MAX,
        }
    }

    /// A batched/pipelined configuration.
    pub const fn new(max_batch: usize, max_delay: u64, pipeline_window: usize) -> Self {
        BatchConfig {
            max_batch,
            max_delay,
            pipeline_window,
        }
    }

    /// Whether this config is behaviourally the unbatched default.
    pub fn is_unbatched(&self) -> bool {
        self.max_batch <= 1 && self.max_delay == 0
    }

    /// Short label for tables and JSON keys, e.g. `"unbatched"` or
    /// `"b8/w16/d200"`.
    pub fn label(&self) -> String {
        if *self == BatchConfig::unbatched() {
            "unbatched".to_string()
        } else {
            let w = if self.pipeline_window == usize::MAX {
                "inf".to_string()
            } else {
                self.pipeline_window.to_string()
            };
            format!("b{}/w{}/d{}", self.max_batch, w, self.max_delay)
        }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::unbatched()
    }
}

/// Everything needed to construct a cluster deterministically: a run is a
/// pure function of this config. The client workload (`n_clients` closed-loop
/// clients issuing `cmds_per_client` commands each) doubles as the submission
/// interface — commands enter the system only through it, which is what keeps
/// replay exact.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Number of replica nodes (ids `0..n_replicas`).
    pub n_replicas: usize,
    /// Number of client nodes (ids `n_replicas..`).
    pub n_clients: usize,
    /// Commands each client submits.
    pub cmds_per_client: usize,
    /// Batching/pipelining knob.
    pub batch: BatchConfig,
    /// Client pacing: closed loop (default) or open loop.
    pub mode: WorkloadMode,
    /// Key-value operation mix (op fractions, key count, value size).
    pub mix: KvMix,
    /// Network profile.
    pub net: NetConfig,
    /// Simulation seed.
    pub seed: u64,
}

impl DriverConfig {
    /// A LAN-profile, unbatched, closed-loop config.
    pub fn new(n_replicas: usize, n_clients: usize, cmds_per_client: usize, seed: u64) -> Self {
        DriverConfig {
            n_replicas,
            n_clients,
            cmds_per_client,
            batch: BatchConfig::unbatched(),
            mode: WorkloadMode::Closed,
            mix: KvMix::default(),
            net: NetConfig::lan(),
            seed,
        }
    }

    /// Replaces the key-value operation mix.
    pub fn with_mix(mut self, mix: KvMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the batch config.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Replaces the client pacing mode.
    pub fn with_mode(mut self, mode: WorkloadMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the network profile.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }
}

/// A decided log entry as observed on one node, rendered protocol-agnostic
/// for the history checkers. Two entries agree iff their `op` strings are
/// equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecidedEntry {
    /// Node the entry was harvested from.
    pub node: u32,
    /// Absolute log index (slot / sequence number). Protocols that batch
    /// several commands per slot emit one entry per command at synthetic
    /// sub-indices, consistently across replicas.
    pub index: u64,
    /// Canonical rendering of the decided operation.
    pub op: String,
    /// `(client, seq)` of the originating request, if the op carries one.
    pub origin: Option<(u32, u64)>,
}

/// Byzantine fault windows a driver may support. Drivers for crash-fault
/// protocols return `false` from
/// [`ClusterDriver::open_byzantine_window`] — the nemesis planner never
/// schedules these against them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzantineWindow {
    /// The node stops sending anything (fail-silent).
    Mute,
    /// The node sends conflicting messages to different destinations.
    Equivocate,
}

/// A protocol cluster that can be driven, faulted, and harvested without
/// knowing which protocol it is.
///
/// Implementations wrap a concrete `Sim` plus its replica/client node set;
/// all methods are deterministic given the construction config.
pub trait ClusterDriver {
    /// Constructs the cluster from a [`DriverConfig`] — the construct-from-
    /// seed half of the API. Not dyn-dispatchable; generic call sites (the
    /// bench sweep, the nemesis targets) construct concretely and then erase
    /// to `dyn ClusterDriver`.
    fn from_config(cfg: &DriverConfig) -> Self
    where
        Self: Sized;

    /// Stable protocol name (e.g. `"multi-paxos"`).
    fn protocol(&self) -> &'static str;

    /// Number of replica nodes (clients have higher ids).
    fn n_replicas(&self) -> usize;

    /// Current simulated time.
    fn now(&self) -> Time;

    /// Advances the simulation to (at least) `at`, pushing through node
    /// stops. Returns the last outcome observed.
    fn run_until(&mut self, at: Time) -> RunOutcome;

    /// Runs until every client finished or `horizon` passes; returns whether
    /// all clients completed.
    fn run(&mut self, horizon: Time) -> bool;

    /// Whether every client completed its workload.
    fn all_done(&self) -> bool;

    /// Total commands completed across clients.
    fn completed_ops(&self) -> usize;

    /// Every decided log entry on every replica, for the agreement /
    /// validity / integrity checkers.
    fn decided_log(&self) -> Vec<DecidedEntry>;

    /// `(node, applied_prefix_len, state digest)` per replica.
    fn state_digests(&self) -> Vec<(u32, u64, u64)>;

    /// The merged invoke/response history across all clients.
    fn history(&self) -> Vec<ClientRecord>;

    /// The set of `(client, seq)` operations clients actually issued.
    fn issued(&self) -> BTreeSet<(u32, u64)> {
        self.history().iter().map(|r| (r.client, r.seq)).collect()
    }

    /// Aggregated request → reply latencies across clients.
    fn latencies(&self) -> LatencyRecorder;

    /// Network/timer/span metrics of the underlying simulation.
    fn metrics(&self) -> &Metrics;

    // ---- tracing hooks ---------------------------------------------------

    /// Enables causal tracing on the underlying simulation. `site` tags the
    /// span ids this cluster mints, so traces from several clusters (e.g.
    /// the shards of a store) merge without id collisions. Off by default;
    /// drivers without tracing support may ignore the call.
    fn enable_tracing(&mut self, site: u32) {
        let _ = site;
    }

    /// Every causal span recorded since tracing was enabled (empty when
    /// tracing is off or unsupported).
    fn causal_spans(&self) -> Vec<CausalSpan> {
        Vec::new()
    }

    /// Consensus-instance spans currently open (a `span_open` without a
    /// matching `span_close`). Zero after a quiesced fault-free run on every
    /// protocol — the span-balance invariant the smoke tests assert.
    fn open_span_instances(&self) -> usize {
        0
    }

    // ---- fault hooks -----------------------------------------------------

    /// Schedules a crash of `node` at time `at`.
    fn crash_at(&mut self, node: NodeId, at: Time);

    /// Schedules a restart of `node` at time `at`.
    fn restart_at(&mut self, node: NodeId, at: Time);

    /// Schedules a partition into `groups` at time `at`.
    fn partition_at(&mut self, at: Time, groups: Vec<Vec<NodeId>>);

    /// Schedules a heal of all partitions at time `at`.
    fn heal_at(&mut self, at: Time);

    /// Sets the global message drop probability, effective immediately.
    fn set_drop_prob(&mut self, p: f64);

    /// Installs a Byzantine outbound filter on `node`. Returns whether the
    /// protocol supports (and installed) the window; crash-fault drivers
    /// return `false`.
    fn open_byzantine_window(&mut self, kind: ByzantineWindow, node: NodeId) -> bool {
        let _ = (kind, node);
        false
    }

    /// Removes any Byzantine filter from `node`.
    fn close_byzantine_window(&mut self, node: NodeId) {
        let _ = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbatched_is_the_default_and_labelled() {
        assert_eq!(BatchConfig::default(), BatchConfig::unbatched());
        assert!(BatchConfig::unbatched().is_unbatched());
        assert_eq!(BatchConfig::unbatched().label(), "unbatched");
        let b = BatchConfig::new(8, 200, 16);
        assert!(!b.is_unbatched());
        assert_eq!(b.label(), "b8/w16/d200");
        assert_eq!(BatchConfig::new(4, 0, usize::MAX).label(), "b4/winf/d0");
    }

    #[test]
    fn driver_config_builders() {
        let cfg = DriverConfig::new(5, 2, 10, 42)
            .with_batch(BatchConfig::new(4, 100, 8))
            .with_net(NetConfig::synchronous());
        assert_eq!(cfg.n_replicas, 5);
        assert_eq!(cfg.batch.max_batch, 4);
        assert_eq!(cfg.net.drop_prob, 0.0);
        assert_eq!(cfg.seed, 42);
    }
}
