//! Quorum systems and their safety conditions.
//!
//! The tutorial's safety argument for Paxos is quorum intersection: *any two
//! quorums of acceptors must share at least one acceptor*, so a new leader
//! learns of any value chosen by an old leader. Flexible Paxos relaxes this:
//! only **leader-election quorums and replication quorums** must intersect —
//! majorities for both are "too conservative". Byzantine protocols need
//! quorums intersecting in at least `f+1` nodes (so the overlap contains a
//! *correct* node), giving PBFT's `2f+1`-of-`3f+1`. Hybrid models (UpRight,
//! SeeMoRe) tolerate `m` malicious and `c` crash faults with network
//! `3m+2c+1`, quorum `2m+c+1`, intersection `m+1`.
//!
//! [`QuorumSpec`] captures all of these; the checkers here are used directly
//! by the protocol crates and exhaustively validated by property tests.

use std::collections::BTreeSet;

use simnet::NodeId;

/// Which protocol phase a quorum is for. Flexible Paxos decouples the two.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1 / prepare / view-change / leader election.
    Election,
    /// Phase 2 / accept / replication / commit.
    Agreement,
}

/// A quorum system over nodes `0..n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuorumSpec {
    /// Simple majorities for both phases (classic Paxos, Raft).
    Majority {
        /// Cluster size.
        n: usize,
    },
    /// Byzantine quorums of size `n − f`; safe when `n ≥ 3f + 1`, where any
    /// two quorums intersect in at least `f + 1` nodes (PBFT, HotStuff,
    /// Zyzzyva).
    Byzantine {
        /// Cluster size.
        n: usize,
        /// Maximum Byzantine faults tolerated.
        f: usize,
    },
    /// Flexible Paxos: explicit election quorum size `q1` and replication
    /// quorum size `q2`; safe iff `q1 + q2 > n`.
    Flexible {
        /// Cluster size.
        n: usize,
        /// Election (phase-1) quorum size.
        q1: usize,
        /// Replication (phase-2) quorum size.
        q2: usize,
    },
    /// Grid quorums (a Flexible Paxos instance): nodes arranged in
    /// `rows × cols`; an election quorum is any full **row**, a replication
    /// quorum any full **column**; every row meets every column in exactly
    /// one node.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Hybrid fault model with `m` malicious and `c` crash faults:
    /// network `3m + 2c + 1`, quorums `2m + c + 1`, intersection `m + 1`
    /// (UpRight, SeeMoRe mode 1).
    Hybrid {
        /// Maximum malicious faults.
        m: usize,
        /// Maximum crash faults.
        c: usize,
    },
}

impl QuorumSpec {
    /// Total number of nodes in the system.
    pub fn n(&self) -> usize {
        match *self {
            QuorumSpec::Majority { n } => n,
            QuorumSpec::Byzantine { n, .. } => n,
            QuorumSpec::Flexible { n, .. } => n,
            QuorumSpec::Grid { rows, cols } => rows * cols,
            QuorumSpec::Hybrid { m, c } => 3 * m + 2 * c + 1,
        }
    }

    /// Size of a quorum for the given phase (for [`QuorumSpec::Grid`] this
    /// is the size of a row/column; membership is structural, so prefer
    /// [`QuorumSpec::is_quorum`]).
    pub fn quorum_size(&self, phase: Phase) -> usize {
        match *self {
            QuorumSpec::Majority { n } => n / 2 + 1,
            QuorumSpec::Byzantine { n, f } => n - f,
            QuorumSpec::Flexible { q1, q2, .. } => match phase {
                Phase::Election => q1,
                Phase::Agreement => q2,
            },
            QuorumSpec::Grid { rows, cols } => match phase {
                Phase::Election => cols, // a full row has `cols` members
                Phase::Agreement => rows, // a full column has `rows` members
            },
            QuorumSpec::Hybrid { m, c } => 2 * m + c + 1,
        }
    }

    /// Guaranteed minimum overlap between any election quorum and any
    /// agreement quorum.
    pub fn min_intersection(&self) -> usize {
        match *self {
            QuorumSpec::Majority { n } => 2 * (n / 2 + 1) - n,
            QuorumSpec::Byzantine { n, f } => (2 * (n - f)).saturating_sub(n),
            QuorumSpec::Flexible { n, q1, q2 } => (q1 + q2).saturating_sub(n),
            QuorumSpec::Grid { .. } => 1,
            QuorumSpec::Hybrid { m, c } => {
                let n = 3 * m + 2 * c + 1;
                (2 * (2 * m + c + 1)).saturating_sub(n)
            }
        }
    }

    /// Whether the configuration satisfies its safety condition:
    ///
    /// * crash models: election and agreement quorums intersect (≥ 1);
    /// * Byzantine: intersection ≥ `f + 1` (contains a correct node), which
    ///   is the `n ≥ 3f + 1` lower bound of Pease–Shostak–Lamport;
    /// * hybrid: intersection ≥ `m + 1`.
    pub fn is_safe(&self) -> bool {
        match *self {
            QuorumSpec::Majority { n } => n >= 1,
            QuorumSpec::Byzantine { n, f } => {
                n > 3 * f && self.min_intersection() >= f + 1
            }
            QuorumSpec::Flexible { .. } | QuorumSpec::Grid { .. } => self.min_intersection() >= 1,
            QuorumSpec::Hybrid { m, .. } => self.min_intersection() >= m + 1,
        }
    }

    /// Whether `members` contains a quorum for `phase`.
    ///
    /// For cardinality-based systems this is a size check; for grids it
    /// checks for a complete row (election) or column (agreement).
    pub fn is_quorum(&self, members: &BTreeSet<NodeId>, phase: Phase) -> bool {
        match *self {
            QuorumSpec::Grid { rows, cols } => match phase {
                Phase::Election => (0..rows).any(|r| {
                    (0..cols).all(|c| members.contains(&NodeId::from(r * cols + c)))
                }),
                Phase::Agreement => (0..cols).any(|c| {
                    (0..rows).all(|r| members.contains(&NodeId::from(r * cols + c)))
                }),
            },
            _ => members.len() >= self.quorum_size(phase),
        }
    }

    /// Convenience: does a plain vote count reach the agreement quorum?
    /// (Not meaningful for grids.)
    pub fn reached(&self, votes: usize, phase: Phase) -> bool {
        votes >= self.quorum_size(phase)
    }

    /// The members of grid row `r` (election quorum `r`). Panics for
    /// non-grid specs.
    pub fn grid_row(&self, r: usize) -> Vec<NodeId> {
        match *self {
            QuorumSpec::Grid { rows, cols } => {
                assert!(r < rows);
                (0..cols).map(|c| NodeId::from(r * cols + c)).collect()
            }
            _ => panic!("grid_row on non-grid quorum spec"),
        }
    }

    /// The members of grid column `c` (agreement quorum `c`). Panics for
    /// non-grid specs.
    pub fn grid_col(&self, c: usize) -> Vec<NodeId> {
        match *self {
            QuorumSpec::Grid { rows, cols } => {
                assert!(c < cols);
                (0..rows).map(|r| NodeId::from(r * cols + c)).collect()
            }
            _ => panic!("grid_col on non-grid quorum spec"),
        }
    }
}

/// Iterates over all `k`-subsets of `0..n` (small `n` only) — used by the
/// exhaustive intersection checks in tests and the F6 experiment.
pub fn k_subsets(n: usize, k: usize) -> Vec<BTreeSet<NodeId>> {
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| NodeId::from(i)).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Exhaustively verifies that every election quorum intersects every
/// agreement quorum in at least `spec.min_intersection()` nodes. Only
/// feasible for small `n`; the property tests use it to validate the
/// analytic formulas.
pub fn verify_intersection_exhaustively(spec: &QuorumSpec) -> bool {
    let n = spec.n();
    let (elections, agreements): (Vec<BTreeSet<NodeId>>, Vec<BTreeSet<NodeId>>) = match spec {
        QuorumSpec::Grid { rows, cols } => (
            (0..*rows).map(|r| spec.grid_row(r).into_iter().collect()).collect(),
            (0..*cols).map(|c| spec.grid_col(c).into_iter().collect()).collect(),
        ),
        _ => (
            k_subsets(n, spec.quorum_size(Phase::Election)),
            k_subsets(n, spec.quorum_size(Phase::Agreement)),
        ),
    };
    let need = spec.min_intersection();
    elections.iter().all(|e| {
        agreements
            .iter()
            .all(|a| e.intersection(a).count() >= need)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn majority_sizes() {
        let q = QuorumSpec::Majority { n: 5 };
        assert_eq!(q.quorum_size(Phase::Election), 3);
        assert_eq!(q.quorum_size(Phase::Agreement), 3);
        assert_eq!(q.min_intersection(), 1);
        assert!(q.is_safe());
        assert!(q.is_quorum(&set(&[0, 2, 4]), Phase::Agreement));
        assert!(!q.is_quorum(&set(&[0, 2]), Phase::Agreement));
    }

    #[test]
    fn byzantine_pbft_numbers() {
        // The PBFT slide: 3f+1 replicas, quorums of 2f+1, intersection f+1.
        let q = QuorumSpec::Byzantine { n: 4, f: 1 };
        assert_eq!(q.quorum_size(Phase::Agreement), 3);
        assert_eq!(q.min_intersection(), 2);
        assert!(q.is_safe());
        // n = 3f is unsafe: quorums may intersect only in faulty nodes.
        assert!(!QuorumSpec::Byzantine { n: 3, f: 1 }.is_safe());
        assert!(!QuorumSpec::Byzantine { n: 6, f: 2 }.is_safe());
        assert!(QuorumSpec::Byzantine { n: 7, f: 2 }.is_safe());
    }

    #[test]
    fn flexible_generalized_condition() {
        // |Q1| + |Q2| > n is sufficient; majorities not required.
        let q = QuorumSpec::Flexible { n: 6, q1: 5, q2: 2 };
        assert!(q.is_safe());
        assert_eq!(q.min_intersection(), 1);
        // Violating the condition is unsafe.
        assert!(!QuorumSpec::Flexible { n: 6, q1: 3, q2: 3 }.is_safe());
    }

    #[test]
    fn grid_rows_meet_columns() {
        let q = QuorumSpec::Grid { rows: 2, cols: 3 };
        assert_eq!(q.n(), 6);
        assert_eq!(q.min_intersection(), 1);
        assert!(q.is_safe());
        // Row 0 = {0,1,2} is an election quorum.
        assert!(q.is_quorum(&set(&[0, 1, 2]), Phase::Election));
        assert!(!q.is_quorum(&set(&[0, 1, 2]), Phase::Agreement));
        // Column 1 = {1,4} is an agreement quorum.
        assert!(q.is_quorum(&set(&[1, 4]), Phase::Agreement));
        assert!(!q.is_quorum(&set(&[1, 3]), Phase::Agreement));
        assert_eq!(q.grid_row(1), vec![NodeId(3), NodeId(4), NodeId(5)]);
        assert_eq!(q.grid_col(2), vec![NodeId(2), NodeId(5)]);
    }

    #[test]
    fn hybrid_upright_seemore_numbers() {
        // The UpRight slide: quorum 2m+c+1, intersection m+1, network 3m+2c+1.
        let q = QuorumSpec::Hybrid { m: 1, c: 1 };
        assert_eq!(q.n(), 6);
        assert_eq!(q.quorum_size(Phase::Agreement), 4);
        assert_eq!(q.min_intersection(), 2);
        assert!(q.is_safe());
        // m = c = 0 degenerates to a single node.
        let q0 = QuorumSpec::Hybrid { m: 0, c: 0 };
        assert_eq!(q0.n(), 1);
        assert!(q0.is_safe());
        // Pure-crash hybrid degenerates to majority of 2c+1.
        let qc = QuorumSpec::Hybrid { m: 0, c: 2 };
        assert_eq!(qc.n(), 5);
        assert_eq!(qc.quorum_size(Phase::Agreement), 3);
    }

    #[test]
    fn k_subsets_counts() {
        assert_eq!(k_subsets(4, 2).len(), 6);
        assert_eq!(k_subsets(5, 3).len(), 10);
        assert_eq!(k_subsets(3, 0).len(), 1);
        assert_eq!(k_subsets(2, 3).len(), 0);
    }

    #[test]
    fn exhaustive_check_agrees_with_formulas() {
        for spec in [
            QuorumSpec::Majority { n: 5 },
            QuorumSpec::Byzantine { n: 4, f: 1 },
            QuorumSpec::Flexible { n: 6, q1: 5, q2: 2 },
            QuorumSpec::Grid { rows: 2, cols: 3 },
            QuorumSpec::Hybrid { m: 1, c: 1 },
        ] {
            assert!(
                verify_intersection_exhaustively(&spec),
                "intersection formula too optimistic for {spec:?}"
            );
        }
    }

    proptest! {
        /// The analytic min_intersection is never larger than the true
        /// minimum over all quorum pairs (checked exhaustively, small n).
        #[test]
        fn prop_flexible_intersection_sound(n in 2usize..8, q1 in 1usize..8, q2 in 1usize..8) {
            prop_assume!(q1 <= n && q2 <= n);
            let spec = QuorumSpec::Flexible { n, q1, q2 };
            prop_assert!(verify_intersection_exhaustively(&spec));
        }

        /// Majority quorums always intersect, for any cluster size.
        #[test]
        fn prop_majority_always_intersects(n in 1usize..9) {
            let spec = QuorumSpec::Majority { n };
            prop_assert!(spec.min_intersection() >= 1);
            prop_assert!(verify_intersection_exhaustively(&spec));
        }

        /// Byzantine safety iff n ≥ 3f+1.
        #[test]
        fn prop_byzantine_bound(f in 0usize..3, extra in 0usize..4) {
            let safe_n = 3 * f + 1 + extra;
            let safe = QuorumSpec::Byzantine { n: safe_n, f }.is_safe();
            prop_assert!(safe);
            if f > 0 {
                let unsafe_spec = QuorumSpec::Byzantine { n: 3 * f, f };
                prop_assert!(!unsafe_spec.is_safe());
            }
        }

        /// Grid quorums: every row meets every column exactly once.
        #[test]
        fn prop_grid_intersection(rows in 1usize..5, cols in 1usize..5) {
            let spec = QuorumSpec::Grid { rows, cols };
            for r in 0..rows {
                let row: BTreeSet<_> = spec.grid_row(r).into_iter().collect();
                for c in 0..cols {
                    let col: BTreeSet<_> = spec.grid_col(c).into_iter().collect();
                    prop_assert_eq!(row.intersection(&col).count(), 1);
                }
            }
        }

        /// Hybrid quorum intersection always contains m+1 nodes.
        #[test]
        fn prop_hybrid_intersection(m in 0usize..3, c in 0usize..3) {
            let spec = QuorumSpec::Hybrid { m, c };
            prop_assert!(spec.min_intersection() >= m + 1);
            if spec.n() <= 10 {
                prop_assert!(verify_intersection_exhaustively(&spec));
            }
        }
    }
}
