//! The tutorial's five-aspect taxonomy and per-protocol info cards.
//!
//! Every protocol the tutorial surveys carries a card listing its position
//! along the five aspects plus its complexity metrics (number of nodes,
//! number of communication phases, message complexity). This module encodes
//! all of those cards verbatim; `bench`'s experiment **T1** runs
//! each protocol and cross-checks the measured node count, phase count, and
//! message growth against its card.

use std::fmt;

pub use simnet::Synchrony;

/// Second aspect: the failure model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureModel {
    /// Nodes may stop (and possibly restart) but never lie.
    Crash,
    /// Faulty nodes may behave arbitrarily, including maliciously.
    Byzantine,
    /// Some nodes may crash while others behave maliciously
    /// (UpRight/SeeMoRe's `m` malicious + `c` crash, XFT's `c + m + p`).
    Hybrid,
}

/// Third aspect: the processing strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessingStrategy {
    /// Replicas agree on the order before executing; identical from the
    /// start; tolerates the maximum number of concurrent failures.
    Pessimistic,
    /// Replicas speculatively execute before the order is definitively
    /// established and may diverge temporarily (Zyzzyva, CheapBFT's
    /// active/passive scheme, eventual consistency).
    Optimistic,
}

/// Fourth aspect: participant awareness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParticipantAwareness {
    /// The participant set is known and identified; failures bounded by `f`.
    Known,
    /// Open membership — permissionless blockchains; agreement by
    /// computation (mining) or stake rather than communication quorums.
    Unknown,
}

/// How many nodes the protocol needs, as a function of the fault bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeBound {
    /// `2f + 1` — crash-tolerant quorum protocols (Paxos, Raft) and
    /// trusted-component BFT (MinBFT, XFT).
    TwoFPlusOne,
    /// `3f + 1` — Byzantine agreement without trusted components.
    ThreeFPlusOne,
    /// `f + 1` active replicas out of a larger pool (CheapBFT's CheapTiny).
    FPlusOneActive,
    /// `3m + 2c + 1` for `m` malicious and `c` crash faults
    /// (UpRight, SeeMoRe).
    HybridMC,
    /// No fixed bound — open participation.
    Open,
}

impl NodeBound {
    /// Minimum total nodes for the given fault bounds (`f` doubles as `m`
    /// for hybrid models).
    pub fn required(self, f: usize, c: usize) -> Option<usize> {
        match self {
            NodeBound::TwoFPlusOne => Some(2 * f + 1),
            NodeBound::ThreeFPlusOne => Some(3 * f + 1),
            NodeBound::FPlusOneActive => Some(f + 1),
            NodeBound::HybridMC => Some(3 * f + 2 * c + 1),
            NodeBound::Open => None,
        }
    }
}

impl fmt::Display for NodeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeBound::TwoFPlusOne => "2f+1",
            NodeBound::ThreeFPlusOne => "3f+1",
            NodeBound::FPlusOneActive => "f+1 active",
            NodeBound::HybridMC => "3m+2c+1",
            NodeBound::Open => "open",
        };
        f.write_str(s)
    }
}

/// Asymptotic message complexity of the common case, in the number of nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComplexityClass {
    /// `O(N)` — leader-centric star communication.
    Linear,
    /// `O(N²)` — all-to-all phases (PBFT prepare/commit).
    Quadratic,
    /// `O(N³)` — PBFT's view change.
    Cubic,
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComplexityClass::Linear => "O(N)",
            ComplexityClass::Quadratic => "O(N²)",
            ComplexityClass::Cubic => "O(N³)",
        };
        f.write_str(s)
    }
}

/// A protocol's info card, exactly as shown on its introductory slide.
#[derive(Clone, Debug)]
pub struct ProtocolCard {
    /// Protocol name.
    pub name: &'static str,
    /// First aspect.
    pub synchrony: Synchrony,
    /// Second aspect.
    pub failure: FailureModel,
    /// Third aspect.
    pub strategy: ProcessingStrategy,
    /// Fourth aspect.
    pub awareness: ParticipantAwareness,
    /// Node requirement.
    pub nodes: NodeBound,
    /// Communication phases in the common case, as printed on the card
    /// (e.g. "2", "1 or 3", "7").
    pub phases: &'static str,
    /// Common-case message complexity.
    pub complexity: ComplexityClass,
    /// Primary citation shown on the slide.
    pub reference: &'static str,
}

/// All protocol cards from the tutorial, in presentation order.
pub fn all_cards() -> Vec<ProtocolCard> {
    use ComplexityClass::*;
    use FailureModel::*;
    use NodeBound::*;
    use ParticipantAwareness::*;
    use ProcessingStrategy::*;
    use Synchrony::*;

    vec![
        ProtocolCard {
            name: "Paxos",
            synchrony: PartiallySynchronous,
            failure: Crash,
            strategy: Pessimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "2",
            complexity: Linear,
            reference: "Lamport, The Part-Time Parliament, TOCS 1998",
        },
        ProtocolCard {
            name: "Raft",
            synchrony: PartiallySynchronous,
            failure: Crash,
            strategy: Pessimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "2",
            complexity: Linear,
            reference: "Ongaro & Ousterhout, USENIX ATC 2014",
        },
        ProtocolCard {
            name: "Fast Paxos",
            synchrony: PartiallySynchronous,
            failure: Crash,
            strategy: Pessimistic,
            awareness: Known,
            nodes: ThreeFPlusOne,
            phases: "1 or 3",
            complexity: Linear,
            reference: "Lamport, Fast Paxos, Distributed Computing 2006",
        },
        ProtocolCard {
            name: "Flexible Paxos",
            synchrony: PartiallySynchronous,
            failure: Crash,
            strategy: Pessimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "2",
            complexity: Linear,
            reference: "Howard, Malkhi & Spiegelman, OPODIS 2017",
        },
        ProtocolCard {
            name: "2PC",
            synchrony: Synchronous,
            failure: Crash,
            strategy: Pessimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "2",
            complexity: Linear,
            reference: "Gray 1978; blocking atomic commitment",
        },
        ProtocolCard {
            name: "3PC",
            synchrony: Synchronous,
            failure: Crash,
            strategy: Pessimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "3",
            complexity: Linear,
            reference: "Skeen 1981; non-blocking atomic commitment",
        },
        ProtocolCard {
            name: "PBFT",
            synchrony: PartiallySynchronous,
            failure: Byzantine,
            strategy: Pessimistic,
            awareness: Known,
            nodes: ThreeFPlusOne,
            phases: "3",
            complexity: Quadratic,
            reference: "Castro & Liskov, OSDI 1999 / TOCS 2002",
        },
        ProtocolCard {
            name: "Zyzzyva",
            synchrony: PartiallySynchronous,
            failure: Byzantine,
            strategy: Optimistic,
            awareness: Known,
            nodes: ThreeFPlusOne,
            phases: "1 or 2",
            complexity: Linear,
            reference: "Kotla et al., SOSP 2007",
        },
        ProtocolCard {
            name: "HotStuff",
            synchrony: PartiallySynchronous,
            failure: Byzantine,
            strategy: Pessimistic,
            awareness: Known,
            nodes: ThreeFPlusOne,
            phases: "7",
            complexity: Linear,
            reference: "Yin et al., PODC 2019",
        },
        ProtocolCard {
            name: "MinBFT",
            synchrony: PartiallySynchronous,
            failure: Hybrid,
            strategy: Pessimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "2",
            complexity: Linear,
            reference: "Veronese et al., IEEE TC 2013 (trusted USIG)",
        },
        ProtocolCard {
            name: "CheapBFT",
            synchrony: PartiallySynchronous,
            failure: Hybrid,
            strategy: Optimistic,
            awareness: Known,
            nodes: FPlusOneActive,
            phases: "2",
            complexity: Linear,
            reference: "Kapitza et al., EuroSys 2012 (trusted CASH)",
        },
        ProtocolCard {
            name: "XFT",
            synchrony: PartiallySynchronous,
            failure: Hybrid,
            strategy: Optimistic,
            awareness: Known,
            nodes: TwoFPlusOne,
            phases: "2",
            complexity: Linear,
            reference: "Liu et al., OSDI 2016",
        },
        ProtocolCard {
            name: "UpRight",
            synchrony: PartiallySynchronous,
            failure: Hybrid,
            strategy: Optimistic,
            awareness: Known,
            nodes: HybridMC,
            phases: "2 or 3",
            complexity: Quadratic,
            reference: "Clement et al., SOSP 2009",
        },
        ProtocolCard {
            name: "SeeMoRe",
            synchrony: PartiallySynchronous,
            failure: Hybrid,
            strategy: Pessimistic,
            awareness: Known,
            nodes: HybridMC,
            phases: "2 or 3",
            complexity: Quadratic,
            reference: "Amiri et al., ICDE 2020",
        },
        ProtocolCard {
            name: "PoW (Bitcoin)",
            synchrony: Asynchronous,
            failure: Byzantine,
            strategy: Optimistic,
            awareness: Unknown,
            nodes: Open,
            phases: "1",
            complexity: Linear,
            reference: "Nakamoto 2008",
        },
        ProtocolCard {
            name: "PoS",
            synchrony: Asynchronous,
            failure: Byzantine,
            strategy: Optimistic,
            awareness: Unknown,
            nodes: Open,
            phases: "1",
            complexity: Linear,
            reference: "PPCoin 2012 and successors",
        },
    ]
}

/// Looks up a card by name.
pub fn card(name: &str) -> Option<ProtocolCard> {
    all_cards().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let cards = all_cards();
        assert!(cards.len() >= 16, "expected all surveyed protocols");
        let mut names: Vec<_> = cards.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cards.len(), "duplicate card names");
    }

    #[test]
    fn node_bounds_match_slides() {
        // PSL: agreement needs 3f+1 in the Byzantine case.
        assert_eq!(NodeBound::ThreeFPlusOne.required(1, 0), Some(4));
        // Paxos: 2f+1.
        assert_eq!(NodeBound::TwoFPlusOne.required(2, 0), Some(5));
        // UpRight/SeeMoRe: 3m+2c+1.
        assert_eq!(NodeBound::HybridMC.required(1, 1), Some(6));
        // CheapTiny runs with f+1 active replicas.
        assert_eq!(NodeBound::FPlusOneActive.required(1, 0), Some(2));
        assert_eq!(NodeBound::Open.required(5, 0), None);
    }

    #[test]
    fn pbft_card_matches_slide() {
        let c = card("PBFT").unwrap();
        assert_eq!(c.failure, FailureModel::Byzantine);
        assert_eq!(c.nodes, NodeBound::ThreeFPlusOne);
        assert_eq!(c.phases, "3");
        assert_eq!(c.complexity, ComplexityClass::Quadratic);
    }

    #[test]
    fn hotstuff_is_linear_with_seven_phases() {
        let c = card("HotStuff").unwrap();
        assert_eq!(c.complexity, ComplexityClass::Linear);
        assert_eq!(c.phases, "7");
    }

    #[test]
    fn minbft_halves_the_replica_bound() {
        let c = card("MinBFT").unwrap();
        assert_eq!(c.nodes, NodeBound::TwoFPlusOne);
        let pbft = card("PBFT").unwrap();
        assert!(
            c.nodes.required(1, 0).unwrap() < pbft.nodes.required(1, 0).unwrap(),
            "MinBFT needs fewer replicas than PBFT"
        );
    }

    #[test]
    fn blockchains_have_unknown_participants() {
        for name in ["PoW (Bitcoin)", "PoS"] {
            let c = card(name).unwrap();
            assert_eq!(c.awareness, ParticipantAwareness::Unknown);
            assert_eq!(c.nodes, NodeBound::Open);
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeBound::ThreeFPlusOne.to_string(), "3f+1");
        assert_eq!(ComplexityClass::Quadratic.to_string(), "O(N²)");
    }
}
