//! State machine replication building blocks.
//!
//! The tutorial's SMR picture: clients submit commands; a consensus module
//! on each server agrees on a single order; every server applies the same
//! deterministic commands in the same order, so replicas stay consistent.
//! This module provides the pieces every protocol crate shares: a generic
//! [`StateMachine`], concrete deterministic machines, and a [`ReplicatedLog`]
//! that applies entries strictly in order ("server waits for previous log
//! entries to be applied, then applies the new command").

use std::collections::BTreeMap;
use std::fmt;

/// A deterministic command with a client-visible identity, so replies can be
/// matched to requests and duplicates suppressed.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Command<Op> {
    /// Issuing client.
    pub client: u32,
    /// Client-local sequence number (monotone per client).
    pub seq: u64,
    /// The operation to apply.
    pub op: Op,
}

impl<Op: fmt::Display> fmt::Display for Command<Op> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}#{}: {}", self.client, self.seq, self.op)
    }
}

/// A deterministic state machine: same commands in the same order ⇒ same
/// state and same outputs on every replica.
pub trait StateMachine: Default {
    /// Operations this machine executes.
    type Op: Clone + fmt::Debug;
    /// Responses it produces.
    type Output: Clone + fmt::Debug + PartialEq;

    /// Applies one operation and returns its output.
    fn apply(&mut self, op: &Self::Op) -> Self::Output;

    /// A digest of the current state, used for checkpoint agreement (PBFT)
    /// and divergence detection in tests. Must be a pure function of the
    /// applied history.
    fn digest(&self) -> u64;
}

/// Operations of the replicated key-value store used by the examples and
/// most experiments.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum KvCommand {
    /// Bind `key` to `value`.
    Put {
        /// Key to write.
        key: String,
        /// Value to store.
        value: String,
    },
    /// Read `key`.
    Get {
        /// Key to read.
        key: String,
    },
    /// Remove `key`.
    Delete {
        /// Key to remove.
        key: String,
    },
    /// Compare-and-swap: set `key` to `new` iff it currently equals
    /// `expect`.
    Cas {
        /// Key to update.
        key: String,
        /// Expected current value.
        expect: String,
        /// Replacement value.
        new: String,
    },
    /// Ordered scan of `[start, end)`, returning at most `limit` entries.
    /// The only multi-key command: shards serve it from their sorted
    /// primary index (B+ tree in durable mode), and routers merge per-shard
    /// results into one globally ordered answer.
    Range {
        /// First key included.
        start: String,
        /// First key excluded.
        end: String,
        /// Maximum entries returned.
        limit: usize,
    },
}

impl KvCommand {
    /// Payload bytes beyond the flat per-op wire estimate the protocols'
    /// `size_bytes` models charge (48 bytes covers headers plus a small
    /// key/value budget). Commands whose strings fit the budget — every
    /// historical generated workload — report 0, keeping message sizes
    /// bit-identical; padded large-value workloads (the bench's value-size
    /// axis, [`crate::workload::KvMix::value_bytes`]) pay for their real
    /// bytes on every hop that carries the command.
    pub fn payload_excess(&self) -> usize {
        let payload = match self {
            KvCommand::Put { key, value } => key.len() + value.len(),
            KvCommand::Get { key } | KvCommand::Delete { key } => key.len(),
            KvCommand::Cas { key, expect, new } => key.len() + expect.len() + new.len(),
            KvCommand::Range { start, end, .. } => start.len() + end.len(),
        };
        payload.saturating_sub(PAYLOAD_BUDGET)
    }
}

/// Key/value bytes already covered by the flat 48-byte per-op estimate.
/// Generated workload strings (`k12`, `v345`, intent keys) fit well within
/// it; only deliberately padded values exceed it.
const PAYLOAD_BUDGET: usize = 16;

impl fmt::Display for KvCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvCommand::Put { key, value } => write!(f, "put {key}={value}"),
            KvCommand::Get { key } => write!(f, "get {key}"),
            KvCommand::Delete { key } => write!(f, "del {key}"),
            KvCommand::Cas { key, expect, new } => write!(f, "cas {key}:{expect}→{new}"),
            KvCommand::Range { start, end, limit } => {
                write!(f, "range [{start},{end})#{limit}")
            }
        }
    }
}

/// Replies of the key-value store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvResponse {
    /// Write acknowledged.
    Ok,
    /// Read result (None = absent).
    Value(Option<String>),
    /// CAS outcome.
    CasResult {
        /// Whether the swap happened.
        swapped: bool,
    },
    /// Range-scan result: `(key, value)` pairs in ascending key order.
    Entries(Vec<(String, String)>),
}

/// How a linearizable read was (or was not) served on the fast path.
///
/// Multi-Paxos leaders answer reads locally while they hold a quorum-granted
/// **lease** bounded by the clock-skew oracle; Raft followers answer from
/// their applied state after a **read-index** round-trip confirms the
/// leader's commit index. Either side replies [`ReadMode::Nack`] when the
/// fast path is not currently safe, telling the caller to fall back to the
/// ordinary log path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadMode {
    /// Served locally by a leader holding an unexpired quorum lease.
    Lease,
    /// Served by a follower after a Raft read-index confirmation.
    ReadIndex,
    /// Served through the replicated log (the slow, always-safe path).
    Log,
    /// Fast path refused; the value field of the reply is meaningless and
    /// the caller must retry through the log.
    Nack,
}

/// A deterministic in-memory key-value store.
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<String, String>,
    applied: u64,
}

impl KvStore {
    /// Direct read access (test assertions).
    pub fn get(&self, key: &str) -> Option<&String> {
        self.map.get(key)
    }

    /// Number of operations applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates entries in key order (snapshot serialization).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &String)> {
        self.map.iter()
    }

    /// Rebuilds a store from serialized state. `applied` must be the
    /// original operation count — the digest covers it, so a recovered
    /// replica only matches its peers if the count round-trips exactly.
    pub fn restore(entries: Vec<(String, String)>, applied: u64) -> Self {
        KvStore {
            map: entries.into_iter().collect(),
            applied,
        }
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Ordered scan of `[start, end)`, at most `limit` entries — the pure
    /// read that [`KvCommand::Range`] applies through the log. Exposed so
    /// durable replicas can cross-check their on-disk index scan against
    /// the authoritative machine state.
    pub fn scan(&self, start: &str, end: &str, limit: usize) -> Vec<(String, String)> {
        use std::ops::Bound;
        self.map
            .range::<str, _>((Bound::Included(start), Bound::Excluded(end)))
            .take(limit)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

impl StateMachine for KvStore {
    type Op = KvCommand;
    type Output = KvResponse;

    fn apply(&mut self, op: &KvCommand) -> KvResponse {
        self.applied += 1;
        match op {
            KvCommand::Put { key, value } => {
                self.map.insert(key.clone(), value.clone());
                KvResponse::Ok
            }
            KvCommand::Get { key } => KvResponse::Value(self.map.get(key).cloned()),
            KvCommand::Delete { key } => {
                self.map.remove(key);
                KvResponse::Ok
            }
            KvCommand::Cas { key, expect, new } => {
                let swapped = match self.map.get(key) {
                    Some(v) if v == expect => {
                        self.map.insert(key.clone(), new.clone());
                        true
                    }
                    _ => false,
                };
                KvResponse::CasResult { swapped }
            }
            KvCommand::Range { start, end, limit } => {
                KvResponse::Entries(self.scan(start, end, *limit))
            }
        }
    }

    fn digest(&self) -> u64 {
        // FNV-1a over the sorted map plus the applied count: cheap, stable,
        // and collision-resistant enough for divergence detection in tests.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (k, v) in &self.map {
            mix(k.as_bytes());
            mix(&[0xFF]);
            mix(v.as_bytes());
            mix(&[0xFE]);
        }
        mix(&self.applied.to_le_bytes());
        h
    }
}

/// A trivial counter machine — handy where the value under agreement is a
/// single integer (the tutorial's "agree on a single value" examples).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    /// Current total.
    pub total: i64,
    applied: u64,
}

impl StateMachine for Counter {
    type Op = i64;
    type Output = i64;

    fn apply(&mut self, op: &i64) -> i64 {
        self.applied += 1;
        self.total += op;
        self.total
    }

    fn digest(&self) -> u64 {
        (self.total as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.applied
    }
}

/// The status of one log slot.
#[derive(Clone, Debug, PartialEq)]
pub enum Slot<Op> {
    /// Nothing known for this index.
    Empty,
    /// A value has been decided (consensus reached) but not yet applied.
    Decided(Op),
    /// Decided and applied to the state machine.
    Applied(Op),
}

/// A replicated log with in-order application.
///
/// The consensus module decides values for arbitrary indices (possibly out
/// of order — Multi-Paxos instances are independent); the log applies them
/// to the state machine strictly sequentially, exactly as in the tutorial's
/// Multi-Paxos step 3.
#[derive(Debug)]
pub struct ReplicatedLog<S: StateMachine> {
    slots: Vec<Slot<S::Op>>,
    machine: S,
    next_apply: usize,
    outputs: Vec<(usize, S::Output)>,
}

impl<S: StateMachine> Default for ReplicatedLog<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: StateMachine> ReplicatedLog<S> {
    /// Creates an empty log over a fresh state machine.
    pub fn new() -> Self {
        ReplicatedLog {
            slots: Vec::new(),
            machine: S::default(),
            next_apply: 0,
            outputs: Vec::new(),
        }
    }

    /// Records the decision for `index` and applies every newly contiguous
    /// prefix entry. Returns the outputs produced by this call in order.
    ///
    /// Re-deciding an index with the same value is idempotent; deciding it
    /// with a *different* value panics — that is a safety violation the
    /// protocol must never commit.
    pub fn decide(&mut self, index: usize, op: S::Op) -> Vec<(usize, S::Output)>
    where
        S::Op: PartialEq + fmt::Debug,
    {
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, || Slot::Empty);
        }
        match &self.slots[index] {
            Slot::Empty => self.slots[index] = Slot::Decided(op),
            Slot::Decided(existing) | Slot::Applied(existing) => {
                assert!(
                    *existing == op,
                    "safety violation: slot {index} decided twice with different values: {existing:?} vs {op:?}"
                );
                return Vec::new();
            }
        }
        self.drain_appliable()
    }

    fn drain_appliable(&mut self) -> Vec<(usize, S::Output)>
    where
        S::Op: PartialEq + fmt::Debug,
    {
        let mut produced = Vec::new();
        while self.next_apply < self.slots.len() {
            let i = self.next_apply;
            let op = match &self.slots[i] {
                Slot::Decided(op) => op.clone(),
                _ => break,
            };
            let out = self.machine.apply(&op);
            self.slots[i] = Slot::Applied(op);
            self.outputs.push((i, out.clone()));
            produced.push((i, out));
            self.next_apply += 1;
        }
        produced
    }

    /// Index of the next unapplied slot (= length of the applied prefix).
    pub fn applied_len(&self) -> usize {
        self.next_apply
    }

    /// Total slots touched (decided or applied), including gaps.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been decided.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The state of slot `index`.
    pub fn slot(&self, index: usize) -> &Slot<S::Op> {
        self.slots.get(index).unwrap_or(&Slot::Empty)
    }

    /// The underlying state machine.
    pub fn machine(&self) -> &S {
        &self.machine
    }

    /// All outputs produced so far, in application order.
    pub fn outputs(&self) -> &[(usize, S::Output)] {
        &self.outputs
    }

    /// Drops applied entries up to `index` (exclusive), modelling PBFT-style
    /// checkpoint garbage collection. The state machine retains the effect.
    /// Returns how many slots were truncated. Slots keep their absolute
    /// indices; truncated slots read as `Applied` history being gone, so
    /// `slot()` reports `Empty` for them — callers must consult
    /// [`ReplicatedLog::applied_len`] first, as PBFT's checkpoint protocol
    /// does.
    pub fn truncate_prefix(&mut self, index: usize) -> usize {
        let cut = index.min(self.next_apply);
        let mut freed = 0;
        for slot in self.slots.iter_mut().take(cut) {
            if !matches!(slot, Slot::Empty) {
                *slot = Slot::Empty;
                freed += 1;
            }
        }
        freed
    }

    /// Slots still holding a value (decided or applied) — the log's actual
    /// memory footprint after compaction, the quantity snapshot thresholds
    /// bound.
    pub fn retained_len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| !matches!(s, Slot::Empty))
            .count()
    }

    /// Installs a snapshot: replaces the state machine with `machine`,
    /// whose state must reflect exactly the first `applied_len` entries.
    /// Every slot below `applied_len` reads as `Empty` afterwards (the
    /// history is gone, as after [`ReplicatedLog::truncate_prefix`]); any
    /// previously recorded slot at or above it is dropped too — callers
    /// that want to keep a decided tail re-decide it after installing.
    pub fn install(&mut self, machine: S, applied_len: usize) {
        self.slots.clear();
        self.slots.resize_with(applied_len, || Slot::Empty);
        self.machine = machine;
        self.next_apply = applied_len;
        self.outputs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn put(k: &str, v: &str) -> KvCommand {
        KvCommand::Put {
            key: k.into(),
            value: v.into(),
        }
    }

    #[test]
    fn kv_basic_ops() {
        let mut kv = KvStore::default();
        assert_eq!(kv.apply(&put("a", "1")), KvResponse::Ok);
        assert_eq!(
            kv.apply(&KvCommand::Get { key: "a".into() }),
            KvResponse::Value(Some("1".into()))
        );
        assert_eq!(
            kv.apply(&KvCommand::Cas {
                key: "a".into(),
                expect: "1".into(),
                new: "2".into()
            }),
            KvResponse::CasResult { swapped: true }
        );
        assert_eq!(
            kv.apply(&KvCommand::Cas {
                key: "a".into(),
                expect: "1".into(),
                new: "3".into()
            }),
            KvResponse::CasResult { swapped: false }
        );
        kv.apply(&KvCommand::Delete { key: "a".into() });
        assert_eq!(
            kv.apply(&KvCommand::Get { key: "a".into() }),
            KvResponse::Value(None)
        );
        assert_eq!(kv.applied(), 6);
    }

    #[test]
    fn kv_range_scans_in_order_with_limit() {
        let mut kv = KvStore::default();
        for k in ["b", "a", "d", "c", "~ctl"] {
            kv.apply(&put(k, &format!("v{k}")));
        }
        assert_eq!(
            kv.apply(&KvCommand::Range {
                start: "a".into(),
                end: "z".into(),
                limit: 10
            }),
            KvResponse::Entries(vec![
                ("a".into(), "va".into()),
                ("b".into(), "vb".into()),
                ("c".into(), "vc".into()),
                ("d".into(), "vd".into()),
            ]),
            "sorted, bounded, control keys above 'z' excluded"
        );
        assert_eq!(
            kv.apply(&KvCommand::Range {
                start: "b".into(),
                end: "d".into(),
                limit: 1
            }),
            KvResponse::Entries(vec![("b".into(), "vb".into())]),
            "limit truncates; end is exclusive"
        );
        assert_eq!(kv.scan("a", "c", 10).len(), 2);
        assert_eq!(kv.applied(), 7, "ranges count as applied operations");
    }

    #[test]
    fn kv_digest_detects_divergence() {
        let mut a = KvStore::default();
        let mut b = KvStore::default();
        a.apply(&put("x", "1"));
        b.apply(&put("x", "2"));
        assert_ne!(a.digest(), b.digest());
        let mut c = KvStore::default();
        c.apply(&put("x", "1"));
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn log_applies_in_order_despite_out_of_order_decisions() {
        let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
        assert!(log.decide(2, 30).is_empty());
        assert!(log.decide(1, 20).is_empty());
        let out = log.decide(0, 10);
        // Deciding index 0 unblocks 1 and 2.
        assert_eq!(out, vec![(0, 10), (1, 30), (2, 60)]);
        assert_eq!(log.applied_len(), 3);
        assert_eq!(log.machine().total, 60);
    }

    #[test]
    fn log_decide_is_idempotent() {
        let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
        log.decide(0, 5);
        let again = log.decide(0, 5);
        assert!(again.is_empty());
        assert_eq!(log.machine().total, 5);
    }

    #[test]
    #[should_panic(expected = "safety violation")]
    fn log_panics_on_conflicting_decision() {
        let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
        log.decide(0, 5);
        log.decide(0, 6);
    }

    #[test]
    fn truncate_prefix_frees_applied_slots_only() {
        let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
        for i in 0..5 {
            log.decide(i, 1);
        }
        log.decide(7, 1); // gap at 5,6; 7 stays Decided
        assert_eq!(log.applied_len(), 5);
        let freed = log.truncate_prefix(10); // capped at applied prefix
        assert_eq!(freed, 5);
        assert_eq!(*log.slot(7), Slot::Decided(1));
        assert_eq!(log.machine().total, 5, "state machine keeps the effect");
    }

    #[test]
    fn retained_len_tracks_compaction() {
        let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
        for i in 0..6 {
            log.decide(i, 1);
        }
        assert_eq!(log.retained_len(), 6);
        log.truncate_prefix(4);
        assert_eq!(log.retained_len(), 2);
        assert_eq!(log.applied_len(), 6, "apply frontier unaffected");
    }

    #[test]
    fn install_replaces_machine_and_frontier() {
        let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
        log.decide(0, 3);
        let mut snap = Counter::default();
        snap.apply(&10);
        snap.apply(&32);
        let digest = snap.digest();
        log.install(snap, 2);
        assert_eq!(log.applied_len(), 2);
        assert_eq!(log.retained_len(), 0);
        assert_eq!(log.machine().total, 42);
        assert_eq!(log.machine().digest(), digest);
        // Decisions resume above the installed frontier.
        let out = log.decide(2, 8);
        assert_eq!(out, vec![(2, 50)]);
    }

    #[test]
    fn kv_restore_round_trips_digest() {
        let mut kv = KvStore::default();
        kv.apply(&put("a", "1"));
        kv.apply(&put("b", "2"));
        kv.apply(&KvCommand::Get { key: "a".into() });
        let entries: Vec<(String, String)> =
            kv.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let restored = KvStore::restore(entries, kv.applied());
        assert_eq!(restored.digest(), kv.digest());
        // Applied count matters: same map, different history ⇒ different digest.
        let entries2: Vec<(String, String)> =
            kv.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_ne!(KvStore::restore(entries2, 2).digest(), kv.digest());
    }

    #[test]
    fn command_display() {
        let c = Command {
            client: 3,
            seq: 9,
            op: put("k", "v"),
        };
        assert_eq!(c.to_string(), "c3#9: put k=v");
    }

    proptest! {
        /// Two replicas applying any same command sequence in the same order
        /// reach identical digests (determinism — the SMR premise).
        #[test]
        fn prop_kv_determinism(ops in proptest::collection::vec(0u8..4, 0..40)) {
            let cmds: Vec<KvCommand> = ops.iter().enumerate().map(|(i, &o)| {
                let key = format!("k{}", i % 5);
                match o {
                    0 => KvCommand::Put { key, value: format!("v{i}") },
                    1 => KvCommand::Get { key },
                    2 => KvCommand::Delete { key },
                    _ => KvCommand::Cas { key, expect: format!("v{}", i.saturating_sub(5)), new: format!("w{i}") },
                }
            }).collect();
            let mut a = KvStore::default();
            let mut b = KvStore::default();
            let outs_a: Vec<_> = cmds.iter().map(|c| a.apply(c)).collect();
            let outs_b: Vec<_> = cmds.iter().map(|c| b.apply(c)).collect();
            prop_assert_eq!(outs_a, outs_b);
            prop_assert_eq!(a.digest(), b.digest());
        }

        /// The log applies every decided prefix exactly once, in index
        /// order, no matter in what order decisions arrive.
        #[test]
        fn prop_log_order_independence(order in Just((0..8usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut log: ReplicatedLog<Counter> = ReplicatedLog::new();
            for &i in &order {
                log.decide(i, i as i64 + 1);
            }
            prop_assert_eq!(log.applied_len(), 8);
            let outputs: Vec<usize> = log.outputs().iter().map(|(i, _)| *i).collect();
            prop_assert_eq!(outputs, (0..8).collect::<Vec<_>>());
        }
    }
}

/// A log operation shared by the SMR protocol crates: a client command or a
/// leader-change no-op.
#[derive(Clone, Debug, PartialEq)]
pub enum SmrOp {
    /// Gap filler proposed during leader recovery; applies nothing.
    Noop,
    /// A client command.
    Cmd(Command<KvCommand>),
}

impl std::fmt::Display for SmrOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmrOp::Noop => f.write_str("noop"),
            SmrOp::Cmd(c) => write!(f, "{c}"),
        }
    }
}

/// A key-value machine with built-in duplicate suppression: the client table
/// (last applied sequence number and cached reply per client) is part of the
/// deterministic state, so replicas dedup identically.
#[derive(Clone, Debug, Default)]
pub struct DedupKvMachine {
    kv: KvStore,
    client_table: BTreeMap<u32, (u64, KvResponse)>,
}

impl DedupKvMachine {
    /// Cached reply for `(client, seq)` if that command (or a later one from
    /// the same client) already applied.
    pub fn cached(&self, client: u32, seq: u64) -> Option<&KvResponse> {
        self.client_table
            .get(&client)
            .filter(|(s, _)| *s >= seq)
            .map(|(_, out)| out)
    }

    /// The underlying store.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// The dedup table: per client, the last applied sequence number and
    /// its cached reply (snapshot serialization).
    pub fn client_table(&self) -> &BTreeMap<u32, (u64, KvResponse)> {
        &self.client_table
    }

    /// Rebuilds a machine from serialized parts. Digest-faithful: restoring
    /// the exact `kv` and `client_table` reproduces the original digest
    /// bit-for-bit, which snapshot codecs depend on.
    pub fn restore(kv: KvStore, client_table: BTreeMap<u32, (u64, KvResponse)>) -> Self {
        DedupKvMachine { kv, client_table }
    }
}

impl StateMachine for DedupKvMachine {
    type Op = SmrOp;
    type Output = Option<KvResponse>;

    fn apply(&mut self, op: &SmrOp) -> Option<KvResponse> {
        match op {
            SmrOp::Noop => None,
            SmrOp::Cmd(cmd) => {
                if let Some((last, out)) = self.client_table.get(&cmd.client) {
                    if cmd.seq <= *last {
                        return Some(out.clone());
                    }
                }
                let out = self.kv.apply(&cmd.op);
                self.client_table.insert(cmd.client, (cmd.seq, out.clone()));
                Some(out)
            }
        }
    }

    fn digest(&self) -> u64 {
        let mut h = self.kv.digest();
        for (c, (s, _)) in &self.client_table {
            h = h
                .rotate_left(7)
                .wrapping_add(u64::from(*c).wrapping_mul(31).wrapping_add(*s));
        }
        h
    }
}

#[cfg(test)]
mod dedup_tests {
    use super::*;

    fn cmd(client: u32, seq: u64, key: &str, value: &str) -> SmrOp {
        SmrOp::Cmd(Command {
            client,
            seq,
            op: KvCommand::Put {
                key: key.into(),
                value: value.into(),
            },
        })
    }

    #[test]
    fn duplicates_return_cached_output_without_reapplying() {
        let mut m = DedupKvMachine::default();
        m.apply(&cmd(1, 0, "k", "a"));
        let applied_before = m.kv().applied();
        let out = m.apply(&cmd(1, 0, "k", "a"));
        assert_eq!(out, Some(KvResponse::Ok));
        assert_eq!(m.kv().applied(), applied_before, "no re-application");
    }

    #[test]
    fn noop_applies_nothing() {
        let mut m = DedupKvMachine::default();
        assert_eq!(m.apply(&SmrOp::Noop), None);
        assert_eq!(m.kv().applied(), 0);
    }

    #[test]
    fn cached_respects_sequence_order() {
        let mut m = DedupKvMachine::default();
        m.apply(&cmd(2, 5, "k", "v"));
        assert!(m.cached(2, 5).is_some());
        assert!(m.cached(2, 4).is_some(), "older seqs count as applied");
        assert!(m.cached(2, 6).is_none());
        assert!(m.cached(3, 0).is_none());
    }

    #[test]
    fn restore_round_trips_digest() {
        let mut m = DedupKvMachine::default();
        m.apply(&cmd(1, 0, "k", "a"));
        m.apply(&cmd(2, 1, "j", "b"));
        let restored = DedupKvMachine::restore(m.kv().clone(), m.client_table().clone());
        assert_eq!(restored.digest(), m.digest());
        assert_eq!(restored.cached(1, 0), m.cached(1, 0));
    }

    #[test]
    fn digest_includes_client_table() {
        let mut a = DedupKvMachine::default();
        let mut b = DedupKvMachine::default();
        a.apply(&cmd(1, 0, "k", "v"));
        b.apply(&cmd(1, 1, "k", "v"));
        assert_ne!(a.digest(), b.digest(), "same kv, different client table");
    }
}

/// Operations of the bank state machine — a second deterministic machine
/// whose invariant (conservation of money) is the classic SMR correctness
/// probe: if replicas ever diverge, totals stop matching.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BankOp {
    /// Create `account` with `balance` (no-op if it exists).
    Open {
        /// Account id.
        account: u32,
        /// Initial balance (minted — the only way money enters).
        balance: u64,
    },
    /// Move `amount` from one account to another; fails (without effect)
    /// on insufficient funds or missing accounts.
    Transfer {
        /// Source account.
        from: u32,
        /// Destination account.
        to: u32,
        /// Amount to move.
        amount: u64,
    },
    /// Read a balance.
    Balance {
        /// Account id.
        account: u32,
    },
}

/// Replies of the bank machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BankResponse {
    /// Operation applied.
    Ok,
    /// Transfer refused (insufficient funds / unknown account).
    Refused,
    /// Balance read result (`None` = unknown account).
    Balance(Option<u64>),
}

/// A deterministic in-memory bank.
#[derive(Clone, Debug, Default)]
pub struct Bank {
    accounts: BTreeMap<u32, u64>,
    /// Total money ever minted via `Open` — the conservation target.
    minted: u64,
    applied: u64,
}

impl Bank {
    /// Sum of all balances. Must equal [`Bank::minted`] at all times.
    pub fn total(&self) -> u64 {
        self.accounts.values().sum()
    }

    /// Money minted so far.
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Direct read access.
    pub fn balance(&self, account: u32) -> Option<u64> {
        self.accounts.get(&account).copied()
    }

    /// The conservation invariant.
    pub fn conserved(&self) -> bool {
        self.total() == self.minted
    }
}

impl StateMachine for Bank {
    type Op = BankOp;
    type Output = BankResponse;

    fn apply(&mut self, op: &BankOp) -> BankResponse {
        self.applied += 1;
        match op {
            BankOp::Open { account, balance } => {
                if self.accounts.contains_key(account) {
                    BankResponse::Refused
                } else {
                    self.accounts.insert(*account, *balance);
                    self.minted += balance;
                    BankResponse::Ok
                }
            }
            BankOp::Transfer { from, to, amount } => {
                if from == to {
                    return BankResponse::Refused;
                }
                match (self.accounts.get(from).copied(), self.accounts.get(to)) {
                    (Some(src), Some(_)) if src >= *amount => {
                        *self.accounts.get_mut(from).expect("checked") -= amount;
                        *self.accounts.get_mut(to).expect("checked") += amount;
                        BankResponse::Ok
                    }
                    _ => BankResponse::Refused,
                }
            }
            BankOp::Balance { account } => BankResponse::Balance(self.balance(*account)),
        }
    }

    fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (a, b) in &self.accounts {
            h ^= u64::from(*a).rotate_left(17) ^ b.rotate_left(43);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ self.applied
    }
}

#[cfg(test)]
mod bank_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfers_move_money_conservatively() {
        let mut bank = Bank::default();
        assert_eq!(bank.apply(&BankOp::Open { account: 1, balance: 100 }), BankResponse::Ok);
        assert_eq!(bank.apply(&BankOp::Open { account: 2, balance: 50 }), BankResponse::Ok);
        assert_eq!(
            bank.apply(&BankOp::Transfer { from: 1, to: 2, amount: 30 }),
            BankResponse::Ok
        );
        assert_eq!(bank.balance(1), Some(70));
        assert_eq!(bank.balance(2), Some(80));
        assert!(bank.conserved());
    }

    #[test]
    fn refusals_have_no_effect() {
        let mut bank = Bank::default();
        bank.apply(&BankOp::Open { account: 1, balance: 10 });
        let before = bank.clone();
        // Overdraft.
        assert_eq!(
            bank.apply(&BankOp::Transfer { from: 1, to: 2, amount: 99 }),
            BankResponse::Refused
        );
        // Unknown destination.
        assert_eq!(
            bank.apply(&BankOp::Transfer { from: 1, to: 9, amount: 1 }),
            BankResponse::Refused
        );
        // Self transfer.
        assert_eq!(
            bank.apply(&BankOp::Transfer { from: 1, to: 1, amount: 1 }),
            BankResponse::Refused
        );
        // Re-open.
        assert_eq!(bank.apply(&BankOp::Open { account: 1, balance: 5 }), BankResponse::Refused);
        assert_eq!(bank.balance(1), before.balance(1));
        assert!(bank.conserved());
    }

    proptest! {
        /// Money is conserved under any operation sequence, and two
        /// replicas applying the same sequence agree exactly.
        #[test]
        fn prop_conservation_and_determinism(
            ops in proptest::collection::vec((0u8..3, 0u32..6, 0u32..6, 0u64..200), 0..80)
        ) {
            let cmds: Vec<BankOp> = ops.into_iter().map(|(k, a, b, amt)| match k {
                0 => BankOp::Open { account: a, balance: amt },
                1 => BankOp::Transfer { from: a, to: b, amount: amt },
                _ => BankOp::Balance { account: a },
            }).collect();
            let mut x = Bank::default();
            let mut y = Bank::default();
            for c in &cmds {
                let ox = x.apply(c);
                let oy = y.apply(c);
                prop_assert_eq!(ox, oy);
                prop_assert!(x.conserved(), "money leaked: total {} vs minted {}", x.total(), x.minted());
            }
            prop_assert_eq!(x.digest(), y.digest());
        }

        /// Transfers never create negative balances (all u64 math checked).
        #[test]
        fn prop_no_overdrafts(amounts in proptest::collection::vec(0u64..100, 1..40)) {
            let mut bank = Bank::default();
            bank.apply(&BankOp::Open { account: 0, balance: 50 });
            bank.apply(&BankOp::Open { account: 1, balance: 0 });
            for amt in amounts {
                bank.apply(&BankOp::Transfer { from: 0, to: 1, amount: amt });
                prop_assert!(bank.balance(0).unwrap() <= 50);
                prop_assert!(bank.conserved());
            }
        }
    }
}
