//! Ballots: the `⟨num, process id⟩` pairs Paxos uses to distinguish values
//! proposed by different leaders.
//!
//! From the tutorial: ballots are *unique, locally monotonically increasing*,
//! form a total order, and processes respond only to the leader with the
//! highest ballot. `⟨n₁,p₁⟩ > ⟨n₂,p₂⟩` iff `n₁ > n₂`, or `n₁ = n₂` and
//! `p₁ > p₂`. If the latest known ballot is `⟨n,q⟩`, process `p` chooses
//! `⟨n+1,p⟩`.

use std::fmt;

use simnet::NodeId;

/// A totally ordered ballot (also called a *view number* or *term* in other
/// protocols — Raft terms and PBFT views are ballots without the embedded
/// process id, made unique by fixing the leader per view).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Ballot {
    /// The round number (compared first).
    pub num: u64,
    /// The proposing process (tie-breaker).
    pub pid: u32,
}

impl Ballot {
    /// The zero ballot `⟨0,0⟩` — smaller than any ballot a real proposer
    /// picks, used as the initial `BallotNum` / `AcceptNum`.
    pub const ZERO: Ballot = Ballot { num: 0, pid: 0 };

    /// Creates a ballot.
    pub const fn new(num: u64, pid: u32) -> Ballot {
        Ballot { num, pid }
    }

    /// The ballot process `p` should pick having observed `self` as the
    /// latest ballot: `⟨n+1, p⟩`.
    #[must_use]
    pub fn next_for(self, p: NodeId) -> Ballot {
        Ballot {
            num: self.num + 1,
            pid: p.0,
        }
    }

    /// The proposer embedded in this ballot.
    pub fn proposer(self) -> NodeId {
        NodeId(self.pid)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{}⟩", self.num, self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ordering_matches_slides() {
        // n₁ > n₂ dominates.
        assert!(Ballot::new(4, 1) > Ballot::new(3, 5));
        // Equal nums: pid breaks ties.
        assert!(Ballot::new(3, 5) > Ballot::new(3, 1));
        assert_eq!(Ballot::new(2, 2), Ballot::new(2, 2));
    }

    #[test]
    fn next_for_beats_current() {
        let b = Ballot::new(7, 3);
        let n = b.next_for(NodeId(1));
        assert!(n > b);
        assert_eq!(n, Ballot::new(8, 1));
        assert_eq!(n.proposer(), NodeId(1));
    }

    #[test]
    fn zero_is_minimal() {
        assert!(Ballot::ZERO < Ballot::new(0, 1));
        assert!(Ballot::ZERO < Ballot::new(1, 0));
    }

    #[test]
    fn display_form() {
        assert_eq!(Ballot::new(3, 5).to_string(), "⟨3,5⟩");
    }

    proptest! {
        /// next_for always produces a strictly larger ballot, regardless of
        /// which process takes over.
        #[test]
        fn prop_next_is_strictly_greater(num in 0u64..u64::MAX / 2, pid in 0u32..1000, p in 0u32..1000) {
            let b = Ballot::new(num, pid);
            prop_assert!(b.next_for(NodeId(p)) > b);
        }

        /// The order is total and antisymmetric: distinct ballots compare
        /// strictly one way.
        #[test]
        fn prop_total_order(a in 0u64..1000, ap in 0u32..32, b in 0u64..1000, bp in 0u32..32) {
            let x = Ballot::new(a, ap);
            let y = Ballot::new(b, bp);
            if x != y {
                prop_assert!((x < y) ^ (y < x));
            }
        }

        /// Lexicographic agreement with the slide definition.
        #[test]
        fn prop_lexicographic(a in 0u64..1000, ap in 0u32..32, b in 0u64..1000, bp in 0u32..32) {
            let x = Ballot::new(a, ap);
            let y = Ballot::new(b, bp);
            let expected = (a, ap) > (b, bp);
            prop_assert_eq!(x > y, expected);
        }
    }
}
