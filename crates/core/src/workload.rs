//! Deterministic client workloads and latency recording.
//!
//! Every protocol crate drives its replicas with the same generators so the
//! cross-protocol comparison (experiment T5) is apples-to-apples.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

use crate::smr::{Command, KvCommand};
use simnet::Time;

/// Mix of operations in a generated key-value workload.
#[derive(Clone, Copy, Debug)]
pub struct KvMix {
    /// Fraction of writes (puts); the rest are reads, except `cas_fraction`.
    pub write_fraction: f64,
    /// Fraction of compare-and-swap operations.
    pub cas_fraction: f64,
    /// Number of distinct keys.
    pub keys: usize,
    /// Minimum written-value size in bytes: short generated values are
    /// padded up to this length (with the sender-side NIC model, bigger
    /// values cost real transmit time — the bench's value-size axis).
    /// `0` (the default) keeps the historical tiny `v{seq}` values.
    pub value_bytes: usize,
}

impl Default for KvMix {
    fn default() -> Self {
        KvMix {
            write_fraction: 0.5,
            cas_fraction: 0.0,
            keys: 16,
            value_bytes: 0,
        }
    }
}

impl KvMix {
    /// The same mix with written values padded to at least `bytes` bytes.
    #[must_use]
    pub fn with_value_bytes(mut self, bytes: usize) -> Self {
        self.value_bytes = bytes;
        self
    }
}

/// How a client paces its requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WorkloadMode {
    /// Closed loop: exactly one request outstanding; the next is issued when
    /// the reply for the previous one arrives. Offered load self-adjusts to
    /// the system's latency.
    #[default]
    Closed,
    /// Open loop: a new request is issued every `interval_us` simulated µs
    /// regardless of outstanding replies. Offered load is fixed, so queues
    /// (and batches) build up when the system saturates.
    Open {
        /// Inter-arrival time in simulated microseconds (≥ 1).
        interval_us: u64,
    },
}

/// Generates a deterministic stream of KV commands for one client.
pub struct KvWorkload {
    rng: ChaCha20Rng,
    mix: KvMix,
    client: u32,
    next_seq: u64,
}

impl KvWorkload {
    /// Creates a workload for `client` with the given mix and seed.
    pub fn new(client: u32, mix: KvMix, seed: u64) -> Self {
        KvWorkload {
            rng: ChaCha20Rng::seed_from_u64(seed ^ u64::from(client).rotate_left(32)),
            mix,
            client,
            next_seq: 0,
        }
    }

    /// Pads a generated value up to `mix.value_bytes` (no-op at the default
    /// of 0, so pre-existing workloads are byte-identical). Padding is
    /// deterministic and draws no randomness.
    fn pad(&self, mut v: String) -> String {
        if v.len() < self.mix.value_bytes {
            let fill = self.mix.value_bytes - v.len();
            v.push_str(&"x".repeat(fill));
        }
        v
    }

    /// Produces the next command.
    pub fn next_command(&mut self) -> Command<KvCommand> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = format!("k{}", self.rng.gen_range(0..self.mix.keys.max(1)));
        let r: f64 = self.rng.gen();
        let op = if r < self.mix.cas_fraction {
            KvCommand::Cas {
                key,
                // Expect and new are padded identically, so CAS hit/miss
                // behaviour is independent of the value-size axis.
                expect: self.pad(format!("v{}", seq.saturating_sub(1))),
                new: self.pad(format!("v{seq}")),
            }
        } else if r < self.mix.cas_fraction + self.mix.write_fraction {
            KvCommand::Put {
                key,
                value: self.pad(format!("v{seq}")),
            }
        } else {
            KvCommand::Get { key }
        };
        Command {
            client: self.client,
            seq,
            op,
        }
    }

    /// How many commands have been generated.
    pub fn issued(&self) -> u64 {
        self.next_seq
    }

    /// Replaces the mix for subsequent commands. Called before the first
    /// command is generated this is equivalent to constructing with `mix`
    /// (the RNG state is untouched) — the hook cluster builders use to
    /// thread a [`crate::driver::DriverConfig`] mix to existing clients.
    pub fn set_mix(&mut self, mix: KvMix) {
        self.mix = mix;
    }
}

/// Records request → reply latencies (in simulated microseconds) and
/// summarizes them.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, start: Time, end: Time) {
        self.samples.push(end.saturating_sub(start));
    }

    /// Records a raw latency in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.samples.push(micros);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// The `p`-th percentile (0 < p ≤ 100), 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// All raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let gen = |seed| {
            let mut w = KvWorkload::new(1, KvMix::default(), seed);
            (0..20).map(|_| w.next_command()).collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn workload_sequences_are_monotone() {
        let mut w = KvWorkload::new(2, KvMix::default(), 1);
        let seqs: Vec<u64> = (0..10).map(|_| w.next_command().seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert_eq!(w.issued(), 10);
    }

    #[test]
    fn workload_respects_mix_extremes() {
        let writes = KvMix {
            write_fraction: 1.0,
            ..KvMix::default()
        };
        let mut all_writes = KvWorkload::new(0, writes, 3);
        for _ in 0..50 {
            assert!(matches!(all_writes.next_command().op, KvCommand::Put { .. }));
        }
        let reads = KvMix {
            write_fraction: 0.0,
            ..KvMix::default()
        };
        let mut all_reads = KvWorkload::new(0, reads, 3);
        for _ in 0..50 {
            assert!(matches!(all_reads.next_command().op, KvCommand::Get { .. }));
        }
    }

    #[test]
    fn value_bytes_pads_writes_without_perturbing_the_stream() {
        // The padded stream must be the *same* stream (keys, op kinds,
        // sequence numbers — padding draws no randomness), just with bigger
        // written values; value_bytes = 0 is byte-identical to history.
        let tiny: Vec<_> = {
            let mut w = KvWorkload::new(1, KvMix::default(), 9);
            (0..40).map(|_| w.next_command()).collect()
        };
        let padded: Vec<_> = {
            let mut w = KvWorkload::new(1, KvMix::default().with_value_bytes(256), 9);
            (0..40).map(|_| w.next_command()).collect()
        };
        for (a, b) in tiny.iter().zip(&padded) {
            assert_eq!(a.seq, b.seq);
            match (&a.op, &b.op) {
                (KvCommand::Get { key: ka }, KvCommand::Get { key: kb }) => assert_eq!(ka, kb),
                (KvCommand::Put { key: ka, value: va }, KvCommand::Put { key: kb, value: vb }) => {
                    assert_eq!(ka, kb);
                    assert_eq!(vb.len(), 256);
                    assert!(vb.starts_with(va.as_str()));
                }
                other => panic!("streams diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn latency_statistics() {
        let mut rec = LatencyRecorder::new();
        assert_eq!(rec.mean(), 0.0);
        assert_eq!(rec.percentile(99.0), 0);
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            rec.record_micros(v);
        }
        assert_eq!(rec.count(), 10);
        assert!((rec.mean() - 55.0).abs() < f64::EPSILON);
        assert_eq!(rec.percentile(50.0), 50);
        assert_eq!(rec.percentile(100.0), 100);
        assert_eq!(rec.min(), 10);
        assert_eq!(rec.max(), 100);
        rec.record(Time(100), Time(350));
        assert_eq!(rec.max(), 250);
    }
}
