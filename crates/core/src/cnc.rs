//! The Consensus & Commitment (C&C) framework.
//!
//! The tutorial's unifying observation: Paxos and 2PC/3PC are all
//! leader-based agreement protocols that decompose into four phases —
//!
//! 1. **Leader Election** — a coordinator establishes authority (a ballot)
//!    with a quorum;
//! 2. **Value Discovery** — the coordinator learns what value it *must* (or
//!    may) propose: prior accepted values in Paxos, cohort votes in 2PC/3PC;
//! 3. **Fault-tolerant Agreement** — the decision is replicated on a quorum
//!    so any successor coordinator will discover it;
//! 4. **Decision** — the outcome is disseminated, typically asynchronously.
//!
//! [`CncEngine`] is a runnable generic engine over these phases.
//! Configurations reproduce the framework instances from the slides:
//!
//! * [`CncConfig::abstract_paxos`] — election + discovery of prior accepted
//!   values + quorum agreement + decision;
//! * [`CncConfig::abstract_2pc`] — fixed coordinator, unanimous-vote
//!   discovery, **no** fault-tolerant agreement phase (hence blocking);
//! * [`CncConfig::abstract_3pc`] — unanimous-vote discovery *plus* quorum
//!   agreement (the pre-commit phase) and a termination protocol: cohort
//!   watchdogs elect a successor coordinator that re-runs the phases.
//!
//! The engine tolerates crash faults; the full protocol crates (`paxos`,
//! `atomic-commit`) implement the real protocols in detail.

use std::collections::BTreeSet;

use simnet::{Context, Node, NodeId, Payload, Timer};

use crate::ballot::Ballot;

/// The agreed outcome: commit a value, or abort (commitment protocols).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Commit with the given value.
    Commit(u64),
    /// Abort the transaction.
    Abort,
}

/// The four phases, used to label traces and experiment output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CncPhase {
    /// Phase 1.
    LeaderElection,
    /// Phase 2.
    ValueDiscovery,
    /// Phase 3.
    FaultTolerantAgreement,
    /// Phase 4.
    Decision,
}

/// How the coordinator discovers the value to propose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiscoveryPolicy {
    /// Paxos-style: learn the outcomes of smaller ballots from a quorum and
    /// adopt the value accepted at the highest ballot (else free choice).
    PriorAccepted {
        /// Responses required.
        quorum: usize,
    },
    /// 2PC/3PC-style: collect a vote from **every** cohort; commit only if
    /// all vote yes. A previously accepted (pre-committed) outcome at any
    /// cohort is adopted instead — the 3PC termination rule.
    UnanimousVotes,
}

/// Engine configuration — one per framework instance.
#[derive(Clone, Copy, Debug)]
pub struct CncConfig {
    /// Cluster size.
    pub n: usize,
    /// Quorum of `ElectAck`s required to become coordinator. `None` means a
    /// fixed coordinator (node 0) that skips the election phase.
    pub election_quorum: Option<usize>,
    /// Value-discovery policy.
    pub discovery: DiscoveryPolicy,
    /// Quorum of `ProposeAck`s for the fault-tolerant agreement phase;
    /// `None` skips the phase (2PC): the decision exists only at the
    /// coordinator until dissemination.
    pub agreement_quorum: Option<usize>,
    /// Cohort watchdog in microseconds: on expiry an undecided cohort
    /// starts a new election (termination protocol). `None` = cohorts block
    /// forever on coordinator failure, as 2PC does.
    pub watchdog: Option<u64>,
}

impl CncConfig {
    /// Abstract Paxos over `n` nodes (majority quorums everywhere).
    pub fn abstract_paxos(n: usize) -> Self {
        let maj = n / 2 + 1;
        CncConfig {
            n,
            election_quorum: Some(maj),
            discovery: DiscoveryPolicy::PriorAccepted { quorum: maj },
            agreement_quorum: Some(maj),
            watchdog: Some(50_000),
        }
    }

    /// Abstract 2PC over `n` nodes: fixed coordinator, unanimous votes, no
    /// fault-tolerant agreement, no termination protocol — blocking.
    pub fn abstract_2pc(n: usize) -> Self {
        CncConfig {
            n,
            election_quorum: None,
            discovery: DiscoveryPolicy::UnanimousVotes,
            agreement_quorum: None,
            watchdog: None,
        }
    }

    /// Abstract fault-tolerant 3PC over `n` nodes: unanimous votes, quorum
    /// pre-commit replication, watchdog-driven coordinator election.
    pub fn abstract_3pc(n: usize) -> Self {
        let maj = n / 2 + 1;
        CncConfig {
            n,
            election_quorum: Some(maj),
            discovery: DiscoveryPolicy::UnanimousVotes,
            agreement_quorum: Some(maj),
            watchdog: Some(50_000),
        }
    }
}

/// Messages of the generic engine. Kinds are phase-labelled so traces read
/// as the framework figure.
#[derive(Clone, Debug)]
pub enum CncMsg {
    /// Phase 1 request.
    ElectReq {
        /// Candidate's ballot.
        round: Ballot,
    },
    /// Phase 1 response (promise).
    ElectAck {
        /// Echoed ballot.
        round: Ballot,
        /// The cohort's previously accepted outcome, if any — piggybacked so
        /// a successor coordinator discovers prior pre-commits immediately.
        accepted: Option<(Ballot, Outcome)>,
    },
    /// Phase 2 request.
    Discover {
        /// Coordinator's ballot.
        round: Ballot,
    },
    /// Phase 2 response.
    DiscoverAck {
        /// Echoed ballot.
        round: Ballot,
        /// Prior accepted outcome (Paxos-style discovery).
        accepted: Option<(Ballot, Outcome)>,
        /// This cohort's commit vote (2PC/3PC-style discovery).
        vote: bool,
    },
    /// Phase 3 request.
    Propose {
        /// Coordinator's ballot.
        round: Ballot,
        /// Proposed outcome.
        outcome: Outcome,
    },
    /// Phase 3 response.
    ProposeAck {
        /// Echoed ballot.
        round: Ballot,
    },
    /// Phase 4: the decision.
    Decide {
        /// Deciding ballot.
        round: Ballot,
        /// Final outcome.
        outcome: Outcome,
    },
}

impl Payload for CncMsg {
    fn kind(&self) -> &'static str {
        match self {
            CncMsg::ElectReq { .. } => "elect-req",
            CncMsg::ElectAck { .. } => "elect-ack",
            CncMsg::Discover { .. } => "discover",
            CncMsg::DiscoverAck { .. } => "discover-ack",
            CncMsg::Propose { .. } => "propose",
            CncMsg::ProposeAck { .. } => "propose-ack",
            CncMsg::Decide { .. } => "decide",
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum CoordPhase {
    Idle,
    Electing,
    Discovering,
    Proposing,
    Done,
}

/// One engine participant. Every node runs cohort logic; whichever node
/// holds the highest ballot also runs coordinator logic.
pub struct CncEngine {
    cfg: CncConfig,
    init_value: u64,
    /// This cohort's commit vote (for vote-based discovery).
    vote_yes: bool,

    // --- cohort state ---
    promised: Ballot,
    accepted: Option<(Ballot, Outcome)>,
    /// Final decision, if reached.
    pub decided: Option<Outcome>,
    watchdog_timer: Option<simnet::TimerId>,

    // --- coordinator state ---
    phase: CoordPhase,
    round: Ballot,
    elect_acks: BTreeSet<NodeId>,
    discover_acks: BTreeSet<NodeId>,
    discover_best: Option<(Ballot, Outcome)>,
    discover_all_yes: bool,
    propose_acks: BTreeSet<NodeId>,
    proposal: Option<Outcome>,
}

const WATCHDOG: u64 = 1;

impl CncEngine {
    /// Creates a participant. `vote_yes` is its 2PC/3PC vote; `init_value`
    /// is the value it proposes if it coordinates and discovery leaves the
    /// choice free.
    pub fn new(cfg: CncConfig, init_value: u64, vote_yes: bool) -> Self {
        CncEngine {
            cfg,
            init_value,
            vote_yes,
            promised: Ballot::ZERO,
            accepted: None,
            decided: None,
            watchdog_timer: None,
            phase: CoordPhase::Idle,
            round: Ballot::ZERO,
            elect_acks: BTreeSet::new(),
            discover_acks: BTreeSet::new(),
            discover_best: None,
            discover_all_yes: true,
            propose_acks: BTreeSet::new(),
            proposal: None,
        }
    }

    /// Whether this node ever coordinated a completed round.
    pub fn coordinated(&self) -> bool {
        self.phase == CoordPhase::Done
    }

    fn arm_watchdog(&mut self, ctx: &mut Context<CncMsg>) {
        if let Some(base) = self.cfg.watchdog {
            if let Some(t) = self.watchdog_timer.take() {
                ctx.cancel_timer(t);
            }
            // Stagger by id so cohorts don't duel during recovery.
            let delay = base * (1 + u64::from(ctx.id().0));
            self.watchdog_timer = Some(ctx.set_timer(delay, WATCHDOG));
        }
    }

    fn start_round(&mut self, ctx: &mut Context<CncMsg>) {
        self.round = self.promised.next_for(ctx.id());
        self.elect_acks.clear();
        self.discover_acks.clear();
        self.discover_best = None;
        self.discover_all_yes = true;
        self.propose_acks.clear();
        self.proposal = None;
        match self.cfg.election_quorum {
            Some(_) => {
                self.phase = CoordPhase::Electing;
                ctx.broadcast_all(CncMsg::ElectReq { round: self.round });
            }
            None => {
                // Fixed coordinator skips phase 1.
                self.phase = CoordPhase::Discovering;
                ctx.broadcast_all(CncMsg::Discover { round: self.round });
            }
        }
    }

    fn enter_discovery(&mut self, ctx: &mut Context<CncMsg>) {
        self.phase = CoordPhase::Discovering;
        ctx.broadcast_all(CncMsg::Discover { round: self.round });
    }

    /// Recovery rounds (ballot num > 1) run the *termination protocol*: the
    /// successor coordinator cannot wait for all cohorts (one may be dead),
    /// so it proceeds with a majority and decides from discovered state.
    fn in_recovery(&self) -> bool {
        self.round.num > 1
    }

    fn discovery_complete(&self) -> bool {
        match self.cfg.discovery {
            DiscoveryPolicy::PriorAccepted { quorum } => self.discover_acks.len() >= quorum,
            DiscoveryPolicy::UnanimousVotes => {
                if self.in_recovery() {
                    self.discover_acks.len() >= self.cfg.n / 2 + 1
                } else {
                    self.discover_acks.len() >= self.cfg.n
                }
            }
        }
    }

    fn chose_outcome(&self) -> Outcome {
        // A previously accepted outcome always wins: it may already be
        // decided somewhere (Paxos invariant / 3PC termination rule).
        if let Some((_, o)) = self.discover_best {
            return o;
        }
        match self.cfg.discovery {
            DiscoveryPolicy::PriorAccepted { .. } => Outcome::Commit(self.init_value),
            DiscoveryPolicy::UnanimousVotes => {
                if self.in_recovery() {
                    // Termination rule: nobody in a majority pre-committed,
                    // so no cohort can have decided commit — abort is safe.
                    Outcome::Abort
                } else if self.discover_all_yes {
                    Outcome::Commit(self.init_value)
                } else {
                    Outcome::Abort
                }
            }
        }
    }

    fn enter_agreement_or_decide(&mut self, ctx: &mut Context<CncMsg>) {
        let outcome = self.chose_outcome();
        self.proposal = Some(outcome);
        match self.cfg.agreement_quorum {
            Some(_) => {
                self.phase = CoordPhase::Proposing;
                ctx.broadcast_all(CncMsg::Propose {
                    round: self.round,
                    outcome,
                });
            }
            None => self.decide_and_disseminate(ctx, outcome),
        }
    }

    fn decide_and_disseminate(&mut self, ctx: &mut Context<CncMsg>, outcome: Outcome) {
        self.phase = CoordPhase::Done;
        ctx.broadcast_all(CncMsg::Decide {
            round: self.round,
            outcome,
        });
    }
}

impl Node for CncEngine {
    type Msg = CncMsg;

    fn on_start(&mut self, ctx: &mut Context<CncMsg>) {
        self.arm_watchdog(ctx);
        let is_initial_coordinator = ctx.id() == NodeId(0);
        if is_initial_coordinator {
            self.start_round(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<CncMsg>, from: NodeId, msg: CncMsg) {
        match msg {
            // ---------- cohort logic ----------
            CncMsg::ElectReq { round } => {
                if round >= self.promised {
                    self.promised = round;
                    self.arm_watchdog(ctx);
                    ctx.send(
                        from,
                        CncMsg::ElectAck {
                            round,
                            accepted: self.accepted,
                        },
                    );
                }
            }
            CncMsg::Discover { round } => {
                if round >= self.promised {
                    self.promised = round;
                    self.arm_watchdog(ctx);
                    ctx.send(
                        from,
                        CncMsg::DiscoverAck {
                            round,
                            accepted: self.accepted,
                            vote: self.vote_yes,
                        },
                    );
                }
            }
            CncMsg::Propose { round, outcome } => {
                if round >= self.promised {
                    self.promised = round;
                    self.accepted = Some((round, outcome));
                    self.arm_watchdog(ctx);
                    ctx.send(from, CncMsg::ProposeAck { round });
                }
            }
            CncMsg::Decide { round: _, outcome } => {
                if let Some(prev) = self.decided {
                    assert_eq!(
                        prev, outcome,
                        "C&C safety violation: two different decisions at {}",
                        ctx.id()
                    );
                } else {
                    self.decided = Some(outcome);
                    if let Some(t) = self.watchdog_timer.take() {
                        ctx.cancel_timer(t);
                    }
                }
            }

            // ---------- coordinator logic ----------
            CncMsg::ElectAck { round, accepted } => {
                if self.phase == CoordPhase::Electing && round == self.round {
                    self.elect_acks.insert(from);
                    if let Some(acc) = accepted {
                        if self.discover_best.is_none_or(|(b, _)| acc.0 > b) {
                            self.discover_best = Some(acc);
                        }
                    }
                    if self.elect_acks.len() >= self.cfg.election_quorum.unwrap_or(usize::MAX) {
                        self.enter_discovery(ctx);
                    }
                }
            }
            CncMsg::DiscoverAck {
                round,
                accepted,
                vote,
            } => {
                if self.phase == CoordPhase::Discovering && round == self.round {
                    self.discover_acks.insert(from);
                    if let Some(acc) = accepted {
                        if self.discover_best.is_none_or(|(b, _)| acc.0 > b) {
                            self.discover_best = Some(acc);
                        }
                    }
                    if !vote {
                        self.discover_all_yes = false;
                    }
                    if self.discovery_complete() {
                        self.enter_agreement_or_decide(ctx);
                    }
                }
            }
            CncMsg::ProposeAck { round } => {
                if self.phase == CoordPhase::Proposing && round == self.round {
                    self.propose_acks.insert(from);
                    if self.propose_acks.len() >= self.cfg.agreement_quorum.unwrap_or(usize::MAX) {
                        let outcome = self.proposal.expect("proposing implies a proposal");
                        self.decide_and_disseminate(ctx, outcome);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<CncMsg>, timer: Timer) {
        if timer.kind == WATCHDOG && self.decided.is_none() {
            // Termination protocol: become a candidate coordinator.
            self.watchdog_timer = None;
            if self.cfg.election_quorum.is_some() {
                self.start_round(ctx);
            }
            self.arm_watchdog(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NetConfig, RunOutcome, Sim, Time};

    fn build(cfg: CncConfig, votes: &[bool], seed: u64) -> Sim<CncEngine> {
        let mut sim = Sim::new(NetConfig::lan(), seed);
        for (i, &v) in votes.iter().enumerate() {
            sim.add_node(CncEngine::new(cfg, 100 + i as u64, v));
        }
        sim
    }

    fn decisions(sim: &Sim<CncEngine>) -> Vec<Option<Outcome>> {
        sim.nodes().map(|(_, n)| n.decided).collect()
    }

    #[test]
    fn abstract_paxos_decides_initial_value() {
        let cfg = CncConfig::abstract_paxos(5);
        let mut sim = build(cfg, &[true; 5], 1);
        sim.run_until(Time::from_secs(2));
        for d in decisions(&sim) {
            assert_eq!(d, Some(Outcome::Commit(100)), "node 0's value chosen");
        }
    }

    #[test]
    fn abstract_paxos_runs_all_four_phases() {
        let cfg = CncConfig::abstract_paxos(5);
        let mut sim = build(cfg, &[true; 5], 2);
        sim.run_until(Time::from_secs(2));
        let m = sim.metrics();
        for kind in [
            "elect-req",
            "elect-ack",
            "discover",
            "discover-ack",
            "propose",
            "propose-ack",
            "decide",
        ] {
            assert!(m.kind(kind) > 0, "phase message {kind} missing");
        }
    }

    #[test]
    fn abstract_2pc_commits_on_unanimous_yes() {
        let cfg = CncConfig::abstract_2pc(4);
        let mut sim = build(cfg, &[true; 4], 3);
        sim.run_until(Time::from_secs(1));
        for d in decisions(&sim) {
            assert_eq!(d, Some(Outcome::Commit(100)));
        }
        // No election, no agreement phase messages.
        assert_eq!(sim.metrics().kind("elect-req"), 0);
        assert_eq!(sim.metrics().kind("propose"), 0);
    }

    #[test]
    fn abstract_2pc_aborts_on_any_no() {
        let cfg = CncConfig::abstract_2pc(4);
        let mut sim = build(cfg, &[true, true, false, true], 4);
        sim.run_until(Time::from_secs(1));
        for d in decisions(&sim) {
            assert_eq!(d, Some(Outcome::Abort));
        }
    }

    #[test]
    fn abstract_2pc_blocks_on_coordinator_crash() {
        let cfg = CncConfig::abstract_2pc(4);
        let mut sim = build(cfg, &[true; 4], 5);
        // Crash the coordinator right after it collects votes but before
        // it can have disseminated a decision (votes arrive ≥ 300µs).
        sim.crash_at(NodeId(0), Time(100));
        let outcome = sim.run_until(Time::from_secs(5));
        assert_eq!(outcome, RunOutcome::Quiescent, "2PC has nothing to do");
        for (id, d) in decisions(&sim).into_iter().enumerate().skip(1) {
            assert_eq!(d, None, "cohort n{id} should be blocked");
        }
    }

    #[test]
    fn abstract_3pc_terminates_despite_coordinator_crash() {
        let cfg = CncConfig::abstract_3pc(5);
        let mut sim = build(cfg, &[true; 5], 6);
        sim.crash_at(NodeId(0), Time(100));
        sim.run_until(Time::from_secs(5));
        for (id, d) in decisions(&sim).into_iter().enumerate().skip(1) {
            assert!(d.is_some(), "cohort n{id} must terminate");
        }
        // All survivors agree.
        let set: std::collections::BTreeSet<_> = decisions(&sim)
            .into_iter()
            .skip(1)
            .map(|d| format!("{d:?}"))
            .collect();
        assert_eq!(set.len(), 1, "divergent decisions: {set:?}");
    }

    #[test]
    fn abstract_3pc_successor_adopts_precommitted_outcome() {
        let cfg = CncConfig::abstract_3pc(5);
        let mut sim = build(cfg, &[true; 5], 7);
        // Let the coordinator reach the propose phase (≈ 4 message delays),
        // then crash it before dissemination completes.
        sim.crash_at(NodeId(0), Time(2_600));
        sim.run_until(Time::from_secs(5));
        let survivors: Vec<_> = decisions(&sim).into_iter().skip(1).flatten().collect();
        assert_eq!(survivors.len(), 4);
        for d in survivors {
            assert_eq!(
                d,
                Outcome::Commit(100),
                "pre-committed value must be recovered, not re-chosen"
            );
        }
    }

    #[test]
    fn paxos_recovers_accepted_value_after_leader_crash() {
        // The slide's leader-crash figure: value v accepted by a majority,
        // leader dies, new leader must recover v.
        let cfg = CncConfig::abstract_paxos(5);
        let mut sim = build(cfg, &[true; 5], 8);
        // Propose goes out at ~3 delays (~2 ms with LAN); crash after
        // acceptance but likely before Decide dissemination.
        sim.crash_at(NodeId(0), Time(3_000));
        sim.run_until(Time::from_secs(5));
        let survivors: Vec<_> = decisions(&sim).into_iter().skip(1).flatten().collect();
        assert!(!survivors.is_empty(), "termination protocol must kick in");
        for d in &survivors {
            assert_eq!(*d, Outcome::Commit(100));
        }
    }

    #[test]
    fn engine_is_deterministic() {
        let run = |seed| {
            let cfg = CncConfig::abstract_paxos(5);
            let mut sim = build(cfg, &[true; 5], seed);
            sim.crash_at(NodeId(0), Time(3_000));
            sim.run_until(Time::from_secs(5));
            (decisions(&sim), sim.metrics().sent)
        };
        assert_eq!(run(42), run(42));
    }
}
