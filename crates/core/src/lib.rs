//! # consensus-core — the tutorial's own contributions
//!
//! This crate implements the conceptual machinery of *"Modern Large-Scale
//! Data Management Systems after 40 Years of Consensus"* (Amiri, Agrawal,
//! El Abbadi, ICDE 2020):
//!
//! * [`taxonomy`] — the five-aspect classification (synchrony mode, failure
//!   model, processing strategy, participant awareness, complexity metrics)
//!   and the per-protocol "info cards" shown throughout the tutorial. The
//!   benchmark harness cross-checks every card against measured behaviour.
//! * [`ballot`] — totally ordered `⟨num, process id⟩` ballots, exactly as in
//!   the Paxos slides.
//! * [`quorum`] — quorum systems: majority, Byzantine (`2f+1` of `3f+1`),
//!   flexible (FPaxos' generalized quorum condition), grid, and the hybrid
//!   `m`-malicious/`c`-crash systems of UpRight/SeeMoRe, with intersection
//!   checkers used by property tests.
//! * [`smr`] — state machine replication building blocks: commands, a
//!   replicated log, and deterministic state machines (key-value store,
//!   counter, bank).
//! * [`workload`] — deterministic client workload generators and latency
//!   recording shared by all protocol crates and the bench harness.
//! * [`driver`] — the unified [`ClusterDriver`] API (construct from seed,
//!   step, fault, harvest) plus the shared [`BatchConfig`]
//!   batching/pipelining knob; bench and nemesis drive every SMR protocol
//!   only through this trait.
//! * [`txn`] — shared transaction types for the sharded store
//!   (`forty-store`): transaction ids, the router-facing [`StoreCommand`],
//!   and the log-entry encoding of the Gray–Lamport 2PC-over-consensus
//!   construction, including the C&C phase mapping of its prepare/decide
//!   steps.
//! * [`cnc`] — the **Consensus & Commitment (C&C) framework**: every
//!   leader-based agreement protocol as *Leader Election → Value Discovery →
//!   Fault-tolerant Agreement → Decision*, including a runnable generic
//!   engine whose configurations yield abstract Paxos, abstract 2PC, and
//!   abstract (fault-tolerant) 3PC.

pub mod ballot;
pub mod cnc;
pub mod driver;
pub mod history;
pub mod quorum;
pub mod smr;
pub mod taxonomy;
pub mod txn;
pub mod workload;

pub use ballot::Ballot;
pub use driver::{BatchConfig, ByzantineWindow, ClusterDriver, DecidedEntry, DriverConfig};
pub use history::{ClientRecord, HistorySink};
pub use quorum::QuorumSpec;
pub use workload::WorkloadMode;
pub use smr::{Bank, BankOp, BankResponse, Command, DedupKvMachine, KvCommand, KvResponse, KvStore, ReadMode, ReplicatedLog, SmrOp, StateMachine};
pub use taxonomy::{
    ComplexityClass, FailureModel, NodeBound, ParticipantAwareness, ProcessingStrategy,
    ProtocolCard,
};
pub use txn::{StoreCommand, Transaction, TxnDecision, TxnId, TxnPhase};
