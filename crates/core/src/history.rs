//! Client-visible operation histories.
//!
//! A *history* is the external record of a run: for every client operation,
//! when it was invoked, and (if the client heard back) when it completed and
//! with what response. Safety checkers consume histories instead of poking at
//! protocol internals — linearizability (Herlihy & Wing) is *defined* over
//! exactly this invoke/response structure, and validity ("only proposed
//! values are decided") needs the set of operations clients actually issued.
//!
//! Cluster drivers own one [`HistorySink`] per client; the nemesis harness
//! collects and merges them after a run. Recording is append-only and cheap
//! enough to leave on unconditionally.

use crate::smr::{KvCommand, KvResponse};

/// The lifecycle of one client operation.
///
/// `(client, seq)` is the operation's identity — the same pair protocols use
/// for deduplication — so a record can be matched against what ended up in a
/// replicated log. An operation with `completed == None` was invoked but
/// never acknowledged; a linearizability checker must consider both the
/// possibility that it took effect and that it was lost.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientRecord {
    /// Issuing client id.
    pub client: u32,
    /// Client-local sequence number.
    pub seq: u64,
    /// The operation itself.
    pub op: KvCommand,
    /// Invocation time (simulated µs).
    pub invoked: u64,
    /// Completion time and the response the client accepted, if any.
    pub completed: Option<(u64, KvResponse)>,
}

impl ClientRecord {
    /// Whether the client observed a response.
    pub fn is_complete(&self) -> bool {
        self.completed.is_some()
    }

    /// Completion time, if the operation completed.
    pub fn completed_at(&self) -> Option<u64> {
        self.completed.as_ref().map(|&(t, _)| t)
    }

    /// The response, if the operation completed.
    pub fn response(&self) -> Option<&KvResponse> {
        self.completed.as_ref().map(|(_, r)| r)
    }
}

/// Append-only recorder of one client's invoke/response events.
///
/// Retransmissions are *not* new invocations: `invoke` is called once per
/// fresh operation, and a duplicate `(client, seq)` invoke (or a completion
/// for an operation that was never invoked or already completed) is ignored
/// rather than corrupting the history.
#[derive(Clone, Debug, Default)]
pub struct HistorySink {
    records: Vec<ClientRecord>,
}

impl HistorySink {
    /// An empty sink.
    pub fn new() -> Self {
        HistorySink::default()
    }

    /// Records the invocation of a fresh operation.
    pub fn invoke(&mut self, client: u32, seq: u64, op: KvCommand, at: u64) {
        if self.find(client, seq).is_some() {
            return; // retransmission, already recorded
        }
        self.records.push(ClientRecord {
            client,
            seq,
            op,
            invoked: at,
            completed: None,
        });
    }

    /// Records the completion of a previously invoked operation.
    pub fn complete(&mut self, client: u32, seq: u64, at: u64, response: KvResponse) {
        if let Some(i) = self.find(client, seq) {
            if self.records[i].completed.is_none() {
                self.records[i].completed = Some((at, response));
            }
        }
    }

    fn find(&self, client: u32, seq: u64) -> Option<usize> {
        self.records
            .iter()
            .position(|r| r.client == client && r.seq == seq)
    }

    /// All records, in invocation order.
    pub fn records(&self) -> &[ClientRecord] {
        &self.records
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merges several per-client sinks into one history, ordered by
    /// invocation time (ties broken by client id for determinism).
    pub fn merge<'a, I>(sinks: I) -> Vec<ClientRecord>
    where
        I: IntoIterator<Item = &'a HistorySink>,
    {
        let mut all: Vec<ClientRecord> = sinks
            .into_iter()
            .flat_map(|s| s.records.iter().cloned())
            .collect();
        all.sort_by_key(|r| (r.invoked, r.client, r.seq));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(k: &str, v: &str) -> KvCommand {
        KvCommand::Put {
            key: k.to_string(),
            value: v.to_string(),
        }
    }

    #[test]
    fn records_invoke_and_complete() {
        let mut h = HistorySink::new();
        h.invoke(1, 0, put("a", "x"), 100);
        assert_eq!(h.len(), 1);
        assert!(!h.records()[0].is_complete());
        h.complete(1, 0, 900, KvResponse::Ok);
        assert_eq!(h.records()[0].completed_at(), Some(900));
        assert_eq!(h.records()[0].response(), Some(&KvResponse::Ok));
    }

    #[test]
    fn duplicate_invokes_and_completions_are_ignored() {
        let mut h = HistorySink::new();
        h.invoke(1, 0, put("a", "x"), 100);
        h.invoke(1, 0, put("a", "x"), 500); // retransmission
        assert_eq!(h.len(), 1);
        assert_eq!(h.records()[0].invoked, 100);
        h.complete(1, 0, 900, KvResponse::Ok);
        h.complete(1, 0, 950, KvResponse::Value(None)); // late duplicate reply
        assert_eq!(h.records()[0].response(), Some(&KvResponse::Ok));
        // Completing an unknown op does nothing.
        h.complete(2, 7, 1000, KvResponse::Ok);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn merge_orders_by_invocation_time() {
        let mut a = HistorySink::new();
        a.invoke(0, 0, put("k", "1"), 300);
        let mut b = HistorySink::new();
        b.invoke(1, 0, put("k", "2"), 100);
        b.invoke(1, 1, put("k", "3"), 300);
        let merged = HistorySink::merge([&a, &b]);
        assert_eq!(merged.len(), 3);
        assert_eq!((merged[0].client, merged[0].invoked), (1, 100));
        // Tie at t=300 broken by client id.
        assert_eq!(merged[1].client, 0);
        assert_eq!(merged[2].client, 1);
    }
}
