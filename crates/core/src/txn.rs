//! Shared transaction types for the sharded store (`forty-store`).
//!
//! The store commits cross-shard transactions with the Gray–Lamport
//! construction (*Consensus on Transaction Commit*): every piece of 2PC
//! control state — the participants' prepare records and the coordinator's
//! commit/abort decision — is an ordinary key-value entry in some shard's
//! *replicated* log, so no single process holds the only copy of anything.
//! This module defines the router-facing command types plus the log-entry
//! encoding of that control state, shared by the store itself, the bench
//! experiments, and the nemesis atomicity checker.
//!
//! Encoding invariants:
//!
//! * Control keys start with `~` (sorts after every data key and is banned
//!   from data keys by the store router), so control and data traffic never
//!   collide.
//! * The decision key `~dec.<tid>` is initialized to `"pending"` before any
//!   participant prepares, and resolved by a compare-and-swap
//!   `pending → commit|abort`. The shard log serializes the CAS entries, so
//!   exactly one decision wins — log order *is* the commit point.
//! * A transaction's data writes are tagged `<value>@<tid>`, which lets a
//!   history checker attribute every visible value to the transaction that
//!   wrote it.

use std::fmt;

use crate::smr::KvCommand;
use simnet::CncPhase;

/// Transaction id: the issuing router client and its txn counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Router client that started the transaction.
    pub client: u32,
    /// Router-local transaction number (monotone per router).
    pub number: u64,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(client: u32, number: u64) -> Self {
        TxnId { client, number }
    }

    /// Parses the `t<client>.<number>` rendering back into an id.
    pub fn parse(s: &str) -> Option<TxnId> {
        let rest = s.strip_prefix('t')?;
        let (client, number) = rest.split_once('.')?;
        Some(TxnId {
            client: client.parse().ok()?,
            number: number.parse().ok()?,
        })
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.client, self.number)
    }
}

/// A multi-key write transaction. Keys may span shards; the store commits
/// all writes or none of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// `(key, value)` writes, at most one per key.
    pub writes: Vec<(String, String)>,
}

/// A command submitted to the store through a router client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreCommand {
    /// A single-key operation, routed to one shard and served by its SMR
    /// log directly — no commitment protocol involved.
    Single(KvCommand),
    /// A cross-shard transaction, committed via 2PC over consensus.
    Txn(Transaction),
}

/// The outcome of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnDecision {
    /// All writes applied.
    Commit,
    /// No writes applied.
    Abort,
}

impl TxnDecision {
    /// The decision-entry value this outcome is stored as.
    pub fn as_str(&self) -> &'static str {
        match self {
            TxnDecision::Commit => "commit",
            TxnDecision::Abort => "abort",
        }
    }

    /// Parses a decision-entry value (`"pending"` maps to `None`).
    pub fn parse(s: &str) -> Option<TxnDecision> {
        match s {
            "commit" => Some(TxnDecision::Commit),
            "abort" => Some(TxnDecision::Abort),
            _ => None,
        }
    }
}

/// The transaction-commit phases of the store, mapped onto the C&C
/// framework: collecting prepares is the coordinator's value discovery
/// (may it commit?), and resolving the replicated decision entry is the
/// decision phase. Leader election and fault-tolerant agreement are
/// supplied *by the shard's consensus group*, which is exactly the
/// Gray–Lamport point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnPhase {
    /// Writing prepare records into the participant shards' logs.
    Prepare,
    /// Resolving the decision entry in the coordinator shard's log.
    Decide,
}

impl TxnPhase {
    /// The C&C phase this transaction phase instantiates.
    pub fn cnc(&self) -> CncPhase {
        match self {
            TxnPhase::Prepare => CncPhase::ValueDiscovery,
            TxnPhase::Decide => CncPhase::Decision,
        }
    }

    /// Stable lowercase label for traces and docs.
    pub fn label(&self) -> &'static str {
        match self {
            TxnPhase::Prepare => "prepare",
            TxnPhase::Decide => "decide",
        }
    }
}

/// Value of an unresolved decision entry.
pub const DECISION_PENDING: &str = "pending";

/// Prefix of every control key. Data keys must not start with it.
pub const CONTROL_PREFIX: char = '~';

/// Whether `key` is 2PC control state rather than user data.
pub fn is_control_key(key: &str) -> bool {
    key.starts_with(CONTROL_PREFIX)
}

/// The coordinator-shard key holding the decision entry for `tid`.
pub fn decision_key(tid: TxnId) -> String {
    format!("~dec.{tid}")
}

/// Extracts the transaction id from a decision key.
pub fn parse_decision_key(key: &str) -> Option<TxnId> {
    TxnId::parse(key.strip_prefix("~dec.")?)
}

/// The participant-shard key holding `tid`'s prepare record on `shard`.
pub fn prepare_key(tid: TxnId, shard: usize) -> String {
    format!("~prep.{tid}.s{shard}")
}

/// Extracts `(tid, shard)` from a prepare key.
pub fn parse_prepare_key(key: &str) -> Option<(TxnId, usize)> {
    let rest = key.strip_prefix("~prep.")?;
    let (tid, shard) = rest.rsplit_once(".s")?;
    Some((TxnId::parse(tid)?, shard.parse().ok()?))
}

/// Value of a Paxos Commit vote register that no one has resolved yet.
pub const VOTE_PENDING: &str = "pending";

/// The participant-shard key holding `tid`'s Paxos Commit vote register on
/// `shard`. Each register is one Gray–Lamport "Paxos instance": the shard's
/// consensus group serializes the `pending → prepared|aborted` CAS, so a
/// participant's vote and a recovery coordinator's free abort race *in the
/// log* and exactly one wins.
pub fn vote_key(tid: TxnId, shard: usize) -> String {
    format!("~vote.{tid}.s{shard}")
}

/// Extracts `(tid, shard)` from a vote key.
pub fn parse_vote_key(key: &str) -> Option<(TxnId, usize)> {
    let rest = key.strip_prefix("~vote.")?;
    let (tid, shard) = rest.rsplit_once(".s")?;
    Some((TxnId::parse(tid)?, shard.parse().ok()?))
}

/// Encodes a participant's *prepared* vote, carrying the shard-local
/// write-set so any coordinator can complete the transaction from the
/// replicated votes alone.
pub fn vote_prepared(writes: &[(String, String)]) -> String {
    format!("p:{}", encode_writes(writes))
}

/// Value of an *aborted* vote register.
pub const VOTE_ABORTED: &str = "aborted";

/// Parses a resolved vote register: `Some(Some(writes))` for prepared,
/// `Some(None)` for aborted, `None` for pending/garbage.
#[allow(clippy::option_option)]
pub fn parse_vote(value: &str) -> Option<Option<Vec<(String, String)>>> {
    if value == VOTE_ABORTED {
        return Some(None);
    }
    value.strip_prefix("p:").map(|w| Some(decode_writes(w)))
}

/// Tags a data value with the transaction that wrote it.
pub fn tag_value(value: &str, tid: TxnId) -> String {
    format!("{value}@{tid}")
}

/// The transaction id a visible value was written by, if tagged.
pub fn tagged_txn(value: &str) -> Option<TxnId> {
    TxnId::parse(value.rsplit_once('@')?.1)
}

/// Serializes a write-set into a prepare-record value. Keys and values must
/// not contain `;` or `=` (the store router enforces this for data keys).
pub fn encode_writes(writes: &[(String, String)]) -> String {
    writes
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses a prepare-record value back into a write-set.
pub fn decode_writes(s: &str) -> Vec<(String, String)> {
    s.split(';')
        .filter_map(|pair| pair.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_round_trips() {
        let tid = TxnId::new(7, 42);
        assert_eq!(tid.to_string(), "t7.42");
        assert_eq!(TxnId::parse("t7.42"), Some(tid));
        assert_eq!(TxnId::parse("x7.42"), None);
        assert_eq!(TxnId::parse("t7"), None);
    }

    #[test]
    fn control_keys_round_trip_and_sort_after_data() {
        let tid = TxnId::new(2, 5);
        assert_eq!(parse_decision_key(&decision_key(tid)), Some(tid));
        assert_eq!(parse_prepare_key(&prepare_key(tid, 3)), Some((tid, 3)));
        assert!(is_control_key(&decision_key(tid)));
        assert!(!is_control_key("k12"));
        assert!(decision_key(tid).as_str() > "zzz", "~ sorts after ASCII letters");
    }

    #[test]
    fn vote_registers_round_trip() {
        let tid = TxnId::new(4, 7);
        assert_eq!(parse_vote_key(&vote_key(tid, 2)), Some((tid, 2)));
        assert!(is_control_key(&vote_key(tid, 2)));
        let writes = vec![("a".to_string(), "1@t4.7".to_string())];
        assert_eq!(parse_vote(&vote_prepared(&writes)), Some(Some(writes)));
        assert_eq!(parse_vote(VOTE_ABORTED), Some(None));
        assert_eq!(parse_vote(VOTE_PENDING), None);
        assert_eq!(parse_vote("garbage"), None);
    }

    #[test]
    fn value_tags_round_trip() {
        let tid = TxnId::new(9, 1);
        let tagged = tag_value("v3", tid);
        assert_eq!(tagged, "v3@t9.1");
        assert_eq!(tagged_txn(&tagged), Some(tid));
        assert_eq!(tagged_txn("plain"), None);
    }

    #[test]
    fn write_sets_round_trip() {
        let writes = vec![
            ("a".to_string(), "1@t0.0".to_string()),
            ("b".to_string(), "2@t0.0".to_string()),
        ];
        assert_eq!(decode_writes(&encode_writes(&writes)), writes);
        assert_eq!(decode_writes(""), vec![]);
    }

    #[test]
    fn decisions_parse() {
        assert_eq!(TxnDecision::parse("commit"), Some(TxnDecision::Commit));
        assert_eq!(TxnDecision::parse("abort"), Some(TxnDecision::Abort));
        assert_eq!(TxnDecision::parse(DECISION_PENDING), None);
        assert_eq!(TxnDecision::Commit.as_str(), "commit");
    }

    #[test]
    fn txn_phases_map_onto_cnc() {
        assert_eq!(TxnPhase::Prepare.cnc(), CncPhase::ValueDiscovery);
        assert_eq!(TxnPhase::Decide.cnc(), CncPhase::Decision);
        assert_eq!(TxnPhase::Prepare.label(), "prepare");
    }
}
