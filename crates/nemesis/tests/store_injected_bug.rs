//! End-to-end proof that the nemesis atomicity checker catches real
//! cross-shard bugs: the deliberately broken store (`store-buggy`, whose
//! coordinator disseminates data writes *before* its decision entry is
//! replicated, and which crashes one router inside that window) must be
//! detected, survive a control run, and replay bit-for-bit — while the
//! sound store shrugs off the same schedule.

use nemesis::{
    by_name, quiet_panics, replay, run_plan, run_trial, shrink, store_injected_bug_target,
    Counterexample,
};

/// The first violating seed for `store-buggy`, found by sweeping seeds
/// 0..10 (`nemesis --seeds 10 --protocols store-buggy`). The trial is a
/// pure function of `(protocol, seed, plan)`, so this stays stable until
/// the plan generator, the store workload, or the simulator changes — at
/// which point re-sweep and update.
const BUGGY_SEED: u64 = 0;

#[test]
fn injected_store_bug_is_caught_and_replayed() {
    let buggy = store_injected_bug_target();
    let (plan, report) = quiet_panics(|| run_trial(buggy.as_ref(), BUGGY_SEED));
    assert!(
        !report.violations.is_empty(),
        "seed {BUGGY_SEED} no longer triggers the injected store bug; re-sweep for a new seed"
    );
    // The signature finding: a data write (or a read observing one) from a
    // transaction that recovery aborted.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.to_string().contains("txn-atomicity")),
        "expected a txn-atomicity violation, got: {:?}",
        report.violations
    );

    // The same seed and schedule must NOT fail the sound store — the
    // finding is the early-dissemination bug, not harness noise.
    let sound = by_name("store-paxos").unwrap();
    let control = quiet_panics(|| run_plan(sound.as_ref(), BUGGY_SEED, &plan));
    assert!(
        control.violations.is_empty(),
        "sound store failed the same schedule: {:?}",
        control.violations
    );

    // The violation is triggered by the bug's own coordinator crash, not by
    // the random schedule — so shrinking must still fail, typically with
    // most (or all) plan actions removed.
    let shrunk = quiet_panics(|| shrink(buggy.as_ref(), BUGGY_SEED, &plan));
    assert!(shrunk.actions.len() <= plan.actions.len());
    let shrunk_report = quiet_panics(|| run_plan(buggy.as_ref(), BUGGY_SEED, &shrunk));
    assert!(!shrunk_report.violations.is_empty(), "shrunk plan passes");

    // Serialize, parse back, and replay twice: determinism means the
    // violation list reproduces exactly, both times.
    let cx = Counterexample {
        protocol: buggy.name().to_string(),
        seed: BUGGY_SEED,
        plan: shrunk,
        violations: shrunk_report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect(),
    };
    let parsed = Counterexample::from_json(&cx.to_json()).expect("round trip");
    assert_eq!(parsed, cx);
    let first = quiet_panics(|| replay(buggy.as_ref(), &parsed));
    let second = quiet_panics(|| replay(buggy.as_ref(), &parsed));
    assert_eq!(first, cx.violations);
    assert_eq!(second, cx.violations);
}

#[test]
fn store_targets_pass_a_bounded_fault_sweep() {
    // The sound store — both engines — survives randomized crash/restart/
    // partition/loss schedules over replicas *and* routers with zero
    // violations from the full battery (per-shard SMR checks, store-level
    // linearizability, cross-shard atomicity).
    for name in ["store-paxos", "store-raft"] {
        let target = by_name(name).expect("registered");
        for seed in 0..5 {
            let (plan, report) = quiet_panics(|| run_trial(target.as_ref(), seed));
            assert!(
                report.violations.is_empty(),
                "{name} seed {seed} violated under {}: {:?}",
                plan.summary(),
                report.violations
            );
            assert!(report.ops > 0, "{name} seed {seed} made no progress");
        }
    }
}
