//! End-to-end proof that the nemesis engine catches real bugs: the
//! deliberately broken Flexible-Paxos configuration (`n = 5, q1 = 2,
//! q2 = 2`, so phase-1 and phase-2 quorums need not intersect) must be
//! detected, shrunk to a minimal fault schedule, serialized, and replayed
//! bit-for-bit — while the correctly configured protocols shrug off the
//! same schedules.

use nemesis::{
    by_name, injected_bug_target, quiet_panics, replay, run_plan, run_trial, shrink, targets,
    Counterexample,
};

/// The first violating seed for `paxos-buggy`, found by sweeping seeds
/// 0..400 (`nemesis --seeds 400 --protocols paxos-buggy`). The trial is a
/// pure function of `(protocol, seed, plan)`, so this stays stable until
/// the plan generator or the simulator changes — at which point re-sweep
/// and update.
const BUGGY_SEED: u64 = 323;

#[test]
fn injected_quorum_bug_is_caught_shrunk_and_replayed() {
    let buggy = injected_bug_target();
    let (plan, report) = quiet_panics(|| run_trial(buggy.as_ref(), BUGGY_SEED));
    assert!(
        !report.violations.is_empty(),
        "seed {BUGGY_SEED} no longer triggers the injected bug; re-sweep for a new seed"
    );
    let first = report.violations[0].to_string();
    assert!(
        first.contains("decided twice") || first.contains("diverges"),
        "expected a conflicting decision, got: {first}"
    );

    // The same seed and schedule must NOT fail the correctly configured
    // protocol — the finding is the quorum bug, not harness noise.
    let sound = by_name("paxos").unwrap();
    let control = quiet_panics(|| run_plan(sound.as_ref(), BUGGY_SEED, &plan));
    assert!(
        control.violations.is_empty(),
        "correct paxos failed the same schedule: {:?}",
        control.violations
    );

    // Shrink to a locally minimal schedule: still failing, no larger than
    // the original, and no single remaining action is removable.
    let shrunk = quiet_panics(|| shrink(buggy.as_ref(), BUGGY_SEED, &plan));
    assert!(shrunk.actions.len() <= plan.actions.len());
    let shrunk_report = quiet_panics(|| run_plan(buggy.as_ref(), BUGGY_SEED, &shrunk));
    assert!(!shrunk_report.violations.is_empty(), "shrunk plan passes");
    for i in 0..shrunk.actions.len() {
        let mut fewer = shrunk.clone();
        fewer.actions.remove(i);
        // Removing a crash can leave its restart dangling; that is fine
        // for minimality purposes — the restart alone must not fail.
        let r = quiet_panics(|| run_plan(buggy.as_ref(), BUGGY_SEED, &fewer));
        assert!(
            r.violations.is_empty() || fewer.actions.len() == shrunk.actions.len(),
            "action {i} of the shrunk plan is removable: {}",
            shrunk.summary()
        );
    }

    // Serialize, parse back, and replay twice: determinism means the
    // violation list reproduces exactly, both times.
    let cx = Counterexample {
        protocol: buggy.name().to_string(),
        seed: BUGGY_SEED,
        plan: shrunk,
        violations: shrunk_report.violations.iter().map(|v| v.to_string()).collect(),
    };
    let parsed = Counterexample::from_json(&cx.to_json()).expect("round trip");
    assert_eq!(parsed, cx);
    let first = quiet_panics(|| replay(buggy.as_ref(), &parsed));
    let second = quiet_panics(|| replay(buggy.as_ref(), &parsed));
    assert_eq!(first, cx.violations);
    assert_eq!(second, cx.violations);
}

#[test]
fn replaying_the_pinned_bug_dumps_a_causal_trace() {
    // The `--trace-out` path: the pinned Flexible-Paxos regression must
    // arrive with an event timeline. Re-running the violating schedule with
    // trace recording on yields Chrome `trace_event` JSON, and recording
    // must not perturb the run — two traced re-runs are byte-identical.
    let buggy = injected_bug_target();
    let (plan, report) = quiet_panics(|| run_trial(buggy.as_ref(), BUGGY_SEED));
    assert!(
        !report.violations.is_empty(),
        "seed {BUGGY_SEED} no longer triggers the injected bug; re-sweep for a new seed"
    );
    let json = quiet_panics(|| buggy.trace_json(BUGGY_SEED, &plan))
        .expect("the paxos target has a trace hook");
    assert!(
        json.starts_with("{\"traceEvents\":[{"),
        "empty or malformed trace"
    );
    assert!(
        json.contains("\"ph\":\"i\""),
        "no instant events in the timeline"
    );
    assert!(json.contains("deliver"), "no message ever delivered");
    let again = quiet_panics(|| buggy.trace_json(BUGGY_SEED, &plan)).unwrap();
    assert_eq!(json, again, "trace recording perturbed the run");
}

#[test]
fn registry_targets_pass_a_small_sweep() {
    for target in targets() {
        for seed in 0..3 {
            let (plan, report) = quiet_panics(|| run_trial(target.as_ref(), seed));
            assert!(
                report.violations.is_empty(),
                "{} seed {seed} violated under {}: {:?}",
                target.name(),
                plan.summary(),
                report.violations
            );
        }
    }
}
