//! Plan execution: drives a [`FaultPlan`] through a live simulation.
//!
//! Point faults (crash/restart/partition/heal) are pre-scheduled on the
//! simulator's event queue. Windowed faults (Byzantine filters, loss
//! bursts) have no queue representation — the executor advances the run in
//! segments, flipping filters and the loss probability at each window edge.
//! Everything stays deterministic: segment boundaries are fixed times, and
//! `run_until` is exact.

use simnet::{Filter, Node, NodeId, RunOutcome, Sim, Time};

use crate::plan::{FaultAction, FaultPlan};

/// Which kind of Byzantine window is opening (the protocol adapter decides
/// what filter implements it for its message type).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// Omission: drop all outbound messages.
    Mute,
    /// Equivocation: per-destination lies.
    Equivocate,
}

enum Edge {
    FilterOn(WindowKind, u32),
    FilterOff(u32),
    LossOn(u32),
    LossOff,
}

/// Executes `plan` against `sim` up to `horizon` µs.
///
/// `base_drop_prob` is the network's configured loss probability, restored
/// when a loss burst ends. `make_filter` maps a Byzantine window onto a
/// concrete outbound filter for the protocol's message type; returning
/// `None` skips the window (e.g. a crash-fault adapter that should never
/// see one).
pub fn execute_plan<N, F>(
    sim: &mut Sim<N>,
    plan: &FaultPlan,
    horizon: u64,
    base_drop_prob: f64,
    mut make_filter: F,
) where
    N: Node,
    F: FnMut(WindowKind, NodeId) -> Option<Box<dyn Filter<N::Msg>>>,
{
    // Point faults go straight onto the event queue.
    let mut edges: Vec<(u64, u8, Edge)> = Vec::new();
    for action in &plan.actions {
        match action {
            FaultAction::Crash { node, at } => sim.crash_at(NodeId(*node), Time(*at)),
            FaultAction::Restart { node, at } => sim.restart_at(NodeId(*node), Time(*at)),
            FaultAction::Partition { at, group } => {
                let side: Vec<NodeId> = group.iter().map(|&n| NodeId(n)).collect();
                // Nodes absent from every group form the implicit other side.
                sim.partition_at(Time(*at), vec![side]);
            }
            FaultAction::Heal { at } => sim.heal_at(Time(*at)),
            FaultAction::Mute { node, from, until } => {
                edges.push((*from, 0, Edge::FilterOn(WindowKind::Mute, *node)));
                edges.push((*until, 1, Edge::FilterOff(*node)));
            }
            FaultAction::Equivocate { node, from, until } => {
                edges.push((*from, 0, Edge::FilterOn(WindowKind::Equivocate, *node)));
                edges.push((*until, 1, Edge::FilterOff(*node)));
            }
            FaultAction::LossBurst {
                from,
                until,
                permille,
            } => {
                edges.push((*from, 0, Edge::LossOn(*permille)));
                edges.push((*until, 1, Edge::LossOff));
            }
        }
    }

    // Window edges: closes sort before opens at equal times via the tag, so
    // back-to-back windows hand over cleanly.
    edges.sort_by_key(|(t, tag, _)| (*t, std::cmp::Reverse(*tag)));

    for (t, _, edge) in edges {
        run_to(sim, t.min(horizon));
        match edge {
            Edge::FilterOn(kind, node) => {
                if let Some(filter) = make_filter(kind, NodeId(node)) {
                    sim.set_filter(NodeId(node), filter);
                }
            }
            Edge::FilterOff(node) => sim.clear_filter(NodeId(node)),
            Edge::LossOn(permille) => sim.set_drop_prob(f64::from(permille) / 1000.0),
            Edge::LossOff => sim.set_drop_prob(base_drop_prob),
        }
    }
    run_to(sim, horizon);
}

/// Advances the simulation to absolute time `t`, pushing through protocol
/// `stop()` requests (a node declaring itself done must not end the trial).
fn run_to<N: Node>(sim: &mut Sim<N>, t: u64) {
    if sim.now() >= Time(t) {
        return;
    }
    let mut guard = 0u32;
    while sim.run_until(Time(t)) == RunOutcome::Stopped {
        guard += 1;
        if guard > 10_000 {
            break; // a stop() storm; the harvest will judge what happened
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Context, DropAll, NetConfig, Payload};

    #[derive(Clone, Debug)]
    struct Tick;
    impl Payload for Tick {}

    /// Every 10ms node 0 sends a tick to node 1, which counts arrivals.
    struct Ticker {
        got: u64,
    }
    impl Node for Ticker {
        type Msg = Tick;
        fn on_start(&mut self, ctx: &mut Context<Tick>) {
            if ctx.id() == NodeId(0) {
                ctx.set_timer(10_000, 0);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<Tick>, _f: NodeId, _m: Tick) {
            self.got += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<Tick>, _t: simnet::Timer) {
            ctx.send(NodeId(1), Tick);
            ctx.set_timer(10_000, 0);
        }
    }

    fn ticker_sim(seed: u64) -> Sim<Ticker> {
        let mut sim = Sim::new(NetConfig::synchronous(), seed);
        sim.add_node(Ticker { got: 0 });
        sim.add_node(Ticker { got: 0 });
        sim
    }

    #[test]
    fn windows_toggle_filters_and_loss() {
        // Mute node 0 for ticks 3..6 (window 25ms–55ms): arrivals 1,2,6,7,8.
        let mut sim = ticker_sim(1);
        let plan = FaultPlan {
            actions: vec![FaultAction::Mute {
                node: 0,
                from: 25_000,
                until: 55_000,
            }],
        };
        execute_plan(&mut sim, &plan, 85_000, 0.0, |kind, _| {
            assert_eq!(kind, WindowKind::Mute);
            Some(Box::new(DropAll))
        });
        assert_eq!(sim.node(NodeId(1)).got, 5);
        assert_eq!(sim.metrics().dropped_filter, 3);

        // A total-loss burst over the same window behaves identically at
        // the receiver but counts as random loss.
        let mut sim = ticker_sim(2);
        let plan = FaultPlan {
            actions: vec![FaultAction::LossBurst {
                from: 25_000,
                until: 55_000,
                permille: 1000,
            }],
        };
        execute_plan(&mut sim, &plan, 85_000, 0.0, |_, _| None);
        assert_eq!(sim.node(NodeId(1)).got, 5);
        assert_eq!(sim.metrics().dropped_loss, 3);
    }

    #[test]
    fn point_faults_are_scheduled() {
        let mut sim = ticker_sim(3);
        let plan = FaultPlan {
            actions: vec![
                FaultAction::Crash { node: 1, at: 15_000 },
                FaultAction::Restart { node: 1, at: 45_000 },
                FaultAction::Partition {
                    at: 55_000,
                    group: vec![0],
                },
                FaultAction::Heal { at: 75_000 },
            ],
        };
        execute_plan(&mut sim, &plan, 95_000, 0.0, |_, _| None);
        let m = sim.metrics();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.restarts, 1);
        // Ticks at 20,30,40ms hit a dead node; 60,70ms hit the partition;
        // 10,50,80,90ms arrive.
        assert_eq!(m.dropped_dead, 3);
        assert_eq!(m.dropped_partition, 2);
        assert_eq!(sim.node(NodeId(1)).got, 4);
    }
}
