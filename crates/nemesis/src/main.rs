//! `nemesis` — sweep seeds × protocols, print a verdict table, and persist
//! shrunk counterexamples for any violation found.
//!
//! ```text
//! nemesis [--seeds N] [--protocols a,b,c] [--replay FILE [--trace-out PATH]]
//! ```
//!
//! * `--seeds N` — seeds `0..N` per protocol (default 20).
//! * `--protocols` — comma-separated subset (default: the full registry).
//!   `paxos-buggy` (the injected quorum-overlap bug) is opt-in only.
//! * `--replay FILE` — re-run a stored counterexample instead of sweeping;
//!   exits 0 iff the stored violations reproduce exactly.
//! * `--trace-out PATH` — with `--replay`: re-run the counterexample's
//!   schedule with trace recording on and write the Chrome `trace_event`
//!   JSON timeline to `PATH` (causal spans for the store targets, instant
//!   events elsewhere). Load it in Perfetto or `chrome://tracing`.
//!
//! Exit status: 0 if every trial passed (or the replay reproduced), 1 if any
//! violation was found (counterexamples are written to the working
//! directory), 2 on usage errors.

use std::process::ExitCode;

use nemesis::{by_name, quiet_panics, replay, shrink, sweep, targets, Counterexample, Target};

struct Args {
    seeds: u64,
    protocols: Option<Vec<String>>,
    replay: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 20,
        protocols: None,
        replay: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|_| format!("bad seed count {v:?}"))?;
            }
            "--protocols" => {
                let v = it.next().ok_or("--protocols needs a value")?;
                args.protocols = Some(v.split(',').map(str::to_string).collect());
            }
            "--replay" => {
                args.replay = Some(it.next().ok_or("--replay needs a file")?);
            }
            "--trace-out" => {
                args.trace_out = Some(it.next().ok_or("--trace-out needs a path")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: nemesis [--seeds N] [--protocols a,b,c] [--replay FILE [--trace-out PATH]]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.trace_out.is_some() && args.replay.is_none() {
        return Err("--trace-out only makes sense with --replay".to_string());
    }
    Ok(args)
}

fn resolve_targets(names: &Option<Vec<String>>) -> Result<Vec<Box<dyn Target>>, String> {
    match names {
        None => Ok(targets()),
        Some(list) => list
            .iter()
            .map(|n| by_name(n).ok_or_else(|| format!("unknown protocol {n:?}")))
            .collect(),
    }
}

fn run_replay(path: &str, trace_out: Option<&str>) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cx = Counterexample::from_json(&text)?;
    let target = by_name(&cx.protocol).ok_or_else(|| format!("unknown protocol {:?}", cx.protocol))?;
    println!(
        "replaying {} seed {} ({} actions): {}",
        cx.protocol,
        cx.seed,
        cx.plan.actions.len(),
        cx.plan.summary()
    );
    let observed = quiet_panics(|| replay(target.as_ref(), &cx));
    for v in &observed {
        println!("  observed: {v}");
    }
    if let Some(out) = trace_out {
        // The traced re-run may hit the same panic `run_plan` converted
        // into a finding; a counterexample without a timeline is still a
        // counterexample, so degrade to a note instead of crashing.
        let traced = quiet_panics(|| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                target.trace_json(cx.seed, &cx.plan)
            }))
            .ok()
            .flatten()
        });
        match traced {
            Some(json) => {
                std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("causal trace written to {out}");
            }
            None => println!(
                "no trace available for {} (no hook, or the traced re-run panicked)",
                cx.protocol
            ),
        }
    }
    if observed == cx.violations {
        println!("reproduced: {} violation(s), exactly as stored", observed.len());
        Ok(ExitCode::SUCCESS)
    } else {
        println!("MISMATCH: stored {:?}, observed {observed:?}", cx.violations);
        Ok(ExitCode::FAILURE)
    }
}

fn run_sweep(args: &Args) -> Result<ExitCode, String> {
    let targets = resolve_targets(&args.protocols)?;
    println!(
        "nemesis: {} seeds × {} protocol(s)\n",
        args.seeds,
        targets.len()
    );
    println!("| protocol     | trials | ops  | violations | verdict |");
    println!("|--------------|--------|------|------------|---------|");
    let mut artifacts: Vec<String> = Vec::new();
    for target in &targets {
        let result = quiet_panics(|| sweep(target.as_ref(), 0..args.seeds));
        let verdict = if result.failures.is_empty() {
            "pass"
        } else {
            "FAIL"
        };
        println!(
            "| {:<12} | {:>6} | {:>4} | {:>10} | {:<7} |",
            result.protocol,
            result.trials,
            result.ops,
            result.failures.len(),
            verdict
        );
        for failure in &result.failures {
            let shrunk = quiet_panics(|| shrink(target.as_ref(), failure.seed, &failure.plan));
            let report = quiet_panics(|| nemesis::run_plan(target.as_ref(), failure.seed, &shrunk));
            let cx = Counterexample {
                protocol: result.protocol.clone(),
                seed: failure.seed,
                plan: shrunk,
                violations: report.violations.iter().map(|v| v.to_string()).collect(),
            };
            let file = format!("nemesis-{}-{}.json", result.protocol, failure.seed);
            std::fs::write(&file, cx.to_json())
                .map_err(|e| format!("cannot write {file}: {e}"))?;
            artifacts.push(file);
        }
    }
    if artifacts.is_empty() {
        println!("\nall trials passed");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("\ncounterexamples written (replay with --replay FILE):");
        for a in &artifacts {
            println!("  {a}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match &args.replay {
        Some(path) => run_replay(path, args.trace_out.as_deref()),
        None => run_sweep(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
