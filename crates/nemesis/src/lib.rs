//! # nemesis — randomized fault-schedule exploration with history-based
//! safety checking
//!
//! A Jepsen-style test harness for the protocol zoo, built on the
//! deterministic simulator: draw a random-but-replayable fault schedule from
//! each protocol's declared fault model, run the protocol under it, harvest
//! the client-visible history and per-node decisions, and check the safety
//! properties the survey says must hold *regardless of scheduling* —
//! agreement, validity, integrity, state-machine consistency,
//! linearizability, and atomic-commit consistency. Liveness is explicitly
//! not checked: an adversarial schedule may legally starve progress.
//!
//! Because the whole trial is a pure function of `(protocol, seed, plan)`,
//! a violating schedule can be **shrunk** — greedily dropping actions while
//! the failure persists — into a minimal counterexample, serialized to
//! JSON, and replayed bit-for-bit anywhere.
//!
//! Module map:
//!
//! * [`plan`] — fault actions, schedules, per-protocol fault specs, and the
//!   seeded generator.
//! * [`exec`] — drives a plan through a live [`simnet::Sim`].
//! * [`checker`] — history-based safety checks shared across protocols.
//! * [`lin`] — Wing–Gill linearizability checking for the KV machine.
//! * [`targets`] — one adapter per protocol (Multi-Paxos, Raft, PBFT, 2PC,
//!   3PC, Ben-Or, and the sharded store over either SMR engine) plus the
//!   deliberately broken Flexible-Paxos and early-write store
//!   configurations that prove the engine catches real bugs.
//! * [`engine`] — sweeps, shrinking, counterexample (de)serialization, and
//!   replay.

pub mod checker;
pub mod engine;
pub mod exec;
pub mod lin;
pub mod plan;
pub mod targets;

pub use checker::{DecidedEntry, Violation};
pub use engine::{
    quiet_panics, replay, run_plan, run_trial, shrink, sweep, Counterexample, Failure, SweepResult,
};
pub use exec::{execute_plan, WindowKind};
pub use lin::check_linearizable;
pub use plan::{generate, FaultAction, FaultPlan, FaultSpec};
pub use targets::{
    by_name, client_evidence, harvest_paxos, harvest_pbft, harvest_raft, injected_bug_target,
    smr_safety, store_injected_bug_target, targets, RunReport, Target,
};
