//! Fault plans: what the nemesis does to a run, when, and to whom.
//!
//! A [`FaultPlan`] is a list of timed [`FaultAction`]s generated from a
//! protocol's declared [`FaultSpec`] (its taxonomy fault model projected
//! onto simulator capabilities) and a seed. Generation is a pure function of
//! `(spec, seed)` — together with the deterministic simulator this makes
//! every trial replayable from two integers — and plans serialize to JSON so
//! a violating schedule can be stored, shipped, and re-run bit-for-bit.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use serde_json::Value;

/// Domain-separation tag mixed into the plan-generation RNG seed so plan
/// randomness is independent of the simulator's own per-seed streams.
const PLAN_SALT: u64 = 0x006e_656d_6573_6973; // "nemesis"

/// One timed fault. All times are simulated microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash-stop `node` at `at` (state is preserved; timers die).
    Crash {
        /// Target node.
        node: u32,
        /// When.
        at: u64,
    },
    /// Restart a crashed `node` at `at` (crash-recovery model).
    Restart {
        /// Target node.
        node: u32,
        /// When.
        at: u64,
    },
    /// Split the network: `group` on one side, everyone else on the other.
    Partition {
        /// When.
        at: u64,
        /// One side of the split.
        group: Vec<u32>,
    },
    /// Remove any active partition.
    Heal {
        /// When.
        at: u64,
    },
    /// Byzantine omission: drop everything `node` sends during the window.
    Mute {
        /// Target node.
        node: u32,
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// Byzantine equivocation: `node` tells different peers different
    /// things during the window (the concrete lie is protocol-specific).
    Equivocate {
        /// Target node.
        node: u32,
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
    },
    /// Raise the random message-loss probability during the window.
    LossBurst {
        /// Window start.
        from: u64,
        /// Window end.
        until: u64,
        /// Loss probability in thousandths (0–1000).
        permille: u32,
    },
}

impl FaultAction {
    /// The time the action first takes effect (used for display ordering).
    pub fn at(&self) -> u64 {
        match self {
            FaultAction::Crash { at, .. }
            | FaultAction::Restart { at, .. }
            | FaultAction::Partition { at, .. }
            | FaultAction::Heal { at } => *at,
            FaultAction::Mute { from, .. }
            | FaultAction::Equivocate { from, .. }
            | FaultAction::LossBurst { from, .. } => *from,
        }
    }

    fn to_value(&self) -> Value {
        match self {
            FaultAction::Crash { node, at } => {
                serde_json::json!({"kind": "crash", "node": *node, "at": *at})
            }
            FaultAction::Restart { node, at } => {
                serde_json::json!({"kind": "restart", "node": *node, "at": *at})
            }
            FaultAction::Partition { at, group } => serde_json::json!({
                "kind": "partition",
                "at": *at,
                "group": group.clone(),
            }),
            FaultAction::Heal { at } => serde_json::json!({"kind": "heal", "at": *at}),
            FaultAction::Mute { node, from, until } => serde_json::json!({
                "kind": "mute", "node": *node, "from": *from, "until": *until,
            }),
            FaultAction::Equivocate { node, from, until } => serde_json::json!({
                "kind": "equivocate", "node": *node, "from": *from, "until": *until,
            }),
            FaultAction::LossBurst {
                from,
                until,
                permille,
            } => serde_json::json!({
                "kind": "loss", "from": *from, "until": *until, "permille": *permille,
            }),
        }
    }

    fn from_value(v: &Value) -> Result<FaultAction, String> {
        let kind = v
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("action missing kind")?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{kind} action missing {name}"))
        };
        match kind {
            "crash" => Ok(FaultAction::Crash {
                node: field("node")? as u32,
                at: field("at")?,
            }),
            "restart" => Ok(FaultAction::Restart {
                node: field("node")? as u32,
                at: field("at")?,
            }),
            "partition" => {
                let group = v
                    .get("group")
                    .and_then(Value::as_array)
                    .ok_or("partition missing group")?
                    .iter()
                    .map(|g| g.as_u64().map(|n| n as u32).ok_or("bad group member"))
                    .collect::<Result<Vec<u32>, _>>()?;
                Ok(FaultAction::Partition {
                    at: field("at")?,
                    group,
                })
            }
            "heal" => Ok(FaultAction::Heal { at: field("at")? }),
            "mute" => Ok(FaultAction::Mute {
                node: field("node")? as u32,
                from: field("from")?,
                until: field("until")?,
            }),
            "equivocate" => Ok(FaultAction::Equivocate {
                node: field("node")? as u32,
                from: field("from")?,
                until: field("until")?,
            }),
            "loss" => Ok(FaultAction::LossBurst {
                from: field("from")?,
                until: field("until")?,
                permille: field("permille")? as u32,
            }),
            other => Err(format!("unknown action kind {other:?}")),
        }
    }
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Crash { node, at } => write!(f, "t={at}µs crash n{node}"),
            FaultAction::Restart { node, at } => write!(f, "t={at}µs restart n{node}"),
            FaultAction::Partition { at, group } => {
                write!(f, "t={at}µs partition {group:?} | rest")
            }
            FaultAction::Heal { at } => write!(f, "t={at}µs heal"),
            FaultAction::Mute { node, from, until } => {
                write!(f, "t={from}–{until}µs mute n{node}")
            }
            FaultAction::Equivocate { node, from, until } => {
                write!(f, "t={from}–{until}µs equivocate n{node}")
            }
            FaultAction::LossBurst {
                from,
                until,
                permille,
            } => write!(f, "t={from}–{until}µs loss {permille}‰"),
        }
    }
}

/// A full nemesis schedule for one trial.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Actions, sorted by effect time.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// Serializes the plan as a JSON array value.
    pub fn to_value(&self) -> Value {
        Value::Array(self.actions.iter().map(FaultAction::to_value).collect())
    }

    /// Deserializes a plan from the JSON array produced by
    /// [`FaultPlan::to_value`].
    pub fn from_value(v: &Value) -> Result<FaultPlan, String> {
        let actions = v
            .as_array()
            .ok_or("plan is not an array")?
            .iter()
            .map(FaultAction::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { actions })
    }

    /// One-line rendering for verdict tables and logs.
    pub fn summary(&self) -> String {
        if self.actions.is_empty() {
            return "(no faults)".to_string();
        }
        self.actions
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// What a protocol declares the nemesis may do to it — the simulator-level
/// projection of the taxonomy card's failure model ("crash" vs "Byzantine")
/// and network assumptions.
///
/// Safety checks must pass for *every* plan drawn from the declared spec;
/// liveness is explicitly out of scope (a trial where nothing completes but
/// nothing contradicts is a pass).
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Processes eligible for faults (node ids `0..nodes`; clients above
    /// this range are never touched).
    pub nodes: u32,
    /// Max distinct nodes that may crash during a trial. For protocols
    /// whose *safety* survives any number of crash-stop faults (Paxos,
    /// Raft, PBFT) this equals `nodes`; protocols analysed under a bounded
    /// crash model (Ben-Or's `2f < n`) declare the bound.
    pub max_crash_nodes: u32,
    /// Whether crashed nodes may restart (crash-recovery model).
    pub allow_restart: bool,
    /// Whether network partitions are in-model.
    pub allow_partition: bool,
    /// Whether random message loss is in-model.
    pub allow_loss: bool,
    /// Max distinct Byzantine nodes (0 for crash-fault protocols).
    pub max_byzantine: u32,
    /// Whether Byzantine nodes may equivocate (vs omission only).
    pub allow_equivocation: bool,
    /// Trial horizon in simulated µs.
    pub horizon: u64,
}

/// Draws a random plan legal under `spec`. Pure function of `(spec, seed)`.
pub fn generate(spec: &FaultSpec, seed: u64) -> FaultPlan {
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ PLAN_SALT);
    let h = spec.horizon.max(1000);
    let mut actions: Vec<FaultAction> = Vec::new();

    // Crash / restart faults: pick the crashable subset first, then decide
    // per node — so the count of distinct crashed nodes respects the bound.
    let crashable = sample_nodes(&mut rng, spec.nodes, spec.max_crash_nodes);
    for node in crashable {
        if !rng.gen_bool(0.45) {
            continue;
        }
        let at = rng.gen_range(0..h / 2);
        actions.push(FaultAction::Crash { node, at });
        if spec.allow_restart && rng.gen_bool(0.6) {
            let back = at + rng.gen_range(h / 20..h / 3).max(1);
            if back < h {
                actions.push(FaultAction::Restart { node, at: back });
            }
        }
    }

    // One partition episode, usually healed.
    if spec.allow_partition && spec.nodes >= 2 && rng.gen_bool(0.5) {
        let at = rng.gen_range(0..h / 2);
        let size = rng.gen_range(1..spec.nodes);
        let group = sample_nodes(&mut rng, spec.nodes, size);
        actions.push(FaultAction::Partition { at, group });
        if rng.gen_bool(0.75) {
            let heal = at + rng.gen_range(h / 20..h / 2).max(1);
            if heal < h {
                actions.push(FaultAction::Heal { at: heal });
            }
        }
    }

    // One loss burst.
    if spec.allow_loss && rng.gen_bool(0.5) {
        let from = rng.gen_range(0..h * 2 / 3);
        let until = (from + rng.gen_range(h / 50..h / 4).max(1)).min(h);
        let permille = rng.gen_range(100..=1000);
        actions.push(FaultAction::LossBurst {
            from,
            until,
            permille,
        });
    }

    // Byzantine windows, one per faulty node, within the declared bound.
    let byzantine = sample_nodes(&mut rng, spec.nodes, spec.max_byzantine);
    for node in byzantine {
        if !rng.gen_bool(0.7) {
            continue;
        }
        let from = rng.gen_range(0..h / 2);
        let until = (from + rng.gen_range(h / 20..h / 2).max(1)).min(h);
        if spec.allow_equivocation && rng.gen_bool(0.5) {
            actions.push(FaultAction::Equivocate { node, from, until });
        } else {
            actions.push(FaultAction::Mute { node, from, until });
        }
    }

    actions.sort_by_key(|a| a.at());
    FaultPlan { actions }
}

/// Picks up to `k` distinct node ids from `0..n`, uniformly (partial
/// Fisher–Yates).
fn sample_nodes(rng: &mut ChaCha20Rng, n: u32, k: u32) -> Vec<u32> {
    let mut pool: Vec<u32> = (0..n).collect();
    let k = (k as usize).min(pool.len());
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_spec() -> FaultSpec {
        FaultSpec {
            nodes: 5,
            max_crash_nodes: 5,
            allow_restart: true,
            allow_partition: true,
            allow_loss: true,
            max_byzantine: 0,
            allow_equivocation: false,
            horizon: 1_000_000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = crash_spec();
        assert_eq!(generate(&spec, 7), generate(&spec, 7));
        // Some nearby seed gives a different plan.
        assert!((0..20).any(|s| generate(&spec, s) != generate(&spec, 7)));
    }

    #[test]
    fn plans_respect_the_spec() {
        let mut byz_spec = crash_spec();
        byz_spec.max_byzantine = 1;
        byz_spec.allow_equivocation = true;
        for seed in 0..200 {
            for (spec, byz_allowed) in [(crash_spec(), false), (byz_spec, true)] {
                let plan = generate(&spec, seed);
                let mut crashed = std::collections::BTreeSet::new();
                let mut byz = std::collections::BTreeSet::new();
                for a in &plan.actions {
                    match a {
                        FaultAction::Crash { node, at } => {
                            assert!(*node < spec.nodes);
                            assert!(*at < spec.horizon);
                            crashed.insert(*node);
                        }
                        FaultAction::Restart { node, at } => {
                            assert!(spec.allow_restart);
                            // The matching crash precedes it.
                            assert!(plan.actions.iter().any(|b| matches!(
                                b,
                                FaultAction::Crash { node: n2, at: a2 } if n2 == node && a2 < at
                            )));
                        }
                        FaultAction::Partition { group, .. } => {
                            assert!(spec.allow_partition);
                            assert!(!group.is_empty());
                            assert!(group.iter().all(|n| *n < spec.nodes));
                            assert!((group.len() as u32) < spec.nodes);
                        }
                        FaultAction::Heal { .. } => assert!(spec.allow_partition),
                        FaultAction::LossBurst { from, until, permille } => {
                            assert!(spec.allow_loss);
                            assert!(from < until);
                            assert!(*permille <= 1000);
                        }
                        FaultAction::Mute { node, from, until }
                        | FaultAction::Equivocate { node, from, until } => {
                            assert!(byz_allowed, "byzantine action under crash spec");
                            assert!(*node < spec.nodes);
                            assert!(from < until);
                            byz.insert(*node);
                        }
                    }
                }
                assert!(crashed.len() as u32 <= spec.max_crash_nodes);
                assert!(byz.len() as u32 <= spec.max_byzantine);
                // Sorted by effect time.
                assert!(plan.actions.windows(2).all(|w| w[0].at() <= w[1].at()));
            }
        }
    }

    #[test]
    fn plan_json_round_trips() {
        let spec = FaultSpec {
            max_byzantine: 2,
            allow_equivocation: true,
            ..crash_spec()
        };
        for seed in 0..50 {
            let plan = generate(&spec, seed);
            let text = serde_json::to_string(&plan.to_value()).unwrap();
            let back = FaultPlan::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back, plan, "seed {seed}");
        }
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            r#"{"kind": "crash"}"#,
            r#"[{"kind": "warp", "at": 3}]"#,
            r#"[{"kind": "crash", "at": 3}]"#,
            r#"[{"kind": "partition", "at": 3}]"#,
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(FaultPlan::from_value(&v).is_err(), "accepted {bad}");
        }
    }
}
