//! Protocol adapters: each wraps one cluster driver behind the uniform
//! [`Target`] interface the nemesis engine explores.
//!
//! An adapter declares its [`FaultSpec`] — the simulator-level projection of
//! the protocol's taxonomy card (which faults its *safety* argument claims
//! to survive) — and knows how to run one trial and harvest the evidence the
//! checkers consume: decided log entries, state digests, client histories,
//! final transaction states. The nemesis never reads protocol internals
//! beyond these harvests, so adding a protocol means writing one adapter.
//!
//! Fault menus per protocol:
//!
//! | target       | crash | restart | partition | loss | Byzantine |
//! |--------------|-------|---------|-----------|------|-----------|
//! | paxos        | any   | yes     | yes       | yes  | —         |
//! | raft         | any   | yes     | yes       | yes  | —         |
//! | pbft         | any   | yes     | yes       | yes  | ≤ f = 1   |
//! | 2pc          | ≤ 2   | no      | no        | yes  | —         |
//! | 3pc          | ≤ 1   | no      | no        | no   | —         |
//! | paxos-commit | ≤ F=1 | no      | no        | yes  | —         |
//! | ben-or       | ≤ f=1 | no      | no        | yes  | —         |
//! | store-*      | any   | yes     | yes       | yes  | —         |
//!
//! `paxos-commit` probes Gray & Lamport's non-blocking atomic commit at
//! `F = 1` (3 acceptors, coordinators co-located on the first 2, 3 RMs):
//! unlike 2PC, its safety *and* termination claims survive any single
//! crash — including the leader coordinator inside 2PC's blocking window —
//! so the nemesis may kill any one node.
//!
//! The `store-paxos` / `store-raft` targets probe the full sharded store
//! (`forty-store`): faultable nodes are every shard replica *and* every
//! router — a router crash is precisely the 2PC-coordinator crash that
//! blocks unreplicated 2PC. On top of the per-shard SMR battery they check
//! store-level linearizability of the merged client history, cross-shard
//! transactional atomicity ([`crate::checker::check_txn_atomicity`]), and
//! range-scan consistency of the fanned-out `Range` queries
//! ([`crate::checker::check_range_consistency`]). `store-paxos-durable` and
//! `store-raft-durable` run the same battery with durable shard storage
//! attached, so every crash/restart in a plan drives the real recovery path
//! (checkpoint load + WAL replay) instead of the RAM-durability model — for
//! Raft that is hard-state persistence, log WAL records, and snapshot
//! install, exactly as for Multi-Paxos.
//!
//! `store-geo` runs the geo deployment: three regions on a WAN topology,
//! primary+witness shard placement, a router per region, and the
//! region-local fast-read path (leader leases on Multi-Paxos). On top of
//! whatever the plan schedules, every `store-geo` trial injects its own
//! built-in adversity — seed-derived lease-edge clock skews straddling the
//! lease safety bound, plus one region partition window — because those are
//! precisely the conditions under which a buggy lease would serve a stale
//! read. Stale fast reads surface as linearizability violations in the
//! merged client history, so the standard battery is the oracle: the target
//! passes only if no schedule ever yields a stale linearizable read.
//!
//! The three SMR targets also register `+batch` variants (same fault menu)
//! that run the replicas under a real batching/pipelining configuration —
//! multi-command slots and bounded in-flight windows open failure modes
//! (partial batch re-proposal, pipeline holes after a leader crash) that
//! the unbatched configuration cannot reach.
//!
//! 3PC's menu is deliberately narrow: the protocol is *known* unsafe under
//! partitions and unbounded asynchrony (that is its lesson in the survey),
//! so the nemesis only probes the crash model it actually claims. Ben-Or
//! excludes restarts because a restarted node re-broadcasts its current
//! round's report, and the implementation counts report multiplicity.

use std::collections::BTreeSet;

use agreement::ben_or::BenOrNode;
use atomic_commit::three_phase::{self, CrashPoint};
use atomic_commit::{two_phase, TxnState};
use bft::pbft::{PbftCluster, PbftMsg};
use bft::sim_crypto::digest_of;
use consensus_core::{
    BatchConfig, ClientRecord, ClusterDriver as _, Command, HistorySink, KvCommand, QuorumSpec,
    WorkloadMode,
};
use paxos::multi::MultiPaxosCluster;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use simnet::{FilterAction, FnFilter, NetConfig, NodeId, Sim};

use crate::checker::{
    check_atomic_commit, check_binary_agreement, check_integrity, check_log_agreement,
    check_range_consistency, check_state_digests, check_txn_atomicity, check_validity,
    DecidedEntry, Violation,
};
use crate::exec::{execute_plan, WindowKind};
use crate::lin::{check_linearizable, DEFAULT_BUDGET};
use crate::plan::{FaultAction, FaultPlan, FaultSpec};
use store::{GeoConfig, RouterCrashPoint, ShardEngine, Store, StoreConfig};

/// Domain-separation salt for seed-derived workload parameters (votes,
/// Ben-Or inputs) so they are independent of both the simulator's and the
/// plan generator's randomness.
const WORKLOAD_SALT: u64 = 0x776b_6c64; // "wkld"

/// Outcome of one trial.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Safety violations found by the checkers (empty = pass).
    pub violations: Vec<Violation>,
    /// Client operations completed (progress indicator, not a check).
    pub ops: usize,
}

/// One protocol under nemesis exploration.
pub trait Target {
    /// Stable name used in verdict tables and counterexample files.
    fn name(&self) -> &'static str;
    /// The fault model this protocol's safety claims to survive.
    fn fault_spec(&self) -> FaultSpec;
    /// Runs one trial: build the cluster from `seed`, execute `plan`,
    /// harvest, and check. Must be a pure function of `(seed, plan)`.
    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport;
    /// Re-runs `(seed, plan)` with trace recording enabled and renders the
    /// run as Chrome `trace_event` JSON — the timeline a counterexample's
    /// fault schedule plays out on (`--trace-out` on replay). Recording
    /// never perturbs timing or RNG draws, so the traced run is
    /// bit-identical to the one [`Target::run`] checked. `None` for targets
    /// without a trace hook.
    fn trace_json(&self, _seed: u64, _plan: &FaultPlan) -> Option<String> {
        None
    }
}

/// The batching knob the `+batch` targets run under: small batches with a
/// real accumulation delay and a bounded pipeline window, so fault schedules
/// land while multi-command slots and in-flight pipelines are live.
const NEMESIS_BATCH: BatchConfig = BatchConfig::new(4, 300, 4);

/// All legitimate targets, in verdict-table order. Each SMR protocol
/// appears twice: unbatched (the historical configuration) and under
/// [`NEMESIS_BATCH`] — safety must hold for every knob setting.
pub fn targets() -> Vec<Box<dyn Target>> {
    vec![
        Box::new(PaxosTarget {
            buggy: false,
            batch: BatchConfig::unbatched(),
        }),
        Box::new(PaxosTarget {
            buggy: false,
            batch: NEMESIS_BATCH,
        }),
        Box::new(RaftTarget {
            batch: BatchConfig::unbatched(),
        }),
        Box::new(RaftTarget {
            batch: NEMESIS_BATCH,
        }),
        Box::new(PbftTarget {
            batch: BatchConfig::unbatched(),
        }),
        Box::new(PbftTarget {
            batch: NEMESIS_BATCH,
        }),
        Box::new(TwoPcTarget),
        Box::new(ThreePcTarget),
        Box::new(PaxosCommitTarget),
        Box::new(BenOrTarget),
        Box::new(StoreTarget::<MultiPaxosCluster> {
            name: "store-paxos",
            buggy: false,
            durable: false,
            geo: false,
            _engine: std::marker::PhantomData,
        }),
        Box::new(StoreTarget::<raft::RaftCluster> {
            name: "store-raft",
            buggy: false,
            durable: false,
            geo: false,
            _engine: std::marker::PhantomData,
        }),
        Box::new(StoreTarget::<MultiPaxosCluster> {
            name: "store-paxos-durable",
            buggy: false,
            durable: true,
            geo: false,
            _engine: std::marker::PhantomData,
        }),
        Box::new(StoreTarget::<raft::RaftCluster> {
            name: "store-raft-durable",
            buggy: false,
            durable: true,
            geo: false,
            _engine: std::marker::PhantomData,
        }),
        Box::new(StoreTarget::<MultiPaxosCluster> {
            name: "store-geo",
            buggy: false,
            durable: false,
            geo: true,
            _engine: std::marker::PhantomData,
        }),
    ]
}

/// The deliberately broken Flexible-Paxos configuration (`q1 + q2 ≤ n`, so
/// election and replication quorums need not intersect). Used to prove the
/// nemesis catches real safety bugs; never part of [`targets`].
pub fn injected_bug_target() -> Box<dyn Target> {
    Box::new(PaxosTarget {
        buggy: true,
        batch: BatchConfig::unbatched(),
    })
}

/// The deliberately broken store: the 2PC coordinator disseminates a
/// transaction's data writes *before* its decision entry is replicated,
/// and the trial crashes one router inside that window. Proves the
/// atomicity checker catches real cross-shard bugs; never part of
/// [`targets`].
pub fn store_injected_bug_target() -> Box<dyn Target> {
    Box::new(StoreTarget::<MultiPaxosCluster> {
        name: "store-buggy",
        buggy: true,
        durable: false,
        geo: false,
        _engine: std::marker::PhantomData,
    })
}

/// Resolves a target by name, including the injected-bug target (so stored
/// counterexamples can be replayed).
pub fn by_name(name: &str) -> Option<Box<dyn Target>> {
    match name {
        "paxos" => Some(Box::new(PaxosTarget {
            buggy: false,
            batch: BatchConfig::unbatched(),
        })),
        "paxos+batch" => Some(Box::new(PaxosTarget {
            buggy: false,
            batch: NEMESIS_BATCH,
        })),
        "paxos-buggy" => Some(injected_bug_target()),
        "raft" => Some(Box::new(RaftTarget {
            batch: BatchConfig::unbatched(),
        })),
        "raft+batch" => Some(Box::new(RaftTarget {
            batch: NEMESIS_BATCH,
        })),
        "pbft" => Some(Box::new(PbftTarget {
            batch: BatchConfig::unbatched(),
        })),
        "pbft+batch" => Some(Box::new(PbftTarget {
            batch: NEMESIS_BATCH,
        })),
        "2pc" => Some(Box::new(TwoPcTarget)),
        "3pc" => Some(Box::new(ThreePcTarget)),
        "paxos-commit" => Some(Box::new(PaxosCommitTarget)),
        "ben-or" => Some(Box::new(BenOrTarget)),
        "store-paxos" => Some(Box::new(StoreTarget::<MultiPaxosCluster> {
            name: "store-paxos",
            buggy: false,
            durable: false,
            geo: false,
            _engine: std::marker::PhantomData,
        })),
        "store-raft" => Some(Box::new(StoreTarget::<raft::RaftCluster> {
            name: "store-raft",
            buggy: false,
            durable: false,
            geo: false,
            _engine: std::marker::PhantomData,
        })),
        "store-paxos-durable" => Some(Box::new(StoreTarget::<MultiPaxosCluster> {
            name: "store-paxos-durable",
            buggy: false,
            durable: true,
            geo: false,
            _engine: std::marker::PhantomData,
        })),
        "store-raft-durable" => Some(Box::new(StoreTarget::<raft::RaftCluster> {
            name: "store-raft-durable",
            buggy: false,
            durable: true,
            geo: false,
            _engine: std::marker::PhantomData,
        })),
        "store-geo" => Some(Box::new(StoreTarget::<MultiPaxosCluster> {
            name: "store-geo",
            buggy: false,
            durable: false,
            geo: true,
            _engine: std::marker::PhantomData,
        })),
        "store-buggy" => Some(store_injected_bug_target()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Harvest helpers — also used by integration tests that drive clusters by
// hand and want the same checker-ready evidence the targets collect.
// ---------------------------------------------------------------------------

/// Harvests every Multi-Paxos replica's decided slots plus `(node,
/// applied_len, digest)` triples for the state-machine consistency check.
/// Batched slots are flattened to one entry per command by the driver.
pub fn harvest_paxos(cluster: &MultiPaxosCluster) -> (Vec<DecidedEntry>, Vec<(u32, u64, u64)>) {
    (cluster.decided_log(), cluster.state_digests())
}

/// Harvests every Raft replica's *committed* entries (an uncommitted suffix
/// may legally be overwritten; compacted prefixes are covered by the digest
/// check) plus `(node, last_applied, digest)` triples. Terms are baked into
/// the op identity so the agreement check also enforces Log Matching.
pub fn harvest_raft(cluster: &raft::RaftCluster) -> (Vec<DecidedEntry>, Vec<(u32, u64, u64)>) {
    (cluster.decided_log(), cluster.state_digests())
}

/// Harvests every PBFT replica's execution log plus `(node, executed_upto,
/// digest)` triples. A Byzantine replica's *outbound* messages may have
/// lied, but its local execution log is honestly built from what it
/// received, so its harvest is still evidence about the protocol.
/// Batched sequence numbers are flattened to one entry per command by the
/// driver.
pub fn harvest_pbft(cluster: &PbftCluster) -> (Vec<DecidedEntry>, Vec<(u32, u64, u64)>) {
    (cluster.decided_log(), cluster.state_digests())
}

/// Merges client histories and collects the set of `(client, seq)` pairs
/// actually issued — the reference set for the validity check.
pub fn client_evidence<'a>(
    sinks: impl IntoIterator<Item = &'a HistorySink>,
) -> (Vec<ClientRecord>, BTreeSet<(u32, u64)>) {
    let sinks: Vec<&HistorySink> = sinks.into_iter().collect();
    let issued = sinks
        .iter()
        .flat_map(|s| s.records().iter().map(|r| (r.client, r.seq)))
        .collect();
    (HistorySink::merge(sinks), issued)
}

/// The full SMR safety battery: log agreement, integrity, state-machine
/// consistency, linearizability — and validity when an issued-set is given
/// (PBFT passes `None`: the simulated crypto has no client signatures, so a
/// Byzantine primary injecting an invented request is in-model).
pub fn smr_safety(
    entries: &[DecidedEntry],
    digests: &[(u32, u64, u64)],
    history: &[ClientRecord],
    issued: Option<&BTreeSet<(u32, u64)>>,
) -> Vec<Violation> {
    let mut violations = check_log_agreement(entries);
    if let Some(issued) = issued {
        violations.extend(check_validity(entries, issued));
    }
    violations.extend(check_integrity(entries));
    violations.extend(check_state_digests(digests));
    violations.extend(check_linearizable(history, DEFAULT_BUDGET));
    violations
}

// Horizons are deliberately tight: `generate` draws fault times from the
// first half-ish of the horizon, so the horizon must be commensurate with
// the workload (elections ~40–100ms, a dozen closed-loop ops ~100–200ms of
// simulated time) for faults to actually land *during* the interesting
// window rather than after the run has quiesced.
const SMR_HORIZON: u64 = 600_000;
const COMMIT_HORIZON: u64 = 200_000;
const BEN_OR_HORIZON: u64 = 200_000;

fn smr_spec(nodes: u32) -> FaultSpec {
    FaultSpec {
        nodes,
        max_crash_nodes: nodes,
        allow_restart: true,
        allow_partition: true,
        allow_loss: true,
        max_byzantine: 0,
        allow_equivocation: false,
        horizon: SMR_HORIZON,
    }
}

// ---------------------------------------------------------------------------
// Multi-Paxos
// ---------------------------------------------------------------------------

struct PaxosTarget {
    /// Use the non-intersecting Flexible quorum spec (the injected bug).
    buggy: bool,
    /// Batching knob for the replicas under test.
    batch: BatchConfig,
}

impl PaxosTarget {
    fn build(&self, seed: u64) -> MultiPaxosCluster {
        let spec = if self.buggy {
            // q1 + q2 = 4 ≤ n = 5: a new leader's prepare quorum can miss
            // every acceptor that voted in a decided replication quorum.
            QuorumSpec::Flexible { n: 5, q1: 2, q2: 2 }
        } else {
            QuorumSpec::Majority { n: 5 }
        };
        MultiPaxosCluster::new_with(
            spec,
            5,
            2,
            6,
            NetConfig::lan(),
            seed,
            self.batch,
            WorkloadMode::Closed,
        )
    }
}

impl Target for PaxosTarget {
    fn name(&self) -> &'static str {
        match (self.buggy, self.batch.is_unbatched()) {
            (true, _) => "paxos-buggy",
            (false, true) => "paxos",
            (false, false) => "paxos+batch",
        }
    }

    fn fault_spec(&self) -> FaultSpec {
        smr_spec(5)
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let mut cluster = self.build(seed);
        execute_plan(&mut cluster.sim, plan, SMR_HORIZON, 0.0, |_, _| None);

        let (entries, digests) = harvest_paxos(&cluster);
        let (history, issued) = client_evidence(cluster.clients().map(|c| &c.history));
        RunReport {
            violations: smr_safety(&entries, &digests, &history, Some(&issued)),
            ops: cluster.total_completed(),
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let mut cluster = self.build(seed);
        cluster.sim.record_trace(true);
        execute_plan(&mut cluster.sim, plan, SMR_HORIZON, 0.0, |_, _| None);
        Some(simnet::causal::export_events(
            cluster.sim.trace(),
            cluster.sim.spans(),
        ))
    }
}

// ---------------------------------------------------------------------------
// Raft
// ---------------------------------------------------------------------------

struct RaftTarget {
    /// Batching knob for the replicas under test.
    batch: BatchConfig,
}

impl RaftTarget {
    fn build(&self, seed: u64) -> raft::RaftCluster {
        raft::RaftCluster::new_with(
            5,
            2,
            6,
            NetConfig::lan(),
            seed,
            self.batch,
            WorkloadMode::Closed,
        )
    }
}

impl Target for RaftTarget {
    fn name(&self) -> &'static str {
        if self.batch.is_unbatched() {
            "raft"
        } else {
            "raft+batch"
        }
    }

    fn fault_spec(&self) -> FaultSpec {
        smr_spec(5)
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let mut cluster = self.build(seed);
        execute_plan(&mut cluster.sim, plan, SMR_HORIZON, 0.0, |_, _| None);

        let (entries, digests) = harvest_raft(&cluster);
        let (history, issued) = client_evidence(cluster.clients().map(|c| &c.history));
        RunReport {
            violations: smr_safety(&entries, &digests, &history, Some(&issued)),
            ops: cluster.total_completed(),
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let mut cluster = self.build(seed);
        cluster.sim.record_trace(true);
        execute_plan(&mut cluster.sim, plan, SMR_HORIZON, 0.0, |_, _| None);
        Some(simnet::causal::export_events(
            cluster.sim.trace(),
            cluster.sim.spans(),
        ))
    }
}

// ---------------------------------------------------------------------------
// PBFT
// ---------------------------------------------------------------------------

struct PbftTarget {
    /// Batching knob for the replicas under test.
    batch: BatchConfig,
}

impl PbftTarget {
    fn build(&self, seed: u64) -> PbftCluster {
        PbftCluster::new_with(
            4,
            2,
            5,
            NetConfig::lan(),
            seed,
            self.batch,
            WorkloadMode::Closed,
        )
    }
}

/// Maps a Byzantine window onto PBFT's concrete outbound filter.
fn pbft_window_filter(kind: WindowKind) -> Box<dyn simnet::Filter<PbftMsg>> {
    match kind {
        WindowKind::Mute => Box::new(simnet::DropAll),
        WindowKind::Equivocate => Box::new(equivocation_filter()),
    }
}

impl Target for PbftTarget {
    fn name(&self) -> &'static str {
        if self.batch.is_unbatched() {
            "pbft"
        } else {
            "pbft+batch"
        }
    }

    fn fault_spec(&self) -> FaultSpec {
        FaultSpec {
            max_byzantine: 1, // f = 1 at n = 4
            allow_equivocation: true,
            ..smr_spec(4)
        }
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let mut cluster = self.build(seed);
        execute_plan(&mut cluster.sim, plan, SMR_HORIZON, 0.0, |kind, _node| {
            Some(pbft_window_filter(kind))
        });

        let (entries, digests) = harvest_pbft(&cluster);
        let (history, _issued) = client_evidence(cluster.clients().map(|c| &c.history));
        // `issued: None` skips the validity check — see [`smr_safety`].
        RunReport {
            violations: smr_safety(&entries, &digests, &history, None),
            ops: cluster.total_completed(),
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let mut cluster = self.build(seed);
        cluster.sim.record_trace(true);
        execute_plan(&mut cluster.sim, plan, SMR_HORIZON, 0.0, |kind, _node| {
            Some(pbft_window_filter(kind))
        });
        Some(simnet::causal::export_events(
            cluster.sim.trace(),
            cluster.sim.spans(),
        ))
    }
}

/// The equivocation lie for PBFT: odd-numbered destinations receive a forged
/// ordering (a command no client sent, with a self-consistent digest) in
/// place of the node's real `PrePrepare`/`Prepare`; even destinations hear
/// the truth. Splitting the backups this way is the classic attempt to get
/// two quorums to prepare different requests at the same sequence number.
fn equivocation_filter() -> FnFilter<
    impl FnMut(NodeId, NodeId, &PbftMsg, &mut ChaCha20Rng) -> FilterAction<PbftMsg> + Send,
> {
    // The forged request names the Byzantine node *itself* as the client.
    // Real PBFT authenticates client requests, so a lying primary cannot
    // impersonate an honest client — but it can always submit a request of
    // its own, which is exactly what this models. Using an honest client's
    // id here would poison that client's dedup entry in the replicas'
    // client tables (a later real command with a lower sequence number
    // would get the forged command's cached reply — an out-of-model forgery
    // the harness once flagged as a linearizability violation). Replies for
    // the forged request go to `NodeId(0)`, a replica, which ignores stray
    // `Reply` messages; the key is outside the workload's keyspace so
    // histories are untouched even if the lie were ever to commit.
    let forged = vec![Command {
        client: 0,
        seq: 9_999,
        op: KvCommand::Put {
            key: "evil".to_string(),
            value: "forged".to_string(),
        },
    }];
    FnFilter(move |_from, to: NodeId, msg: &PbftMsg, _rng: &mut ChaCha20Rng| {
        if to.0.is_multiple_of(2) {
            return FilterAction::Deliver;
        }
        match msg {
            PbftMsg::PrePrepare { view, n, .. } => FilterAction::Replace(PbftMsg::PrePrepare {
                view: *view,
                n: *n,
                digest: digest_of(&forged),
                cmds: forged.clone(),
            }),
            PbftMsg::Prepare { view, n, .. } => FilterAction::Replace(PbftMsg::Prepare {
                view: *view,
                n: *n,
                digest: digest_of(&forged),
            }),
            _ => FilterAction::Deliver,
        }
    })
}

// ---------------------------------------------------------------------------
// Atomic commit: 2PC / 3PC
// ---------------------------------------------------------------------------

/// Seed-derived participant votes (mostly yes, so commits actually happen).
fn derive_votes(seed: u64, n: usize) -> Vec<bool> {
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ WORKLOAD_SALT);
    (0..n).map(|_| rng.gen_bool(0.8)).collect()
}

fn commit_states<N, F>(sim: &Sim<N>, state_of: F) -> Vec<(u32, TxnState)>
where
    N: simnet::Node,
    F: Fn(&N) -> TxnState,
{
    // Crashed nodes included: a decision made before crashing still counts
    // toward (or against) atomicity.
    sim.nodes().map(|(id, p)| (id.0, state_of(p))).collect()
}

struct TwoPcTarget;

impl Target for TwoPcTarget {
    fn name(&self) -> &'static str {
        "2pc"
    }

    fn fault_spec(&self) -> FaultSpec {
        FaultSpec {
            nodes: 4, // coordinator + 3 participants
            max_crash_nodes: 2,
            allow_restart: false,
            allow_partition: false,
            allow_loss: true,
            max_byzantine: 0,
            allow_equivocation: false,
            horizon: COMMIT_HORIZON,
        }
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let votes = derive_votes(seed, 3);
        let mut sim = two_phase::build(&votes, NetConfig::lan(), seed);
        execute_plan(&mut sim, plan, COMMIT_HORIZON, 0.0, |_, _| None);
        let states = commit_states(&sim, |p| match p {
            two_phase::TwoPcProc::Coordinator(c) => c.state,
            two_phase::TwoPcProc::Participant(p) => p.state,
        });
        let decided = states.iter().filter(|(_, s)| s.is_final()).count();
        RunReport {
            violations: check_atomic_commit(&votes, &states),
            ops: decided,
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let votes = derive_votes(seed, 3);
        let mut sim = two_phase::build(&votes, NetConfig::lan(), seed);
        sim.record_trace(true);
        execute_plan(&mut sim, plan, COMMIT_HORIZON, 0.0, |_, _| None);
        Some(simnet::causal::export_events(sim.trace(), sim.spans()))
    }
}

struct ThreePcTarget;

impl Target for ThreePcTarget {
    fn name(&self) -> &'static str {
        "3pc"
    }

    fn fault_spec(&self) -> FaultSpec {
        // 3PC's non-blocking termination protocol is only sound under
        // crash-stop faults on a reliable synchronous network — that is the
        // survey's whole point about it — so that is all the nemesis probes.
        FaultSpec {
            nodes: 4,
            max_crash_nodes: 1,
            allow_restart: false,
            allow_partition: false,
            allow_loss: false,
            max_byzantine: 0,
            allow_equivocation: false,
            horizon: COMMIT_HORIZON,
        }
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let votes = derive_votes(seed, 3);
        let mut sim = three_phase::build(&votes, CrashPoint::None, NetConfig::lan(), seed);
        execute_plan(&mut sim, plan, COMMIT_HORIZON, 0.0, |_, _| None);
        let states = commit_states(&sim, |p| match p {
            three_phase::ThreePcProc::Coordinator(c) => c.state,
            three_phase::ThreePcProc::Participant(p) => p.state,
        });
        let decided = states.iter().filter(|(_, s)| s.is_final()).count();
        RunReport {
            violations: check_atomic_commit(&votes, &states),
            ops: decided,
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let votes = derive_votes(seed, 3);
        let mut sim = three_phase::build(&votes, CrashPoint::None, NetConfig::lan(), seed);
        sim.record_trace(true);
        execute_plan(&mut sim, plan, COMMIT_HORIZON, 0.0, |_, _| None);
        Some(simnet::causal::export_events(sim.trace(), sim.spans()))
    }
}

// ---------------------------------------------------------------------------
// Paxos Commit
// ---------------------------------------------------------------------------

/// Gray & Lamport's Paxos Commit at `F = 1`: one Paxos instance per RM
/// vote over a shared 3-acceptor set, with 2 co-located coordinators.
/// The node map is acceptors 0–2 (coordinators on 0–1, node 0 leading)
/// and RMs 3–5, so a plan crashing node 0 is exactly the coordinator
/// crash that blocks unreplicated 2PC.
struct PaxosCommitTarget;

/// The `F = 1`, three-RM layout every `paxos-commit` trial runs.
const PC_LAYOUT: atomic_commit::paxos_commit::Layout =
    atomic_commit::paxos_commit::Layout { f: 1, n_rms: 3 };

impl Target for PaxosCommitTarget {
    fn name(&self) -> &'static str {
        "paxos-commit"
    }

    fn fault_spec(&self) -> FaultSpec {
        // The protocol claims non-blocking termination under F = 1 crash
        // faults plus message loss; partitions and restarts are outside
        // the card (acceptor state is volatile in this model).
        FaultSpec {
            nodes: PC_LAYOUT.n_nodes() as u32,
            max_crash_nodes: 1,
            allow_restart: false,
            allow_partition: false,
            allow_loss: true,
            max_byzantine: 0,
            allow_equivocation: false,
            horizon: COMMIT_HORIZON,
        }
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let votes = derive_votes(seed, PC_LAYOUT.n_rms);
        let mut sim = atomic_commit::paxos_commit::build(&votes, PC_LAYOUT.f, NetConfig::lan(), seed);
        execute_plan(&mut sim, plan, COMMIT_HORIZON, 0.0, |_, _| None);
        let base = PC_LAYOUT.n_acceptors() as u32;
        let states: Vec<(u32, TxnState)> = atomic_commit::paxos_commit::participant_states(&sim)
            .into_iter()
            .enumerate()
            .map(|(i, s)| (base + i as u32, s))
            .collect();
        let decided = states.iter().filter(|(_, s)| s.is_final()).count();
        RunReport {
            violations: check_atomic_commit(&votes, &states),
            ops: decided,
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let votes = derive_votes(seed, PC_LAYOUT.n_rms);
        let mut sim = atomic_commit::paxos_commit::build(&votes, PC_LAYOUT.f, NetConfig::lan(), seed);
        sim.record_trace(true);
        execute_plan(&mut sim, plan, COMMIT_HORIZON, 0.0, |_, _| None);
        Some(simnet::causal::export_events(sim.trace(), sim.spans()))
    }
}

// ---------------------------------------------------------------------------
// Ben-Or
// ---------------------------------------------------------------------------

struct BenOrTarget;

/// Seed-derived Ben-Or cluster: five nodes with independent coin-flip
/// inputs (the inputs also feed the agreement/validity checks).
fn ben_or_sim(seed: u64) -> (Sim<BenOrNode>, Vec<u8>) {
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ WORKLOAD_SALT);
    let inputs: Vec<u8> = (0..5).map(|_| u8::from(rng.gen_bool(0.5))).collect();
    let mut sim: Sim<BenOrNode> = Sim::new(NetConfig::asynchronous(), seed);
    for &v in &inputs {
        sim.add_node(BenOrNode::new(5, 1, v));
    }
    (sim, inputs)
}

impl Target for BenOrTarget {
    fn name(&self) -> &'static str {
        "ben-or"
    }

    fn fault_spec(&self) -> FaultSpec {
        FaultSpec {
            nodes: 5,
            max_crash_nodes: 1, // f = 1 with n = 5 (needs 2f < n)
            allow_restart: false,
            allow_partition: false,
            allow_loss: true,
            max_byzantine: 0,
            allow_equivocation: false,
            horizon: BEN_OR_HORIZON,
        }
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let (mut sim, inputs) = ben_or_sim(seed);
        execute_plan(&mut sim, plan, BEN_OR_HORIZON, 0.0, |_, _| None);
        // Crashed nodes' decisions count too — a decision is irrevocable.
        let decisions: Vec<(u32, Option<u8>)> =
            sim.nodes().map(|(id, n)| (id.0, n.decided)).collect();
        let decided = decisions.iter().filter(|(_, d)| d.is_some()).count();
        RunReport {
            violations: check_binary_agreement(&decisions, &inputs),
            ops: decided,
        }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        let (mut sim, _inputs) = ben_or_sim(seed);
        sim.record_trace(true);
        execute_plan(&mut sim, plan, BEN_OR_HORIZON, 0.0, |_, _| None);
        Some(simnet::causal::export_events(sim.trace(), sim.spans()))
    }
}

// ---------------------------------------------------------------------------
// The sharded store (2PC over per-shard consensus groups)
// ---------------------------------------------------------------------------

/// Fault-placement horizon for the store: the router workload is active for
/// roughly the first 300ms of simulated time, so faults drawn from the
/// first half-ish of this window land mid-transaction.
const STORE_HORIZON: u64 = 400_000;
/// Hard cap on a store trial: adversarial schedules may stall shards (a
/// crashed majority is legal), so the trial stops here instead of quiescing.
const STORE_RUN_CAP: u64 = 6_000_000;
/// Run cap for `store-geo` trials: every consensus round pays a WAN round
/// trip (~40 ms), so the same workload needs an order of magnitude more
/// simulated time to quiesce.
const STORE_GEO_RUN_CAP: u64 = 60_000_000;
/// Domain-separation salt for `store-geo`'s built-in adversity (lease-edge
/// clock skews, the region partition window) so it is independent of both
/// the plan generator's and the workload's randomness.
const GEO_SALT: u64 = 0x6765_6f73; // "geos"

struct StoreTarget<E: ShardEngine> {
    /// Registry name (also encodes the engine choice).
    name: &'static str,
    /// Inject the early-dissemination coordinator bug and crash a router
    /// inside the vulnerable window (seed-derived, deterministic).
    buggy: bool,
    /// Run every shard over a durable storage engine (WAL + checkpoints):
    /// crash/restart faults then exercise the real recovery path — WAL
    /// replay plus snapshot load — instead of RAM-durability.
    durable: bool,
    /// Run the geo deployment (three regions, primary+witness placement,
    /// one router per region, leader-lease fast reads) and inject the
    /// built-in lease-edge skews and region partition on every trial.
    geo: bool,
    _engine: std::marker::PhantomData<E>,
}

impl<E: ShardEngine> StoreTarget<E> {
    /// Builds the store, applies the plan, and runs the workload plus the
    /// audit pass to completion. With `trace` set, causal-span recording is
    /// enabled before the first step — recording never perturbs timing or
    /// RNG draws, so the traced run is bit-identical to the checked one.
    fn drive(&self, seed: u64, plan: &FaultPlan, trace: bool) -> Store<E> {
        // Two range scans per router keep the range checkers exercised on
        // every store trial (they fan out across all shards and merge).
        let mut cfg = StoreConfig::new(seed)
            .buggy_early_writes(self.buggy)
            .ranges_per_router(2);
        if self.durable {
            cfg = cfg.durable(8, simnet::DiskModel::ssd());
        }
        if self.geo {
            // Three routers put one 2PC gateway in each of three_dc's
            // regions, so the read mix spans every locality class.
            cfg = cfg.routers(3).geo(GeoConfig::three_dc());
        }
        let mut s: Store<E> = Store::new(cfg);
        if trace {
            s.enable_tracing();
        }
        if self.buggy {
            // Deterministically crash one router inside the bug's window
            // (after the early data writes, before the decision CAS) so the
            // schedule reliably exposes the orphaned writes.
            s.crash_router_on_txn(
                (seed % 2) as usize,
                seed % 3,
                RouterCrashPoint::AfterEarlyWrites,
            );
        }

        // Crash/restart/partition/heal pre-schedule inside the shard sims;
        // loss bursts need live windows, handled in the step loop below.
        let mut bursts: Vec<(u64, u64, f64)> = Vec::new();
        for action in &plan.actions {
            match action {
                FaultAction::Crash { node, at } => s.crash_node_at(*node, *at),
                FaultAction::Restart { node, at } => s.restart_node_at(*node, *at),
                FaultAction::Partition { at, group } => s.partition_at(*at, group),
                FaultAction::Heal { at } => s.heal_at(*at),
                FaultAction::LossBurst {
                    from,
                    until,
                    permille,
                } => bursts.push((*from, *until, f64::from(*permille) / 1000.0)),
                // max_byzantine = 0: never generated for this spec.
                FaultAction::Mute { .. } | FaultAction::Equivocate { .. } => {}
            }
        }
        let drop_at = |now: u64| {
            bursts
                .iter()
                .filter(|&&(from, until, _)| from <= now && now < until)
                .map(|&(_, _, p)| p)
                .fold(0.0, f64::max)
        };
        // Built-in geo adversity, independent of the plan: every trial skews
        // each shard's initial leaseholder clock by a seed-derived offset
        // straddling the 5 ms lease safety bound (below → fast path must
        // stay correct, above → it must fall back) and partitions one region
        // off mid-workload. A lease that kept serving past its bound would
        // return stale values and fail the linearizability check.
        let mut skews: Vec<(u64, u32, u64)> = Vec::new();
        let cap = if self.geo { STORE_GEO_RUN_CAP } else { STORE_RUN_CAP };
        if self.geo {
            let mut rng = ChaCha20Rng::seed_from_u64(seed ^ GEO_SALT);
            let rps = 3u32; // StoreConfig::new: 3 shards × 3 replicas
            for shard in 0..3u32 {
                let at = rng.gen_range(10_000..STORE_HORIZON);
                let skew = rng.gen_range(0..12_000);
                skews.push((at, shard * rps, skew));
            }
            skews.sort_unstable();
            let at = 30_000 + rng.gen_range(0..STORE_HORIZON / 2);
            let region = rng.gen_range(0..3);
            s.partition_region_at(at, region);
            s.heal_at(at + 80_000 + rng.gen_range(0..120_000));
        }
        let mut next_skew = 0;
        while s.now() + store::QUANTUM_US <= cap && !s.main_quiesced() {
            while next_skew < skews.len() && skews[next_skew].0 <= s.now() {
                let (_, node, skew) = skews[next_skew];
                s.set_replica_skew(node, skew);
                next_skew += 1;
            }
            s.set_drop_prob(drop_at(s.now()));
            s.step();
        }
        // The audit pass reads every data key on a healed, loss-free
        // network — its observations feed the atomicity check.
        s.set_drop_prob(0.0);
        s.heal_at(s.now());
        s.start_audit();
        while s.now() + store::QUANTUM_US <= 2 * cap && !s.audit_done() {
            s.step();
        }
        s
    }
}

impl<E: ShardEngine> Target for StoreTarget<E> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fault_spec(&self) -> FaultSpec {
        // 3 shards × 3 replicas = global nodes 0..9, routers from 9 up —
        // two of them normally, three for the geo deployment (one per
        // region). Crashing a router is a 2PC-coordinator crash.
        let routers = if self.geo { 3 } else { 2 };
        FaultSpec {
            horizon: STORE_HORIZON,
            ..smr_spec(9 + routers)
        }
    }

    fn run(&self, seed: u64, plan: &FaultPlan) -> RunReport {
        let s = self.drive(seed, plan, false);

        let history = s.history();
        let issued: BTreeSet<(u32, u64)> =
            history.iter().map(|r| (r.client, r.seq)).collect();
        // Per-shard SMR battery (each shard is its own consensus group, so
        // logs and digests are only comparable within a shard) …
        let mut violations = Vec::new();
        for shard in s.shards() {
            violations.extend(check_log_agreement(&shard.decided_log()));
            violations.extend(check_validity(&shard.decided_log(), &issued));
            violations.extend(check_integrity(&shard.decided_log()));
            violations.extend(check_state_digests(&shard.state_digests()));
        }
        // … then the store-level checks over the merged client history.
        violations.extend(check_linearizable(&history, DEFAULT_BUDGET));
        violations.extend(check_txn_atomicity(&history));
        violations.extend(check_range_consistency(&history));
        let ops = history.iter().filter(|r| r.is_complete()).count();
        RunReport { violations, ops }
    }

    fn trace_json(&self, seed: u64, plan: &FaultPlan) -> Option<String> {
        // The store has full causal instrumentation, so its counterexample
        // trace is the real thing: complete spans (router ops, 2PC phases,
        // consensus rounds, WAL fsyncs) rather than instant events.
        let s = self.drive(seed, plan, true);
        Some(simnet::causal::chrome_trace(&s.causal_spans()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::generate;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = targets().iter().map(|t| t.name()).collect();
        let set: BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len());
        for n in names {
            assert!(by_name(n).is_some(), "unresolvable target {n}");
        }
        assert_eq!(by_name("paxos-buggy").unwrap().name(), "paxos-buggy");
        assert!(by_name("viewstamped").is_none());
    }

    #[test]
    fn fault_free_trials_pass_and_make_progress() {
        let empty = FaultPlan::default();
        for target in targets() {
            let report = target.run(1, &empty);
            assert!(
                report.violations.is_empty(),
                "{} violates safety with no faults: {:?}",
                target.name(),
                report.violations
            );
            assert!(report.ops > 0, "{} made no progress", target.name());
        }
    }

    #[test]
    fn batched_targets_survive_a_bounded_fault_sweep() {
        // The satellite guarantee for the batching knob: randomized fault
        // schedules (crashes, partitions, loss — and for PBFT, Byzantine
        // windows) find no safety violation in any batched configuration.
        for name in ["paxos+batch", "raft+batch", "pbft+batch"] {
            let target = by_name(name).expect("registered");
            assert_eq!(target.name(), name);
            for seed in 0..5 {
                let plan = generate(&target.fault_spec(), seed);
                let report = target.run(seed, &plan);
                assert!(
                    report.violations.is_empty(),
                    "{name} seed {seed} violated under {}: {:?}",
                    plan.summary(),
                    report.violations
                );
            }
        }
    }

    #[test]
    fn durable_store_crash_restart_exercises_recovery() {
        // Point an explicit crash/restart schedule at the durable store: one
        // replica per shard dies mid-workload and restarts through the real
        // recovery path (checkpoint load + WAL replay). The oracle is the
        // full checker battery plus bit-identical reruns — recovery must be
        // both safe and deterministic.
        let target = by_name("store-paxos-durable").expect("registered");
        let plan = FaultPlan {
            actions: vec![
                FaultAction::Crash { node: 2, at: 20_000 },
                FaultAction::Crash { node: 5, at: 25_000 },
                FaultAction::Crash { node: 8, at: 30_000 },
                FaultAction::Restart { node: 2, at: 40_000 },
                FaultAction::Restart { node: 5, at: 45_000 },
                FaultAction::Restart { node: 8, at: 50_000 },
            ],
        };
        let a = target.run(17, &plan);
        assert!(
            a.violations.is_empty(),
            "durable store violated safety across recovery: {:?}",
            a.violations
        );
        assert!(a.ops > 0, "durable store made no progress");
        let b = target.run(17, &plan);
        assert_eq!(a.violations, b.violations, "recovery not deterministic");
        assert_eq!(a.ops, b.ops, "recovery not deterministic");
    }

    #[test]
    fn durable_raft_store_crash_restart_exercises_recovery() {
        // The Raft twin of the paxos-durable schedule: one replica per
        // shard dies mid-workload and restarts through Raft's real
        // recovery path (snapshot load + WAL replay of hard state, log
        // entries, and commit markers). Safety battery plus bit-identical
        // reruns.
        let target = by_name("store-raft-durable").expect("registered");
        let plan = FaultPlan {
            actions: vec![
                FaultAction::Crash { node: 2, at: 20_000 },
                FaultAction::Crash { node: 5, at: 25_000 },
                FaultAction::Crash { node: 8, at: 30_000 },
                FaultAction::Restart { node: 2, at: 40_000 },
                FaultAction::Restart { node: 5, at: 45_000 },
                FaultAction::Restart { node: 8, at: 50_000 },
            ],
        };
        let a = target.run(17, &plan);
        assert!(
            a.violations.is_empty(),
            "durable raft store violated safety across recovery: {:?}",
            a.violations
        );
        assert!(a.ops > 0, "durable raft store made no progress");
        let b = target.run(17, &plan);
        assert_eq!(a.violations, b.violations, "recovery not deterministic");
        assert_eq!(a.ops, b.ops, "recovery not deterministic");
    }

    #[test]
    fn geo_store_region_partition_never_serves_stale_reads() {
        // The pinned region-partition regression for the geo deployment.
        // Under three_dc + primary+witness placement, region 0 hosts global
        // replicas 0 and 1 (shard 0's majority) and 8 (shard 2's witness);
        // partitioning exactly that set mid-workload isolates shard 0's
        // leaseholder with its lease still valid — the window where a buggy
        // lease would keep serving reads while it can no longer learn of
        // new commits. On top of that ride store-geo's built-in lease-edge
        // clock skews and seed-derived region partition. The oracle is the
        // full battery: any stale fast read is a linearizability violation.
        let target = by_name("store-geo").expect("registered");
        let plan = FaultPlan {
            actions: vec![
                FaultAction::Partition {
                    at: 60_000,
                    group: vec![0, 1, 8],
                },
                FaultAction::Heal { at: 220_000 },
            ],
        };
        let a = target.run(11, &plan);
        assert!(
            a.violations.is_empty(),
            "geo store served a stale read (or worse) across the region partition: {:?}",
            a.violations
        );
        assert!(a.ops > 0, "geo store made no progress");
        let b = target.run(11, &plan);
        assert_eq!(a.violations, b.violations, "geo trial not deterministic");
        assert_eq!(a.ops, b.ops, "geo trial not deterministic");
    }

    #[test]
    fn paxos_commit_survives_leader_coordinator_crash() {
        // The pinned regression for the non-blocking claim: kill the leader
        // coordinator (node 0) at the same instant the protocol's own
        // crash-point harness uses — inside 2PC's blocking window — and the
        // backup coordinator must still drive every RM to the unanimous
        // commit. 2PC under this schedule blocks forever; Paxos Commit
        // must not.
        let target = by_name("paxos-commit").expect("registered");
        let seed = (0..64)
            .find(|&s| derive_votes(s, 3).iter().all(|&v| v))
            .expect("some seed yields unanimous yes-votes");
        let plan = FaultPlan {
            actions: vec![FaultAction::Crash { node: 0, at: 10_000 }],
        };
        let report = target.run(seed, &plan);
        assert!(
            report.violations.is_empty(),
            "paxos-commit violated safety under leader crash: {:?}",
            report.violations
        );
        assert_eq!(
            report.ops, 3,
            "leader crash must not block any RM (decided {} of 3)",
            report.ops
        );

        let votes = derive_votes(seed, 3);
        let mut sim =
            atomic_commit::paxos_commit::build(&votes, PC_LAYOUT.f, NetConfig::lan(), seed);
        execute_plan(&mut sim, &plan, COMMIT_HORIZON, 0.0, |_, _| None);
        assert!(
            atomic_commit::paxos_commit::participant_states(&sim)
                .iter()
                .all(|s| *s == TxnState::Committed),
            "unanimous yes-votes must commit despite the leader crash"
        );
    }

    #[test]
    fn every_target_has_a_trace_hook() {
        // `--trace-out` must be able to dump a timeline for any stored
        // counterexample, so every registered target (and both injected-bug
        // targets) implements `trace_json`.
        let empty = FaultPlan::default();
        let mut all = targets();
        all.push(injected_bug_target());
        all.push(store_injected_bug_target());
        for target in &all {
            let json = target
                .trace_json(1, &empty)
                .unwrap_or_else(|| panic!("{} has no trace hook", target.name()));
            assert!(
                json.starts_with("{\"traceEvents\":[{"),
                "{}: empty or malformed trace",
                target.name()
            );
            assert!(
                json.trim_end().ends_with('}'),
                "{}: truncated trace",
                target.name()
            );
        }
    }

    #[test]
    fn trials_are_deterministic() {
        for target in targets() {
            let plan = generate(&target.fault_spec(), 3);
            let a = target.run(3, &plan);
            let b = target.run(3, &plan);
            assert_eq!(
                a.violations, b.violations,
                "{} not deterministic",
                target.name()
            );
            assert_eq!(a.ops, b.ops, "{} not deterministic", target.name());
        }
    }
}
