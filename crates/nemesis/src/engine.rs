//! The exploration engine: run trials, sweep seeds, shrink violating plans
//! to minimal counterexamples, and replay stored artifacts.

use std::panic::{self, AssertUnwindSafe};

use serde_json::Value;

use crate::checker::Violation;
use crate::plan::{generate, FaultAction, FaultPlan};
use crate::targets::{RunReport, Target};

/// Runs one trial, converting a panic inside the protocol or a checker into
/// a reported violation — several drivers assert safety internally (e.g.
/// `ReplicatedLog::decide` panics on a conflicting re-decision), and those
/// detections are findings, not crashes.
pub fn run_plan(target: &dyn Target, seed: u64, plan: &FaultPlan) -> RunReport {
    match panic::catch_unwind(AssertUnwindSafe(|| target.run(seed, plan))) {
        Ok(report) => report,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            RunReport {
                violations: vec![Violation {
                    check: "panic",
                    detail: msg,
                }],
                ops: 0,
            }
        }
    }
}

/// Generates the plan for `seed` from the target's declared fault model and
/// runs it.
pub fn run_trial(target: &dyn Target, seed: u64) -> (FaultPlan, RunReport) {
    let plan = generate(&target.fault_spec(), seed);
    let report = run_plan(target, seed, &plan);
    (plan, report)
}

/// Silences the default panic hook while `f` runs. Expected-panic trials
/// (the injected bug, shrinking) would otherwise spam stderr with backtraces
/// for panics that `run_plan` converts into findings.
pub fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let out = f();
    panic::set_hook(hook);
    out
}

/// One seed's failure within a sweep.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The violating seed.
    pub seed: u64,
    /// The generated plan (pre-shrink).
    pub plan: FaultPlan,
    /// What the checkers reported.
    pub violations: Vec<Violation>,
}

/// Aggregate result of sweeping one target across seeds.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Target name.
    pub protocol: String,
    /// Trials executed.
    pub trials: usize,
    /// Total client ops completed across trials.
    pub ops: usize,
    /// Seeds whose trials violated safety.
    pub failures: Vec<Failure>,
}

/// Runs `target` against every seed in `seeds`.
pub fn sweep(target: &dyn Target, seeds: impl IntoIterator<Item = u64>) -> SweepResult {
    let mut result = SweepResult {
        protocol: target.name().to_string(),
        trials: 0,
        ops: 0,
        failures: Vec::new(),
    };
    for seed in seeds {
        let (plan, report) = run_trial(target, seed);
        result.trials += 1;
        result.ops += report.ops;
        if !report.violations.is_empty() {
            result.failures.push(Failure {
                seed,
                plan,
                violations: report.violations,
            });
        }
    }
    result
}

/// Removes the action at `i`, plus — when it is a `Crash` — the first later
/// `Restart` of the same node, so shrinking never produces the nonsensical
/// "restart a node that never crashed". Leftover `Heal`s without a partition
/// are harmless no-ops and need no pairing.
fn without_action(plan: &FaultPlan, i: usize) -> FaultPlan {
    let mut actions = plan.actions.clone();
    let removed = actions.remove(i);
    if let FaultAction::Crash { node, at } = removed {
        if let Some(j) = actions.iter().position(
            |a| matches!(a, FaultAction::Restart { node: n, at: r } if *n == node && *r > at),
        ) {
            actions.remove(j);
        }
    }
    FaultPlan { actions }
}

/// Greedily minimizes a violating plan: repeatedly drop any single action
/// (with its dependent restart) whose removal keeps the trial failing, until
/// no further removal does. The result is a locally minimal counterexample —
/// every remaining action is necessary for the failure.
pub fn shrink(target: &dyn Target, seed: u64, plan: &FaultPlan) -> FaultPlan {
    let mut current = plan.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.actions.len() {
            let candidate = without_action(&current, i);
            if !run_plan(target, seed, &candidate).violations.is_empty() {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

/// A serialized minimal counterexample: everything needed to reproduce a
/// violation bit-for-bit on any machine.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Target name (resolved via [`crate::targets::by_name`] on replay).
    pub protocol: String,
    /// The violating seed.
    pub seed: u64,
    /// The (shrunk) fault plan.
    pub plan: FaultPlan,
    /// Violations observed when the artifact was produced.
    pub violations: Vec<String>,
}

impl Counterexample {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let v = serde_json::json!({
            "protocol": self.protocol.clone(),
            "seed": self.seed,
            "plan": self.plan.to_value(),
            "violations": self.violations.clone(),
        });
        serde_json::to_string_pretty(&v).unwrap()
    }

    /// Parses the JSON produced by [`Counterexample::to_json`].
    pub fn from_json(text: &str) -> Result<Counterexample, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e:?}"))?;
        let protocol = v
            .get("protocol")
            .and_then(Value::as_str)
            .ok_or("missing protocol")?
            .to_string();
        let seed = v.get("seed").and_then(Value::as_u64).ok_or("missing seed")?;
        let plan = FaultPlan::from_value(v.get("plan").ok_or("missing plan")?)?;
        let violations = v
            .get("violations")
            .and_then(Value::as_array)
            .ok_or("missing violations")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("bad violation entry"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Counterexample {
            protocol,
            seed,
            plan,
            violations,
        })
    }
}

/// Re-runs a stored counterexample. Returns the violations observed now —
/// determinism means they match the stored ones exactly.
pub fn replay(target: &dyn Target, cx: &Counterexample) -> Vec<String> {
    run_plan(target, cx.seed, &cx.plan)
        .violations
        .iter()
        .map(|v| v.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    /// A toy target that fails iff the plan crashes node 0 AND node 1.
    struct Toy;
    impl Target for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn fault_spec(&self) -> FaultSpec {
            FaultSpec {
                nodes: 3,
                max_crash_nodes: 3,
                allow_restart: true,
                allow_partition: true,
                allow_loss: true,
                max_byzantine: 0,
                allow_equivocation: false,
                horizon: 1_000_000,
            }
        }
        fn run(&self, _seed: u64, plan: &FaultPlan) -> RunReport {
            let crashed = |n: u32| {
                plan.actions
                    .iter()
                    .any(|a| matches!(a, FaultAction::Crash { node, .. } if *node == n))
            };
            let violations = if crashed(0) && crashed(1) {
                vec![Violation {
                    check: "toy",
                    detail: "both down".to_string(),
                }]
            } else {
                Vec::new()
            };
            RunReport { violations, ops: 1 }
        }
    }

    /// A target that panics on any plan (exercises catch_unwind).
    struct Panicky;
    impl Target for Panicky {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn fault_spec(&self) -> FaultSpec {
            Toy.fault_spec()
        }
        fn run(&self, _seed: u64, _plan: &FaultPlan) -> RunReport {
            panic!("safety violation: slot 3 decided twice");
        }
    }

    fn crash(node: u32, at: u64) -> FaultAction {
        FaultAction::Crash { node, at }
    }

    #[test]
    fn shrink_reaches_the_minimal_core() {
        let plan = FaultPlan {
            actions: vec![
                crash(0, 10),
                FaultAction::Restart { node: 0, at: 500 },
                crash(1, 20),
                crash(2, 30),
                FaultAction::Heal { at: 40 },
                FaultAction::LossBurst {
                    from: 0,
                    until: 100,
                    permille: 500,
                },
            ],
        };
        assert!(!run_plan(&Toy, 0, &plan).violations.is_empty());
        let shrunk = shrink(&Toy, 0, &plan);
        // Exactly the two necessary crashes survive; the paired restart
        // went away with nothing left to pair to.
        assert_eq!(shrunk.actions, vec![crash(0, 10), crash(1, 20)]);
        assert!(!run_plan(&Toy, 0, &shrunk).violations.is_empty());
    }

    #[test]
    fn panics_become_findings() {
        let report = quiet_panics(|| run_plan(&Panicky, 0, &FaultPlan::default()));
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].check, "panic");
        assert!(report.violations[0].detail.contains("decided twice"));
    }

    #[test]
    fn sweep_collects_failures() {
        // Toy's generated plans sometimes crash both 0 and 1; sweep must
        // report exactly those seeds as failures.
        let result = sweep(&Toy, 0..50);
        assert_eq!(result.trials, 50);
        assert!(!result.failures.is_empty(), "no failing seed in 50");
        for f in &result.failures {
            assert!(!run_plan(&Toy, f.seed, &f.plan).violations.is_empty());
        }
    }

    #[test]
    fn counterexample_round_trips() {
        let cx = Counterexample {
            protocol: "toy".to_string(),
            seed: 42,
            plan: FaultPlan {
                actions: vec![crash(0, 10), crash(1, 20)],
            },
            violations: vec!["[toy] both down".to_string()],
        };
        let back = Counterexample::from_json(&cx.to_json()).unwrap();
        assert_eq!(back, cx);
        assert_eq!(replay(&Toy, &back), cx.violations);
        assert!(Counterexample::from_json("{\"seed\": 1}").is_err());
        assert!(Counterexample::from_json("not json").is_err());
    }
}
