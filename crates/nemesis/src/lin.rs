//! Wing–Gill linearizability checking for the KV register machine.
//!
//! The history is the client-visible record captured by
//! [`consensus_core::HistorySink`]: per-operation invoke and complete
//! timestamps plus the observed response. The checker searches for a legal
//! sequential witness — a total order of operations consistent with
//! real-time precedence in which every response matches what a sequential
//! [`KvStore`](consensus_core::KvStore) would have returned.
//!
//! Two standard reductions keep the search tractable:
//!
//! * **Per-key decomposition.** Every single-key `KvCommand` touches
//!   exactly one key, so that part of the history is linearizable iff each
//!   key's sub-history is. Multi-key `Range` scans fall outside the
//!   decomposition and are excluded here — the store's dedicated range
//!   checker ([`crate::checker::check_range_consistency`]) covers them.
//! * **Pending-op branching.** An operation that was invoked but never
//!   completed may have taken effect at any point after its invocation —
//!   or never. We branch over the subset of pending ops assumed to have
//!   executed, treating those as free to respond with anything.
//!
//! The search is exact up to a step budget. If the budget runs out the
//! history is *assumed* linearizable: a nemesis checker must never report
//! a false positive, and a truncated search proves nothing either way.

use std::collections::BTreeMap;

use consensus_core::{ClientRecord, KvCommand, KvResponse};

use crate::checker::Violation;

/// Default search budget (DFS steps across all keys).
pub const DEFAULT_BUDGET: u64 = 2_000_000;

fn key_of(cmd: &KvCommand) -> Option<&str> {
    match cmd {
        KvCommand::Put { key, .. }
        | KvCommand::Get { key }
        | KvCommand::Delete { key }
        | KvCommand::Cas { key, .. } => Some(key),
        // Multi-key: outside the per-key decomposition.
        KvCommand::Range { .. } => None,
    }
}

/// Applies `cmd` to a single register holding `state`, returning the new
/// state and the response a sequential store would give.
fn step(state: &Option<String>, cmd: &KvCommand) -> (Option<String>, KvResponse) {
    match cmd {
        KvCommand::Put { value, .. } => (Some(value.clone()), KvResponse::Ok),
        KvCommand::Get { .. } => (state.clone(), KvResponse::Value(state.clone())),
        KvCommand::Delete { .. } => (None, KvResponse::Ok),
        KvCommand::Cas { expect, new, .. } => {
            if state.as_deref() == Some(expect.as_str()) {
                (Some(new.clone()), KvResponse::CasResult { swapped: true })
            } else {
                (state.clone(), KvResponse::CasResult { swapped: false })
            }
        }
        // Never reached: range ops are filtered out before the search.
        KvCommand::Range { .. } => (state.clone(), KvResponse::Entries(Vec::new())),
    }
}

struct Op<'a> {
    rec: &'a ClientRecord,
    /// Pending ops assumed-executed respond with anything.
    constrained: bool,
}

struct Search<'a> {
    ops: Vec<Op<'a>>,
    used: Vec<bool>,
    budget: u64,
    exhausted: bool,
}

impl Search<'_> {
    /// DFS over witness orders. Returns true if a legal sequential witness
    /// exists for the remaining (unused) operations from `state`.
    fn dfs(&mut self, state: &Option<String>, remaining: usize) -> bool {
        if remaining == 0 {
            return true;
        }
        if self.budget == 0 {
            self.exhausted = true;
            return true; // inconclusive — treated as pass
        }
        self.budget -= 1;

        // Wing–Gill candidate rule: an op may linearize next only if its
        // invocation precedes the earliest completion among unused complete
        // ops (otherwise that completed op provably happened first).
        let min_completion = self
            .ops
            .iter()
            .zip(&self.used)
            .filter(|(op, used)| !**used && op.rec.is_complete())
            .map(|(op, _)| op.rec.completed_at().unwrap())
            .min();

        for i in 0..self.ops.len() {
            if self.used[i] {
                continue;
            }
            let op = &self.ops[i];
            if let Some(mc) = min_completion {
                if op.rec.invoked > mc {
                    continue;
                }
            }
            let (next, expected) = step(state, &op.rec.op);
            if op.constrained && op.rec.response() != Some(&expected) {
                continue;
            }
            self.used[i] = true;
            if self.dfs(&next, remaining - 1) {
                self.used[i] = false;
                return true;
            }
            self.used[i] = false;
        }
        false
    }
}

/// Checks one key's sub-history. `pending` are incomplete records; each
/// subset of them is tried as "executed without responding".
fn check_key(key: &str, complete: &[&ClientRecord], pending: &[&ClientRecord], budget: &mut u64) -> Option<Violation> {
    let subsets = 1u32 << pending.len().min(16);
    let mut exhausted = false;
    for mask in 0..subsets {
        let mut ops: Vec<Op<'_>> = complete
            .iter()
            .map(|rec| Op {
                rec,
                constrained: true,
            })
            .collect();
        for (bit, rec) in pending.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                ops.push(Op {
                    rec,
                    constrained: false,
                });
            }
        }
        let n = ops.len();
        let mut search = Search {
            used: vec![false; n],
            ops,
            budget: *budget,
            exhausted: false,
        };
        let ok = search.dfs(&None, n);
        *budget = search.budget;
        exhausted |= search.exhausted;
        if ok {
            return None;
        }
    }
    if exhausted {
        return None; // ran out of budget before refuting every branch
    }
    Some(Violation {
        check: "linearizability",
        detail: format!(
            "key {key}: no sequential witness explains {} complete + {} pending ops",
            complete.len(),
            pending.len()
        ),
    })
}

/// Checks a merged client history for linearizability against the KV
/// register semantics. Returns at most one violation per key.
pub fn check_linearizable(history: &[ClientRecord], mut budget: u64) -> Vec<Violation> {
    let mut by_key: BTreeMap<&str, (Vec<&ClientRecord>, Vec<&ClientRecord>)> = BTreeMap::new();
    for rec in history {
        let Some(key) = key_of(&rec.op) else { continue };
        let slot = by_key.entry(key).or_default();
        if rec.is_complete() {
            slot.0.push(rec);
        } else {
            slot.1.push(rec);
        }
    }
    let mut out = Vec::new();
    for (key, (complete, pending)) in by_key {
        if let Some(v) = check_key(key, &complete, &pending, &mut budget) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        client: u32,
        seq: u64,
        op: KvCommand,
        invoked: u64,
        completed: Option<(u64, KvResponse)>,
    ) -> ClientRecord {
        ClientRecord {
            client,
            seq,
            op,
            invoked,
            completed,
        }
    }

    fn put(key: &str, value: &str) -> KvCommand {
        KvCommand::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    fn get(key: &str) -> KvCommand {
        KvCommand::Get { key: key.into() }
    }

    #[test]
    fn sequential_history_passes() {
        let h = vec![
            rec(0, 1, put("k", "a"), 0, Some((10, KvResponse::Ok))),
            rec(
                1,
                1,
                get("k"),
                20,
                Some((30, KvResponse::Value(Some("a".into())))),
            ),
        ];
        assert!(check_linearizable(&h, DEFAULT_BUDGET).is_empty());
    }

    #[test]
    fn concurrent_overwrites_pass_under_either_order() {
        // Two overlapping puts; a later read may see either winner.
        let h = vec![
            rec(0, 1, put("k", "a"), 0, Some((50, KvResponse::Ok))),
            rec(1, 1, put("k", "b"), 10, Some((40, KvResponse::Ok))),
            rec(
                2,
                1,
                get("k"),
                60,
                Some((70, KvResponse::Value(Some("a".into())))),
            ),
        ];
        assert!(check_linearizable(&h, DEFAULT_BUDGET).is_empty());
    }

    #[test]
    fn stale_read_is_a_violation() {
        // Put completed strictly before the read began, yet the read missed
        // it — the textbook non-linearizable history.
        let h = vec![
            rec(0, 1, put("k", "a"), 0, Some((10, KvResponse::Ok))),
            rec(1, 1, get("k"), 20, Some((30, KvResponse::Value(None)))),
        ];
        let v = check_linearizable(&h, DEFAULT_BUDGET);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "linearizability");
    }

    #[test]
    fn pending_op_may_or_may_not_have_executed() {
        // The put never completed, but the read observed it: legal, because
        // the put may have taken effect server-side.
        let h = vec![
            rec(0, 1, put("k", "a"), 0, None),
            rec(
                1,
                1,
                get("k"),
                20,
                Some((30, KvResponse::Value(Some("a".into())))),
            ),
        ];
        assert!(check_linearizable(&h, DEFAULT_BUDGET).is_empty());

        // And a read that does NOT observe it is equally legal.
        let h2 = vec![
            rec(0, 1, put("k", "a"), 0, None),
            rec(1, 1, get("k"), 20, Some((30, KvResponse::Value(None)))),
        ];
        assert!(check_linearizable(&h2, DEFAULT_BUDGET).is_empty());
    }

    #[test]
    fn cas_semantics_are_enforced() {
        // CAS claimed to swap from a value that was provably never current.
        let h = vec![
            rec(0, 1, put("k", "a"), 0, Some((10, KvResponse::Ok))),
            rec(
                1,
                1,
                KvCommand::Cas {
                    key: "k".into(),
                    expect: "z".into(),
                    new: "w".into(),
                },
                20,
                Some((30, KvResponse::CasResult { swapped: true })),
            ),
        ];
        assert_eq!(check_linearizable(&h, DEFAULT_BUDGET).len(), 1);
    }

    #[test]
    fn keys_are_independent() {
        // A violation on one key does not contaminate another.
        let h = vec![
            rec(0, 1, put("bad", "a"), 0, Some((10, KvResponse::Ok))),
            rec(1, 1, get("bad"), 20, Some((30, KvResponse::Value(None)))),
            rec(2, 1, put("good", "x"), 0, Some((10, KvResponse::Ok))),
        ];
        let v = check_linearizable(&h, DEFAULT_BUDGET);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("bad"));
    }
}
