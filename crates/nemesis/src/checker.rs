//! History-based safety checkers.
//!
//! Each checker consumes only what a protocol adapter can harvest from a
//! finished run — decided log entries, state digests, client histories,
//! final transaction states — and returns the list of safety violations it
//! found. Liveness is deliberately out of scope: under an adversarial fault
//! schedule a correct protocol may make no progress at all, and that is
//! fine. What it must never do is disagree with itself.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use atomic_commit::TxnState;
use consensus_core::history::ClientRecord;

/// One safety-property violation, tagged with the check that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the violated property (e.g. `"agreement"`).
    pub check: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// A decided log entry as observed on one node, rendered protocol-agnostic.
/// This is the unified driver API's type — re-exported so existing checker
/// call sites keep compiling; [`consensus_core::ClusterDriver::decided_log`]
/// produces it directly.
pub use consensus_core::driver::DecidedEntry;

/// Agreement: no two nodes decide different operations for the same index.
pub fn check_log_agreement(entries: &[DecidedEntry]) -> Vec<Violation> {
    let mut by_index: BTreeMap<u64, Vec<&DecidedEntry>> = BTreeMap::new();
    for e in entries {
        by_index.entry(e.index).or_default().push(e);
    }
    let mut out = Vec::new();
    for (index, group) in by_index {
        let mut distinct: Vec<&DecidedEntry> = Vec::new();
        for e in group {
            if !distinct.iter().any(|d| d.op == e.op) {
                distinct.push(e);
            }
        }
        if distinct.len() > 1 {
            let views: Vec<String> = distinct
                .iter()
                .map(|e| format!("node {} decided {}", e.node, e.op))
                .collect();
            out.push(Violation {
                check: "agreement",
                detail: format!("slot {index} diverges: {}", views.join(" vs ")),
            });
        }
    }
    out
}

/// Validity: every decided client operation was actually issued by a client.
/// Entries with no origin (no-ops, protocol-internal fillers) are exempt.
pub fn check_validity(entries: &[DecidedEntry], issued: &BTreeSet<(u32, u64)>) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut reported: BTreeSet<(u32, u64)> = BTreeSet::new();
    for e in entries {
        if let Some(origin) = e.origin {
            if !issued.contains(&origin) && reported.insert(origin) {
                out.push(Violation {
                    check: "validity",
                    detail: format!(
                        "node {} decided op {} from ({}, {}) which no client issued",
                        e.node, e.op, origin.0, origin.1
                    ),
                });
            }
        }
    }
    out
}

/// Integrity: a given request decides at most one operation — the same
/// `(client, seq)` must map to the same op everywhere it appears.
pub fn check_integrity(entries: &[DecidedEntry]) -> Vec<Violation> {
    let mut seen: BTreeMap<(u32, u64), &DecidedEntry> = BTreeMap::new();
    let mut out = Vec::new();
    for e in entries {
        let Some(origin) = e.origin else { continue };
        match seen.get(&origin) {
            None => {
                seen.insert(origin, e);
            }
            Some(first) if first.op != e.op => out.push(Violation {
                check: "integrity",
                detail: format!(
                    "request ({}, {}) decided as {} on node {} but {} on node {}",
                    origin.0, origin.1, first.op, first.node, e.op, e.node
                ),
            }),
            Some(_) => {}
        }
    }
    out
}

/// State-machine consistency: nodes that applied the same log prefix must
/// be in the same state. `digests` is `(node, applied_prefix_len, digest)`.
pub fn check_state_digests(digests: &[(u32, u64, u64)]) -> Vec<Violation> {
    let mut by_len: BTreeMap<u64, Vec<(u32, u64)>> = BTreeMap::new();
    for &(node, len, digest) in digests {
        by_len.entry(len).or_default().push((node, digest));
    }
    let mut out = Vec::new();
    for (len, group) in by_len {
        let (first_node, first_digest) = group[0];
        for &(node, digest) in &group[1..] {
            if digest != first_digest {
                out.push(Violation {
                    check: "state-digest",
                    detail: format!(
                        "after {len} applied ops, node {node} digest {digest:#x} \
                         != node {first_node} digest {first_digest:#x}"
                    ),
                });
            }
        }
    }
    out
}

/// Atomic-commit safety (AC1 + AC3 from the textbook formulation):
/// no two nodes reach opposite decisions, and commit requires unanimous
/// yes-votes. `states` holds every node's final state, crashed ones
/// included — a decision made before crashing still counts.
pub fn check_atomic_commit(votes: &[bool], states: &[(u32, TxnState)]) -> Vec<Violation> {
    let mut out = Vec::new();
    let committed: Vec<u32> = states
        .iter()
        .filter(|(_, s)| *s == TxnState::Committed)
        .map(|(n, _)| *n)
        .collect();
    let aborted: Vec<u32> = states
        .iter()
        .filter(|(_, s)| *s == TxnState::Aborted)
        .map(|(n, _)| *n)
        .collect();
    if !committed.is_empty() && !aborted.is_empty() {
        out.push(Violation {
            check: "ac-agreement",
            detail: format!("nodes {committed:?} committed while nodes {aborted:?} aborted"),
        });
    }
    if !committed.is_empty() && votes.iter().any(|v| !v) {
        let no_voters: Vec<usize> = votes
            .iter()
            .enumerate()
            .filter(|(_, v)| !**v)
            .map(|(i, _)| i)
            .collect();
        out.push(Violation {
            check: "ac-commit-validity",
            detail: format!(
                "nodes {committed:?} committed although participants {no_voters:?} voted no"
            ),
        });
    }
    out
}

/// Cross-shard transactional atomicity for the sharded store, judged purely
/// from the merged client history (routers + recovery + audit readers).
///
/// Evidence model — all from *completed* operations:
///
/// * A **decision** for `tid` is witnessed by the winning CAS on its
///   decision key (`swapped == true`), by a completed `Put` of the decision
///   key (the raw-2PC and Paxos Commit backends write decisions directly:
///   the outcome is a pure function of durable votes, so every writer puts
///   the same value — conflicting puts are a real violation), or by any
///   read of the decision key returning `commit`/`abort`.
/// * A **data write** of `tid` is a completed `Put` of a non-control key
///   whose value is tagged `…@<tid>`; a **data read** of `tid` is a
///   completed `Get` observing such a value.
///
/// A sound store only issues a transaction's data writes after commit
/// evidence is durable, so every violation below is a real atomicity break:
///
/// * `txn-decision` — two conflicting decisions witnessed for one `tid`.
/// * `txn-atomicity` — a data write (or read observation) of a transaction
///   that aborted, or for which no commit decision was ever witnessed.
pub fn check_txn_atomicity(history: &[ClientRecord]) -> Vec<Violation> {
    use consensus_core::smr::{KvCommand, KvResponse};
    use consensus_core::txn::{self, TxnDecision, TxnId};

    let (decisions, mut out) = witnessed_decisions(history);

    let mut flagged: BTreeSet<(TxnId, String)> = BTreeSet::new();
    for r in history {
        let Some(resp) = r.response() else { continue };
        let (kind, key, value) = match (&r.op, resp) {
            (KvCommand::Put { key, value }, KvResponse::Ok) if !txn::is_control_key(key) => {
                ("write", key, value.clone())
            }
            (KvCommand::Get { key }, KvResponse::Value(Some(v))) if !txn::is_control_key(key) => {
                ("read", key, v.clone())
            }
            _ => continue,
        };
        let Some(tid) = txn::tagged_txn(&value) else {
            continue;
        };
        let verdict = match decisions.get(&tid) {
            Some(TxnDecision::Commit) => continue,
            Some(TxnDecision::Abort) => "aborted",
            None => "never witnessed as committed",
        };
        if flagged.insert((tid, key.clone())) {
            out.push(Violation {
                check: "txn-atomicity",
                detail: format!(
                    "completed {kind} of {key}={value} from txn {tid}, \
                     which {verdict}"
                ),
            });
        }
    }
    out
}

/// Harvests every transaction decision witnessed anywhere in the history —
/// winning CAS on a decision key, direct decision-key `Put`, or any read of
/// a decision key returning `commit`/`abort` — plus a `txn-decision`
/// violation per transaction witnessed with conflicting outcomes.
fn witnessed_decisions(
    history: &[ClientRecord],
) -> (
    BTreeMap<consensus_core::txn::TxnId, consensus_core::txn::TxnDecision>,
    Vec<Violation>,
) {
    use consensus_core::smr::{KvCommand, KvResponse};
    use consensus_core::txn::{self, TxnDecision, TxnId};

    let mut decisions: BTreeMap<TxnId, TxnDecision> = BTreeMap::new();
    let mut out = Vec::new();
    for r in history {
        let Some(resp) = r.response() else { continue };
        let (tid, decision) = match (&r.op, resp) {
            (KvCommand::Cas { key, new, .. }, KvResponse::CasResult { swapped: true }) => {
                match (txn::parse_decision_key(key), TxnDecision::parse(new)) {
                    (Some(tid), Some(d)) => (tid, d),
                    _ => continue,
                }
            }
            (KvCommand::Put { key, value }, KvResponse::Ok) => {
                match (txn::parse_decision_key(key), TxnDecision::parse(value)) {
                    (Some(tid), Some(d)) => (tid, d),
                    _ => continue,
                }
            }
            (KvCommand::Get { key }, KvResponse::Value(Some(v))) => {
                match (txn::parse_decision_key(key), TxnDecision::parse(v)) {
                    (Some(tid), Some(d)) => (tid, d),
                    _ => continue,
                }
            }
            _ => continue,
        };
        match decisions.get(&tid) {
            None => {
                decisions.insert(tid, decision);
            }
            Some(prev) if *prev != decision => out.push(Violation {
                check: "txn-decision",
                detail: format!(
                    "txn {tid} witnessed as both {} and {}",
                    prev.as_str(),
                    decision.as_str()
                ),
            }),
            Some(_) => {}
        }
    }
    (decisions, out)
}

/// Range-scan consistency for the sharded store's `Range` command, judged
/// from completed range records in the merged client history.
///
/// Each completed range result must be **well-formed** — entries strictly
/// ascending by key, every key inside `[start, end)`, at most `limit`
/// entries — and must satisfy the **snapshot-read rule**: every
/// transaction-tagged value it surfaces (`…@<tid>`) belongs to a
/// transaction witnessed as committed somewhere in the history. A scan that
/// surfaces an aborted (or never-committed) transaction's write observed an
/// early write that 2PC should have kept invisible — exactly the leak the
/// `buggy_early_writes` injection produces.
pub fn check_range_consistency(history: &[ClientRecord]) -> Vec<Violation> {
    use consensus_core::smr::{KvCommand, KvResponse};
    use consensus_core::txn::{self, TxnDecision, TxnId};

    let (decisions, _) = witnessed_decisions(history);
    let mut out = Vec::new();
    let mut flagged: BTreeSet<(TxnId, String)> = BTreeSet::new();
    for r in history {
        let KvCommand::Range { start, end, limit } = &r.op else {
            continue;
        };
        let Some(KvResponse::Entries(entries)) = r.response() else {
            continue;
        };
        if entries.len() > *limit {
            out.push(Violation {
                check: "range-bounds",
                detail: format!(
                    "range [{start},{end})#{limit} returned {} entries",
                    entries.len()
                ),
            });
        }
        if let Some(bad) = entries
            .iter()
            .find(|(k, _)| k.as_str() < start.as_str() || k.as_str() >= end.as_str())
        {
            out.push(Violation {
                check: "range-bounds",
                detail: format!("range [{start},{end}) returned out-of-range key {}", bad.0),
            });
        }
        if let Some(pair) = entries.windows(2).find(|p| p[0].0 >= p[1].0) {
            out.push(Violation {
                check: "range-order",
                detail: format!(
                    "range [{start},{end}) keys not strictly ascending: {} then {}",
                    pair[0].0, pair[1].0
                ),
            });
        }
        for (k, v) in entries {
            if txn::is_control_key(k) {
                continue;
            }
            let Some(tid) = txn::tagged_txn(v) else {
                continue;
            };
            let verdict = match decisions.get(&tid) {
                Some(TxnDecision::Commit) => continue,
                Some(TxnDecision::Abort) => "aborted",
                None => "was never witnessed as committed",
            };
            if flagged.insert((tid, k.clone())) {
                out.push(Violation {
                    check: "range-snapshot",
                    detail: format!(
                        "range [{start},{end}) surfaced {k}={v} from txn {tid}, which {verdict}"
                    ),
                });
            }
        }
    }
    out
}

/// Binary agreement (Ben-Or): all decided values are equal, and the decided
/// value was some node's input.
pub fn check_binary_agreement(decisions: &[(u32, Option<u8>)], inputs: &[u8]) -> Vec<Violation> {
    let mut out = Vec::new();
    let decided: Vec<(u32, u8)> = decisions
        .iter()
        .filter_map(|(n, d)| d.map(|v| (*n, v)))
        .collect();
    if let Some(&(first_node, first)) = decided.first() {
        for &(node, v) in &decided[1..] {
            if v != first {
                out.push(Violation {
                    check: "ba-agreement",
                    detail: format!(
                        "node {node} decided {v} but node {first_node} decided {first}"
                    ),
                });
            }
        }
        for &(node, v) in &decided {
            if !inputs.contains(&v) {
                out.push(Violation {
                    check: "ba-validity",
                    detail: format!("node {node} decided {v}, which no node proposed"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u32, index: u64, op: &str, origin: Option<(u32, u64)>) -> DecidedEntry {
        DecidedEntry {
            node,
            index,
            op: op.to_string(),
            origin,
        }
    }

    #[test]
    fn agreement_flags_divergent_slots_only() {
        let ok = [
            entry(0, 1, "put k v", Some((7, 1))),
            entry(1, 1, "put k v", Some((7, 1))),
            entry(1, 2, "noop", None),
        ];
        assert!(check_log_agreement(&ok).is_empty());

        let bad = [
            entry(0, 1, "put k v", Some((7, 1))),
            entry(1, 1, "put k w", Some((8, 1))),
        ];
        let v = check_log_agreement(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "agreement");
    }

    #[test]
    fn validity_and_integrity() {
        let issued: BTreeSet<(u32, u64)> = [(7, 1)].into_iter().collect();
        let phantom = [entry(0, 1, "put k v", Some((9, 3)))];
        assert_eq!(check_validity(&phantom, &issued)[0].check, "validity");
        assert!(check_validity(&phantom, &issued).len() == 1);

        let forked = [
            entry(0, 1, "put k v", Some((7, 1))),
            entry(1, 4, "put k w", Some((7, 1))),
        ];
        assert_eq!(check_integrity(&forked)[0].check, "integrity");
        assert!(check_integrity(&forked[..1]).is_empty());
    }

    #[test]
    fn digests_compare_equal_prefixes_only() {
        let ok = [(0, 5, 0xaa), (1, 5, 0xaa), (2, 3, 0xbb)];
        assert!(check_state_digests(&ok).is_empty());
        let bad = [(0, 5, 0xaa), (1, 5, 0xcc)];
        assert_eq!(check_state_digests(&bad)[0].check, "state-digest");
    }

    #[test]
    fn atomic_commit_rules() {
        let mixed = [(0, TxnState::Committed), (2, TxnState::Aborted)];
        assert_eq!(
            check_atomic_commit(&[true, true, true], &mixed)[0].check,
            "ac-agreement"
        );

        let committed = [(0, TxnState::Committed), (1, TxnState::Committed)];
        let v = check_atomic_commit(&[true, false, true], &committed);
        assert_eq!(v[0].check, "ac-commit-validity");

        let blocked = [(0, TxnState::Aborted), (1, TxnState::Ready)];
        assert!(check_atomic_commit(&[true, true], &blocked).is_empty());
    }

    #[test]
    fn txn_atomicity_rules() {
        use consensus_core::smr::{KvCommand, KvResponse};
        use consensus_core::txn::{self, TxnId};

        let tid = TxnId::new(100, 0);
        let rec = |op: KvCommand, resp: KvResponse| ClientRecord {
            client: 100,
            seq: 1,
            op,
            invoked: 0,
            completed: Some((1, resp)),
        };
        let commit_cas = rec(
            KvCommand::Cas {
                key: txn::decision_key(tid),
                expect: txn::DECISION_PENDING.into(),
                new: "commit".into(),
            },
            KvResponse::CasResult { swapped: true },
        );
        let abort_read = rec(
            KvCommand::Get {
                key: txn::decision_key(tid),
            },
            KvResponse::Value(Some("abort".into())),
        );
        let data_write = rec(
            KvCommand::Put {
                key: "k1".into(),
                value: txn::tag_value("v", tid),
            },
            KvResponse::Ok,
        );
        let data_read = rec(
            KvCommand::Get { key: "k1".into() },
            KvResponse::Value(Some(txn::tag_value("v", tid))),
        );

        // Committed txn with visible writes: clean.
        let ok = [commit_cas.clone(), data_write.clone(), data_read.clone()];
        assert!(check_txn_atomicity(&ok).is_empty());

        // Conflicting decision evidence.
        let split = [commit_cas, abort_read.clone()];
        assert_eq!(check_txn_atomicity(&split)[0].check, "txn-decision");

        // A plain decision-key Put (raw-2PC / Paxos Commit style) is
        // commit evidence too, and conflicts with an abort read.
        let commit_put = rec(
            KvCommand::Put {
                key: txn::decision_key(tid),
                value: "commit".into(),
            },
            KvResponse::Ok,
        );
        assert!(check_txn_atomicity(&[commit_put.clone(), data_write.clone()]).is_empty());
        assert_eq!(
            check_txn_atomicity(&[commit_put, abort_read.clone()])[0].check,
            "txn-decision"
        );

        // Aborted txn's write leaked (plus the read that observed it) —
        // flagged once per (txn, key).
        let leak = [abort_read, data_write.clone(), data_read];
        let v = check_txn_atomicity(&leak);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "txn-atomicity");

        // A write with no decision evidence at all is also a violation.
        assert_eq!(check_txn_atomicity(&[data_write])[0].check, "txn-atomicity");

        // An incomplete write is no evidence either way.
        let pending = ClientRecord {
            completed: None,
            ..rec(
                KvCommand::Put {
                    key: "k2".into(),
                    value: txn::tag_value("v", tid),
                },
                KvResponse::Ok,
            )
        };
        assert!(check_txn_atomicity(&[pending]).is_empty());
    }

    #[test]
    fn range_consistency_rules() {
        use consensus_core::smr::{KvCommand, KvResponse};
        use consensus_core::txn::{self, TxnId};

        let tid = TxnId::new(100, 0);
        let rec = |op: KvCommand, resp: KvResponse| ClientRecord {
            client: 100,
            seq: 1,
            op,
            invoked: 0,
            completed: Some((1, resp)),
        };
        let range = |entries: Vec<(&str, String)>| {
            rec(
                KvCommand::Range {
                    start: "a".into(),
                    end: "z".into(),
                    limit: 4,
                },
                KvResponse::Entries(
                    entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                ),
            )
        };
        let commit = rec(
            KvCommand::Put {
                key: txn::decision_key(tid),
                value: "commit".into(),
            },
            KvResponse::Ok,
        );

        // Committed tagged values plus plain singles: clean.
        let ok = [
            commit.clone(),
            range(vec![
                ("k1", txn::tag_value("v", tid)),
                ("k2", "plain".into()),
            ]),
        ];
        assert!(check_range_consistency(&ok).is_empty());

        // A tagged value with no commit evidence is a snapshot-read leak.
        let leak = [range(vec![("k1", txn::tag_value("v", tid))])];
        assert_eq!(check_range_consistency(&leak)[0].check, "range-snapshot");

        // So is one from a transaction witnessed as aborted.
        let abort = rec(
            KvCommand::Get {
                key: txn::decision_key(tid),
            },
            KvResponse::Value(Some("abort".into())),
        );
        let v = check_range_consistency(&[abort, range(vec![("k1", txn::tag_value("v", tid))])]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "range-snapshot");

        // Well-formedness: out-of-range keys, misordered keys, over-limit.
        let oob = [commit.clone(), range(vec![("~zz", "x".into())])];
        assert_eq!(check_range_consistency(&oob)[0].check, "range-bounds");
        let misordered = [
            commit.clone(),
            range(vec![("k2", "x".into()), ("k1", "y".into())]),
        ];
        assert_eq!(check_range_consistency(&misordered)[0].check, "range-order");
        let over = [
            commit,
            range(vec![
                ("k1", "a".into()),
                ("k2", "b".into()),
                ("k3", "c".into()),
                ("k4", "d".into()),
                ("k5", "e".into()),
            ]),
        ];
        assert_eq!(check_range_consistency(&over)[0].check, "range-bounds");

        // Incomplete ranges are no evidence either way.
        let pending = ClientRecord {
            completed: None,
            ..range(vec![("k1", txn::tag_value("v", tid))])
        };
        assert!(check_range_consistency(&[pending]).is_empty());
    }

    #[test]
    fn binary_agreement_rules() {
        let ok = [(0, Some(1)), (1, Some(1)), (2, None)];
        assert!(check_binary_agreement(&ok, &[0, 1, 1]).is_empty());

        let split = [(0, Some(0)), (1, Some(1))];
        assert_eq!(check_binary_agreement(&split, &[0, 1])[0].check, "ba-agreement");

        let invented = [(0, Some(1))];
        assert_eq!(check_binary_agreement(&invented, &[0, 0])[0].check, "ba-validity");
    }
}
