//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha20-based
//! deterministic RNG (RFC 8439 block function, 64-bit block counter).
//!
//! The simulator only relies on two properties, both provided here:
//!
//! 1. **Determinism** — the stream is a pure function of the seed.
//! 2. **Statistical quality** — ChaCha20 output is indistinguishable from
//!    uniform for every test in this repo (delay sampling, fault plans,
//!    Monte-Carlo experiments).
//!
//! Streams are *not* bit-compatible with the upstream crate (the upstream
//! crate buffers four blocks at a time and interleaves words differently);
//! nothing in the workspace depends on the exact values, only on the two
//! properties above.

use rand::{RngCore, SeedableRng};

/// A ChaCha20 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha20Rng {
    /// 256-bit key, from the seed.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 ⇒ exhausted.
    word: usize,
    /// Holds the upper half of a `next_u64` split across calls to
    /// `next_u32`; not strictly needed, kept simple: unused.
    _reserved: (),
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20Rng {
    /// Computes the ChaCha20 block for the current counter.
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = s;
        self.word = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word >= 16 {
            self.refill();
        }
        let w = self.block[self.word];
        self.word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha20Rng {
            key,
            counter: 0,
            block: [0; 16],
            word: 16, // force a refill on first use
            _reserved: (),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2: key 00 01 .. 1f, counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00. Our generator pins the nonce
        // to zero, so reproduce the vector by running the raw block function.
        let mut key = [0u32; 8];
        let key_bytes: Vec<u8> = (0u8..32).collect();
        for (i, chunk) in key_bytes.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&key);
        s[12] = 1;
        s[13] = 0x0900_0000;
        s[14] = 0x4a00_0000;
        s[15] = 0;
        let input = s;
        for _ in 0..10 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        assert_eq!(
            s,
            [
                0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033,
                0x9aaa2204, 0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9,
                0xd19c12b5, 0xb94e16de, 0xe883d0cb, 0x4e3c50a2,
            ]
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha20Rng::seed_from_u64(42);
        let mut b = ChaCha20Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha20Rng::seed_from_u64(1);
        let mut b = ChaCha20Rng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn uniformity_smoke() {
        let mut r = ChaCha20Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean} far from 0.5");
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b} out of range");
        }
    }

    #[test]
    fn clone_continues_the_stream() {
        let mut a = ChaCha20Rng::seed_from_u64(5);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
