//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `rand` dependency is replaced by this in-tree implementation of
//! exactly the API surface the repo uses: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits with `gen`, `gen_range`, and `gen_bool`.
//!
//! The uniform-range sampling uses the widening-multiply technique
//! (Lemire-style, without the rejection step); the worst-case bias for the
//! ranges used in the simulator (spans ≪ 2⁶⁴) is far below anything a
//! statistical test here could observe, and — crucially for the simulator —
//! sampling stays fully deterministic for a given RNG stream.

use std::ops::{Range, RangeInclusive};

/// The raw source of randomness: a stream of 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A distribution a value can be drawn from with [`Rng::gen`] — the
/// equivalent of rand's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors rand's trait of
/// the same name so integer literals in ranges unify with the target type.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform `u64` in `[0, span)` via widening multiply.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t, hi: $t, inclusive: bool, rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: u128, hi: u128, inclusive: bool, rng: &mut R)
        -> u128 {
        let span = hi - lo + inclusive as u128;
        let draw = if let Ok(s64) = u64::try_from(span) {
            uniform_below(rng, s64) as u128
        } else {
            // Spans wider than 64 bits: draw 128 bits and reduce. The modulo
            // bias is at most span / 2^128 — unobservable.
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if span == 0 { wide } else { wide % span }
        };
        lo.wrapping_add(draw)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R)
        -> f64 {
        let u = f64::sample(rng);
        // Clamp below by `lo` so half-open semantics hold even when
        // u * width rounds to 0 (the `f64::EPSILON..1.0` case).
        (lo + u * (hi - lo)).max(lo)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 — the same
    /// construction rand uses, so small seeds still decorrelate streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // A weak mixer is fine for testing the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
