//! Offline stand-in for `serde_json`, covering the slice of the API the
//! benchmark harness uses: the [`Value`] tree, the [`json!`] constructor
//! macro, and compact / pretty serialization.
//!
//! Differences from the real crate, none of which matter here:
//!
//! * Object keys are kept in a `BTreeMap`, so serialization is sorted by key
//!   (the real crate preserves insertion order). Output is still valid JSON
//!   and — usefully for golden files — canonical.
//! * The `json!` macro requires nested objects/arrays to be written as
//!   nested `json!` calls rather than bare braces.
//! * Deserialization is untyped only: [`from_str`] parses into a [`Value`]
//!   tree, and the accessor methods (`get`, `as_u64`, …) walk it. There is
//!   no derive machinery.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, sorted by key.
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integer or float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negatives).
    I64(i64),
    /// Floating point. Non-finite values serialize as `null`.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep a trailing ".0" so floats round-trip as floats.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Number::F64(_) => write!(f, "null"),
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                Self::newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    escape(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                Self::newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * level {
                out.push(' ');
            }
        }
    }
}

impl Value {
    /// Looks up a key in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            Value::Number(Number::I64(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error);
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error)
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error)
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or(Error)? {
            b'n' => self.eat_lit("null").map(|_| Value::Null),
            b't' => self.eat_lit("true").map(|_| Value::Bool(true)),
            b'f' => self.eat_lit("false").map(|_| Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(Error),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or(Error)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or(Error)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error);
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| Error)?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                            // BMP only; surrogate pairs are not produced by
                            // our own serializer.
                            out.push(char::from_u32(code).ok_or(Error)?);
                            self.pos += 4;
                        }
                        _ => return Err(Error),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| Error)?;
                    let c = rest.chars().next().ok_or(Error)?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
        if is_float {
            let v: f64 = text.parse().map_err(|_| Error)?;
            Ok(Value::Number(Number::F64(v)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let v: i64 = stripped.parse::<i64>().map_err(|_| Error).map(|v| -v)?;
            Ok(Value::Number(Number::I64(v)))
        } else {
            let v: u64 = text.parse().map_err(|_| Error)?;
            Ok(Value::Number(Number::U64(v)))
        }
    }
}

/// Serializes compactly (single line).
pub fn to_string<T: AsValue>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.as_value().write(&mut s, None, 0);
    Ok(s)
}

/// Serializes with two-space indentation, like the real crate.
pub fn to_string_pretty<T: AsValue>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.as_value().write(&mut s, Some(2), 0);
    Ok(s)
}

/// Serialization error — cannot actually occur, kept for API shape.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Borrows a [`Value`] out of anything serializable here (only `Value`).
pub trait AsValue {
    /// The value to serialize.
    fn as_value(&self) -> &Value;
}

impl AsValue for Value {
    fn as_value(&self) -> &Value {
        self
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::Number(Number::U64(*v as u64)) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v as i64))
                }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::Number(Number::F64(*v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T> From<Option<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

impl<T> From<Vec<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T> From<&[T]> for Value
where
    T: Clone + Into<Value>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a literal-ish expression.
///
/// Supports `json!(null)`, `json!({ "key": expr, ... })`, `json!([expr, ...])`,
/// and `json!(expr)` for anything with `Into<Value>`. Nested containers are
/// written as nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $( map.insert(::std::string::String::from($key), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(3u64)).unwrap(), "3");
        assert_eq!(to_string(&json!(-2i64)).unwrap(), "-2");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
        assert_eq!(to_string(&json!(2.0f64)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        assert_eq!(to_string(&json!("a\"b\n")).unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn objects_sorted_and_nested() {
        let v = json!({"b": 1u64, "a": json!([1u64, 2u64]), "c": json!({"x": "y"})});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1,2],"b":1,"c":{"x":"y"}}"#
        );
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({"k": json!([1u64])});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parse_round_trips() {
        let v =
            json!({"b": 1u64, "a": json!([1u64, -2i64, 2.5f64, true, json!(null)]), "s": "x\"y\n"});
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_accessors() {
        let v = from_str(r#"{"n": 7, "arr": [1, 2], "ok": true, "name": "x", "none": null}"#)
            .unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("arr").and_then(Value::as_array).map(Vec::len), Some(2));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert!(v.get("none").is_some_and(Value::is_null));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().map(|m| m.len()), Some(5));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn options_and_vecs() {
        let none: Option<u64> = None;
        assert_eq!(to_string(&json!(none)).unwrap(), "null");
        assert_eq!(to_string(&json!(Some(7u64))).unwrap(), "7");
        assert_eq!(to_string(&json!(vec![1u64, 2])).unwrap(), "[1,2]");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }
}
