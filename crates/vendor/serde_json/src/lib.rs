//! Offline stand-in for `serde_json`, covering the slice of the API the
//! benchmark harness uses: the [`Value`] tree, the [`json!`] constructor
//! macro, and compact / pretty serialization.
//!
//! Differences from the real crate, none of which matter here:
//!
//! * Object keys are kept in a `BTreeMap`, so serialization is sorted by key
//!   (the real crate preserves insertion order). Output is still valid JSON
//!   and — usefully for golden files — canonical.
//! * The `json!` macro requires nested objects/arrays to be written as
//!   nested `json!` calls rather than bare braces.
//! * No deserialization; this workspace only writes JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, sorted by key.
    Object(BTreeMap<String, Value>),
}

/// A JSON number: integer or float.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negatives).
    I64(i64),
    /// Floating point. Non-finite values serialize as `null`.
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U64(v) => write!(f, "{v}"),
            Number::I64(v) => write!(f, "{v}"),
            Number::F64(v) if v.is_finite() => {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep a trailing ".0" so floats round-trip as floats.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Number::F64(_) => write!(f, "null"),
        }
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                Self::newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    escape(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                Self::newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * level {
                out.push(' ');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

/// Serializes compactly (single line).
pub fn to_string<T: AsValue>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.as_value().write(&mut s, None, 0);
    Ok(s)
}

/// Serializes with two-space indentation, like the real crate.
pub fn to_string_pretty<T: AsValue>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.as_value().write(&mut s, Some(2), 0);
    Ok(s)
}

/// Serialization error — cannot actually occur, kept for API shape.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Borrows a [`Value`] out of anything serializable here (only `Value`).
pub trait AsValue {
    /// The value to serialize.
    fn as_value(&self) -> &Value;
}

impl AsValue for Value {
    fn as_value(&self) -> &Value {
        self
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::Number(Number::U64(*v as u64)) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v as i64))
                }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::Number(Number::F64(*v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T> From<Option<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

impl<T> From<Vec<T>> for Value
where
    T: Into<Value>,
{
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T> From<&[T]> for Value
where
    T: Clone + Into<Value>,
{
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a literal-ish expression.
///
/// Supports `json!(null)`, `json!({ "key": expr, ... })`, `json!([expr, ...])`,
/// and `json!(expr)` for anything with `Into<Value>`. Nested containers are
/// written as nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $( map.insert(::std::string::String::from($key), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(3u64)).unwrap(), "3");
        assert_eq!(to_string(&json!(-2i64)).unwrap(), "-2");
        assert_eq!(to_string(&json!(2.5f64)).unwrap(), "2.5");
        assert_eq!(to_string(&json!(2.0f64)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        assert_eq!(to_string(&json!("a\"b\n")).unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn objects_sorted_and_nested() {
        let v = json!({"b": 1u64, "a": json!([1u64, 2u64]), "c": json!({"x": "y"})});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[1,2],"b":1,"c":{"x":"y"}}"#
        );
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({"k": json!([1u64])});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn options_and_vecs() {
        let none: Option<u64> = None;
        assert_eq!(to_string(&json!(none)).unwrap(), "null");
        assert_eq!(to_string(&json!(Some(7u64))).unwrap(), "7");
        assert_eq!(to_string(&json!(vec![1u64, 2])).unwrap(), "[1,2]");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }
}
