//! Offline stand-in for `criterion`: a minimal wall-clock benchmark runner
//! with the same surface the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, the
//! `criterion_group!` / `criterion_main!` macros).
//!
//! Instead of criterion's statistical machinery it runs a short warm-up,
//! then `sample_size` timed samples of the closure, and prints min / mean /
//! max per benchmark. That is enough to compare protocol hot paths locally
//! while staying dependency-free.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── group {name} ──");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            _measurement: Duration::from_secs(2),
        }
    }
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in the real crate.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    _measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Accepted for API compatibility; samples are counted, not timed.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self._measurement = d;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: run the closure until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut bench = Bencher { elapsed: Duration::ZERO, iters: 0 };
        while Instant::now() < warm_deadline {
            f(&mut bench);
        }
        // Measurement.
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bench.elapsed = Duration::ZERO;
            bench.iters = 0;
            f(&mut bench);
            if bench.iters > 0 {
                samples.push(bench.elapsed / bench.iters);
            }
        }
        if samples.is_empty() {
            println!("  {label:<40} (no samples)");
            return;
        }
        let min = samples.iter().min().unwrap();
        let max = samples.iter().max().unwrap();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "  {label:<40} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} samples)",
            min, mean, max, samples.len()
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one execution of `f` (the real crate batches; one timed call
    /// per sample is accurate enough at simulation-run granularity).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Re-export of the standard hint, matching criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.warm_up_time(Duration::from_millis(1));
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
