//! Offline stand-in for `proptest`, implementing the subset this workspace's
//! property tests use: the [`proptest!`] macro with integer-range, tuple,
//! [`Just`], and [`collection::vec`] strategies, plus `prop_assert!`,
//! `prop_assert_eq!`, and `prop_assume!`.
//!
//! Design differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   printed; since generation is fully deterministic (the RNG is seeded
//!   from the test's name), every failure reproduces exactly.
//! * **Fixed case budget** ([`ProptestConfig::cases`], default 64) instead
//!   of an adaptive runner.

use std::fmt::Write as _;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

/// The generation context handed to strategies: a deterministic RNG.
pub struct Gen {
    rng: ChaCha20Rng,
}

impl Gen {
    /// Builds a generator whose stream is a pure function of `name` — each
    /// property test gets its own reproducible stream.
    pub fn deterministic(name: &str) -> Gen {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        Gen {
            rng: ChaCha20Rng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut ChaCha20Rng {
        &mut self.rng
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;

    /// Wraps this strategy so the generated `Vec` is randomly permuted.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S>(S);

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, gen: &mut Gen) -> Vec<T> {
        let mut v = self.0.generate(gen);
        // Fisher–Yates.
        for i in (1..v.len()).rev() {
            let j = gen.rng().gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }
}

macro_rules! strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                gen.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, gen: &mut Gen) -> $t {
                gen.rng().gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

macro_rules! strategy_for_tuples {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, gen: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(gen),)+)
            }
        }
    )*};
}
strategy_for_tuples!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Generates `Vec`s whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            use rand::Rng as _;
            let n = gen.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case doesn't count, draw another.
    Reject,
    /// `prop_assert!`-style failure — the property is falsified.
    Fail(String),
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: draws inputs, runs the body, retries rejections.
/// Used by the [`proptest!`] macro; not intended to be called directly.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut Gen) -> Result<Option<String>, TestCaseError>,
{
    let mut gen = Gen::deterministic(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(32).max(1024);
    while passed < config.cases {
        match case(&mut gen) {
            Ok(_) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property {name}: too many prop_assume! rejections \
                         ({rejected}) for {passed} accepted cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} falsified (case {passed}):\n{msg}");
            }
        }
    }
}

/// Formats generated arguments for failure messages.
pub fn format_args_list(pairs: &[(&str, String)]) -> String {
    let mut out = String::new();
    for (name, value) in pairs {
        let _ = writeln!(out, "  {name} = {value}");
    }
    out
}

/// The property-test macro. See the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    // Internal: expand the test functions (must precede the catch-all arm).
    (@munch ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |gen| {
                    $(let $arg = $crate::Strategy::generate(&($strat), gen);)*
                    let described = $crate::format_args_list(&[
                        $((stringify!($arg), format!("{:?}", $arg)),)*
                    ]);
                    let body_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match body_result {
                        ::std::result::Result::Ok(()) => ::std::result::Result::Ok(None),
                        ::std::result::Result::Err($crate::TestCaseError::Reject) =>
                            ::std::result::Result::Err($crate::TestCaseError::Reject),
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) =>
                            ::std::result::Result::Err($crate::TestCaseError::Fail(
                                format!("{}\nwith arguments:\n{}", msg, described))),
                    }
                });
            }
        )*
    };
    // With a leading config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The usual glob import, mirroring the real crate.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Gen, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 3u64..10, v in collection::vec(0u32..5, 1..8), p in (0usize..4, 0u32..12)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!(p.0 < 4 && p.1 < 12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_and_assume(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn just_yields_constant() {
        let mut gen = Gen::deterministic("just");
        assert_eq!(Just(41u8).generate(&mut gen), 41);
    }
}
