//! The Raft replica state machine, including §7 log compaction: replicas
//! snapshot their applied state, truncate the log behind the snapshot, and
//! bring far-behind followers up to date with `InstallSnapshot`.

use std::collections::BTreeMap;

use consensus_core::{
    BatchConfig, DedupKvMachine, KvCommand, KvResponse, ReadMode, SmrOp, StateMachine,
};
use simnet::causal::cat;
use simnet::{CncPhase, Context, Node, NodeId, Time, TraceCtx, Timer, TimerId};

use crate::durable::WalRecord;
use crate::msg::{Entry, RaftMsg};

/// Span protocol label; instances are log indices, rounds are terms.
const SPAN: &str = "raft";

/// A replica's current role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Passive: responds to leaders and candidates.
    Follower,
    /// Soliciting votes after an election timeout.
    Candidate,
    /// Handles all client requests and drives replication.
    Leader,
}

const ELECTION: u64 = 1;
const HEARTBEAT: u64 = 2;
/// Flush timer for underfull replication batches (leader only).
const FLUSH: u64 = 3;

/// Heartbeat period (µs).
const HB_PERIOD: u64 = 10_000;
/// Max entries shipped per AppendEntries.
const BATCH: usize = 32;
/// Default applied-entry count that triggers a snapshot.
pub const SNAPSHOT_THRESHOLD: usize = 64;
/// Read-index quorum-contact window (µs): the leader confirms a read's
/// commit index only while a majority answered an `AppendEntries` within
/// this long. Deliberately *below* the minimum election timeout
/// (`5 · HB_PERIOD`), so a deposed leader's window always closes before a
/// successor can commit new writes — that inequality is what makes the
/// contact-based confirmation safe without extra round-trips.
const READ_CONTACT_US: u64 = 4 * HB_PERIOD;

/// A fast read parked at this replica until its commit index is confirmed
/// (by the leader) and locally applied.
struct PendingRead {
    /// Key to serve once ready.
    key: String,
    /// Node the [`RaftMsg::ReadResp`] goes back to.
    reply_to: NodeId,
    /// Leader-confirmed commit index the read must wait for (`None` while
    /// the read-index round-trip is still in flight).
    ready_at: Option<usize>,
}

/// Whether an applied write resolves a 2PC/commit decision record: a
/// decision key whose new value is a final `commit`/`abort` (the `pending`
/// init is not a resolution).
fn is_txn_decision(key: &str, value: &str) -> bool {
    consensus_core::txn::parse_decision_key(key).is_some()
        && consensus_core::txn::TxnDecision::parse(value).is_some()
}

/// A Raft server.
pub struct Replica {
    n_replicas: usize,

    // --- persistent state ---
    /// Latest term this server has seen.
    pub current_term: u64,
    /// Candidate voted for in the current term.
    pub voted_for: Option<NodeId>,
    /// The retained log. `log[0]` is the snapshot sentinel whose absolute
    /// index is `log_offset` (initially the classic index-0 sentinel).
    log: Vec<Entry>,
    /// Absolute index of `log[0]`.
    log_offset: usize,
    /// The state machine (reconstructable from snapshot + log; shipped
    /// whole in `InstallSnapshot`).
    machine: DedupKvMachine,

    // --- volatile state ---
    /// Current role.
    pub role: Role,
    /// Highest log index known committed (absolute).
    pub commit_index: usize,
    /// Highest log index applied to the machine (absolute).
    pub last_applied: usize,
    votes: usize,
    election_timer: Option<TimerId>,
    leader_hint: Option<NodeId>,

    // --- leader state ---
    next_index: Vec<usize>,
    match_index: Vec<usize>,
    pending_reply: BTreeMap<usize, NodeId>,
    /// Causal context and arrival time per unflushed log index, so the
    /// replication wave can emit queue-wait spans and chain under the
    /// oldest batched command's trace (tracing only; always maintained).
    pending_trace: BTreeMap<usize, (TraceCtx, Time)>,
    /// Elections this replica has won.
    pub elections_won: u64,

    // --- replication batching (leader only) ---
    /// Batching/pipelining knob. Under `BatchConfig::unbatched()` every
    /// appended entry triggers an immediate fan-out, exactly as before the
    /// knob existed.
    batch: BatchConfig,
    /// Entries appended to the leader's log but not yet shipped to
    /// followers. They form the next `AppendEntries` wave.
    unflushed: usize,
    /// Whether a `FLUSH` timer is outstanding.
    flush_armed: bool,
    /// The `FLUSH` timer fired while the wave was held back: ship it at the
    /// next opportunity even if underfull.
    overdue: bool,

    // --- compaction ---
    pub(crate) snapshot_threshold: usize,
    /// Snapshots this replica has taken locally.
    pub snapshots_taken: u64,
    /// Snapshots received and installed from a leader.
    pub snapshots_installed: u64,

    // --- durability ---
    /// Durable storage, when enabled: term/vote/log changes go to its WAL
    /// *before* the message they justify leaves, checkpoints absorb the
    /// applied prefix, and applied KV state is mirrored into its primary
    /// index. `None` keeps the historical everything-in-RAM behaviour.
    pub(crate) engine: Option<Box<dyn storage::StorageEngine>>,
    /// Whether WAL records were appended since the last sync.
    wal_dirty: bool,
    /// Floor restored by the most recent crash recovery (0 = none / cold).
    pub recovered_floor: usize,
    /// Entries replayed from the WAL by the most recent recovery.
    pub last_recovery_replayed: u64,
    /// Disk time the most recent recovery charged (µs).
    pub last_recovery_io_us: u64,
    /// Durable mode: transaction decision records (`~dec.<tid>` → value)
    /// this replica applied, persisted as first-class `TxnDecision` WAL
    /// records *before* the releasing reply leaves and rebuilt on recovery
    /// (from snapshot + WAL) without replaying the command history.
    txn_decisions: BTreeMap<String, String>,
    /// `TxnDecision` records appended over this replica's lifetime.
    pub txn_decisions_logged: u64,

    // --- read-index fast reads (geo read path) ---
    /// Reads parked here until confirmed + applied, keyed by
    /// `(client, seq)`. Volatile: cleared on restart (the caller's timeout
    /// falls back to the log path).
    pending_reads: BTreeMap<(u32, u64), PendingRead>,
    /// Leader: arrival time of the last `AppendResponse` per peer, for the
    /// quorum-contact check. Sim-clock based — read-index needs no
    /// synchronized clocks, which is its advantage over leases.
    last_contact: BTreeMap<usize, Time>,
    /// First index appended under the current leadership (the no-op from
    /// `become_leader`). Reads are confirmable only once it commits.
    term_start_index: usize,
    /// Fast reads this replica served from its applied state.
    pub read_index_served: u64,
    /// Read requests NACKed back to the caller (fallback to the log path).
    pub read_nacks: u64,
}

impl Replica {
    /// Creates an unbatched replica for a cluster of `n_replicas`.
    pub fn new(n_replicas: usize) -> Self {
        Self::new_with(n_replicas, BatchConfig::unbatched())
    }

    /// Creates a replica with an explicit batching config.
    pub fn new_with(n_replicas: usize, batch: BatchConfig) -> Self {
        Replica {
            n_replicas,
            current_term: 0,
            voted_for: None,
            log: vec![Entry {
                term: 0,
                op: SmrOp::Noop,
            }],
            log_offset: 0,
            machine: DedupKvMachine::default(),
            role: Role::Follower,
            commit_index: 0,
            last_applied: 0,
            votes: 0,
            election_timer: None,
            leader_hint: None,
            next_index: Vec::new(),
            match_index: Vec::new(),
            pending_reply: BTreeMap::new(),
            pending_trace: BTreeMap::new(),
            elections_won: 0,
            batch,
            unflushed: 0,
            flush_armed: false,
            overdue: false,
            snapshot_threshold: SNAPSHOT_THRESHOLD,
            snapshots_taken: 0,
            snapshots_installed: 0,
            engine: None,
            wal_dirty: false,
            recovered_floor: 0,
            last_recovery_replayed: 0,
            last_recovery_io_us: 0,
            txn_decisions: BTreeMap::new(),
            txn_decisions_logged: 0,
            pending_reads: BTreeMap::new(),
            last_contact: BTreeMap::new(),
            term_start_index: 0,
            read_index_served: 0,
            read_nacks: 0,
        }
    }

    /// Overrides the snapshot threshold (compaction experiments).
    #[must_use]
    pub fn with_snapshot_threshold(mut self, t: usize) -> Self {
        self.snapshot_threshold = t.max(1);
        self
    }

    /// Attaches a durable storage engine: the WAL-before-message
    /// discipline, checkpointing and crash recovery all activate.
    #[must_use]
    pub fn with_engine(mut self, engine: Box<dyn storage::StorageEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Storage counters, when a durable engine is attached.
    pub fn storage_stats(&self) -> Option<storage::StorageStats> {
        self.engine.as_ref().map(|e| e.stats())
    }

    /// Durable mode: the transaction decision records this replica has
    /// applied (decision key → `commit`/`abort`), survives crash recovery.
    pub fn txn_decisions(&self) -> &BTreeMap<String, String> {
        &self.txn_decisions
    }

    /// Appends a protocol record to the engine's WAL (no-op without one).
    fn wal_log(&mut self, rec: WalRecord) {
        if let Some(e) = self.engine.as_mut() {
            e.log_record(&crate::durable::encode_record(&rec));
            self.wal_dirty = true;
        }
    }

    /// Persists the Figure-2 hard state (`current_term`, `voted_for`) —
    /// called whenever either changes; the sync rides the handler's group
    /// commit before its response leaves.
    fn log_hard_state(&mut self) {
        let (term, voted_for) = (self.current_term, self.voted_for);
        self.wal_log(WalRecord::HardState { term, voted_for });
    }

    /// Group-commits everything this handler logged (no-op when nothing
    /// is outstanding) and charges the modeled device time to the current
    /// causal trace.
    fn wal_sync(&mut self, ctx: &mut Context<RaftMsg>) {
        if !self.wal_dirty {
            return;
        }
        self.wal_dirty = false;
        if let Some(e) = self.engine.as_mut() {
            let before = e.stats().io_time_us;
            e.sync();
            let spent = e.stats().io_time_us - before;
            if spent > 0 {
                ctx.charge_io("wal-sync", spent);
            }
        }
    }

    /// Mirrors one freshly applied entry's effects into the durable
    /// engine's primary index. `out` is the machine's actual output, so a
    /// failed CAS mirrors nothing. Callers must skip entries the dedup
    /// table absorbed (a duplicate `(client, seq)` at a second log index
    /// does not mutate the machine, so re-mirroring its payload would
    /// clobber newer state).
    ///
    /// Returns `true` when the entry resolved a transaction decision
    /// record: the outcome was additionally appended to the WAL as a
    /// first-class [`WalRecord::TxnDecision`], and the caller must sync
    /// before the releasing reply leaves.
    fn mirror_applied(&mut self, op: &SmrOp, out: Option<&KvResponse>) -> bool {
        if self.engine.is_none() {
            return false;
        }
        let SmrOp::Cmd(cmd) = op else { return false };
        let mut decision: Option<(String, String)> = None;
        {
            // Authoritative range answer from the machine, computed before
            // the engine borrow.
            let range_check = match &cmd.op {
                KvCommand::Range { start, end, limit } => Some((
                    start.clone(),
                    end.clone(),
                    *limit,
                    self.machine.kv().scan(start, end, *limit),
                )),
                _ => None,
            };
            let engine = self.engine.as_mut().expect("checked above");
            match &cmd.op {
                KvCommand::Put { key, value } => {
                    engine.put(key, value);
                    if is_txn_decision(key, value) {
                        decision = Some((key.clone(), value.clone()));
                    }
                }
                KvCommand::Delete { key } => engine.delete(key),
                KvCommand::Cas { key, new, .. } => {
                    if matches!(out, Some(KvResponse::CasResult { swapped: true })) {
                        engine.put(key, new);
                        if is_txn_decision(key, new) {
                            decision = Some((key.clone(), new.clone()));
                        }
                    }
                }
                KvCommand::Get { .. } | KvCommand::Range { .. } => {}
            }
            // Serve every range from the on-disk primary index too: charges
            // the honest B+ tree scan I/O and cross-checks the index
            // against the machine's sorted map.
            if let Some((start, end, limit, want)) = range_check {
                let mut got = engine.scan(&start, &end);
                got.truncate(limit);
                assert_eq!(got, want, "engine index diverged from machine on range scan");
            }
        }
        let resolved = decision.is_some();
        if let Some((key, value)) = decision {
            self.txn_decisions.insert(key.clone(), value.clone());
            self.txn_decisions_logged += 1;
            self.wal_log(WalRecord::TxnDecision { key, value });
        }
        resolved
    }

    /// Rebuilds the engine's primary index from the full machine state —
    /// used after installing a snapshot (local recovery or leader state
    /// transfer). Keys the incoming state no longer has are dropped first
    /// (a leader snapshot may land on a live index), then everything is
    /// upserted; this pays the honest rebuild I/O that recovery-time
    /// experiments measure.
    fn mirror_full_state(&mut self) {
        if self.engine.is_none() {
            return;
        }
        let entries: Vec<(String, String)> = self
            .machine
            .kv()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let live: std::collections::BTreeSet<&str> =
            entries.iter().map(|(k, _)| k.as_str()).collect();
        let engine = self.engine.as_mut().expect("checked above");
        let stale: Vec<String> = engine
            .scan("", "\u{10FFFF}")
            .into_iter()
            .map(|(k, _)| k)
            .filter(|k| !live.contains(k.as_str()))
            .collect();
        for k in &stale {
            engine.delete(k);
        }
        for (k, v) in &entries {
            engine.put(k, v);
        }
        // Decision records captured by the checkpoint re-seed the decision
        // table; WAL replay then adds anything resolved after it.
        for (k, v) in &entries {
            if is_txn_decision(k, v) {
                self.txn_decisions.insert(k.clone(), v.clone());
            }
        }
    }

    /// Writes the machine state through the engine as a snapshot (which
    /// truncates the WAL) and re-logs every record still live: the hard
    /// state, the retained log suffix, and the commit index. After this,
    /// recovery = snapshot load + WAL replay.
    fn persist_checkpoint(&mut self) {
        use crate::durable::{encode_record, encode_snapshot};
        if self.engine.is_none() {
            return;
        }
        let blob = encode_snapshot(&self.machine, self.log_offset, self.log[0].term);
        let hard_state = encode_record(&WalRecord::HardState {
            term: self.current_term,
            voted_for: self.voted_for,
        });
        let engine = self.engine.as_mut().expect("checked above");
        engine.write_snapshot(&blob);
        engine.log_record(&hard_state);
        for (rel, entry) in self.log.iter().enumerate().skip(1) {
            engine.log_record(&encode_record(&WalRecord::Append {
                index: self.log_offset + rel,
                entry: entry.clone(),
            }));
        }
        if self.commit_index > self.log_offset {
            engine.log_record(&encode_record(&WalRecord::Commit {
                index: self.commit_index,
            }));
        }
        engine.sync();
        self.wal_dirty = false;
    }

    /// Crash recovery: reformat the engine's volatile layers, load the
    /// last checkpoint, replay the WAL in order. Everything the
    /// pre-durability model declared axiomatically persistent (term, vote,
    /// log, machine) is rebuilt here from actual on-disk bytes — and the
    /// disk charges for every read, which is what recovery-time
    /// experiments measure.
    fn recover_from_engine(&mut self) {
        use crate::durable::{decode_record, decode_snapshot};
        let (recovery, io_before) = {
            let engine = self.engine.as_mut().expect("durable mode");
            let io_before = engine.stats().io_time_us;
            engine.crash();
            (engine.recover(), io_before)
        };
        self.wal_dirty = false;
        self.current_term = 0;
        self.voted_for = None;
        self.log = vec![Entry {
            term: 0,
            op: SmrOp::Noop,
        }];
        self.log_offset = 0;
        self.machine = DedupKvMachine::default();
        self.commit_index = 0;
        self.last_applied = 0;
        self.leader_hint = None;
        self.txn_decisions.clear();
        if let Some(blob) = recovery.snapshot {
            let (machine, idx, term) =
                decode_snapshot(&blob).expect("checkpoint blob decodes");
            self.log = vec![Entry {
                term,
                op: SmrOp::Noop,
            }];
            self.log_offset = idx;
            self.machine = machine;
            self.commit_index = idx;
            self.last_applied = idx;
            self.mirror_full_state();
        }
        let mut replayed = 0u64;
        let mut commit = self.commit_index;
        for raw in &recovery.records {
            let rec = decode_record(raw).expect("CRC-valid WAL record decodes");
            replayed += 1;
            match rec {
                WalRecord::HardState { term, voted_for } => {
                    if term >= self.current_term {
                        self.current_term = term;
                        self.voted_for = voted_for;
                    }
                }
                WalRecord::Append { index, entry } => {
                    if index <= self.log_offset {
                        continue; // absorbed by the checkpoint
                    }
                    let rel = index - self.log_offset;
                    self.log.truncate(rel.min(self.log.len()));
                    assert_eq!(rel, self.log.len(), "WAL append out of order at {index}");
                    self.log.push(entry);
                }
                WalRecord::Truncate { from } => {
                    if from > self.log_offset {
                        let rel = from - self.log_offset;
                        self.log.truncate(rel.min(self.log.len()));
                    }
                }
                WalRecord::Commit { index } => commit = commit.max(index),
                WalRecord::TxnDecision { key, value } => {
                    self.txn_decisions.insert(key, value);
                }
            }
        }
        // Re-apply to the recovered commit frontier (never past the log —
        // an unsynced `Commit` may reference entries that didn't survive;
        // the next leader round re-commits them).
        self.commit_index = commit.min(self.last_log_index());
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            let i = self.last_applied;
            if i <= self.log_offset {
                continue;
            }
            let op = self.entry(i).expect("committed and retained").op.clone();
            let fresh = match &op {
                SmrOp::Cmd(cmd) => self.machine.cached(cmd.client, cmd.seq).is_none(),
                SmrOp::Noop => false,
            };
            let out = self.machine.apply(&op);
            if fresh {
                self.mirror_applied(&op, out.as_ref());
            }
        }
        self.recovered_floor = self.log_offset;
        self.last_recovery_replayed = replayed;
        self.last_recovery_io_us = self
            .engine
            .as_ref()
            .expect("durable mode")
            .stats()
            .io_time_us
            - io_before;
    }

    /// Absolute index of the last log entry.
    pub fn last_log_index(&self) -> usize {
        self.log_offset + self.log.len() - 1
    }

    /// Term of the last log entry.
    pub fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    /// Absolute index of the snapshot sentinel (entries below are gone).
    pub fn log_offset(&self) -> usize {
        self.log_offset
    }

    /// Number of retained log entries (excluding the sentinel).
    pub fn retained_len(&self) -> usize {
        self.log.len() - 1
    }

    /// The replicated state machine.
    pub fn machine(&self) -> &DedupKvMachine {
        &self.machine
    }

    /// Entry at absolute `index`, if still retained.
    pub fn entry(&self, index: usize) -> Option<&Entry> {
        index
            .checked_sub(self.log_offset)
            .and_then(|rel| self.log.get(rel))
    }

    /// Term at absolute `index` (`None` if compacted away or beyond the
    /// end).
    pub fn term_at(&self, index: usize) -> Option<u64> {
        self.entry(index).map(|e| e.term)
    }

    fn majority(&self) -> usize {
        self.n_replicas / 2 + 1
    }

    /// Highest log index already included in a replication wave. Entries
    /// above it are queued for the next `AppendEntries` fan-out.
    fn flushed_tip(&self) -> usize {
        self.last_log_index() - self.unflushed
    }

    /// Ships the queued entries if the batch is ripe: full, overdue, or
    /// configured for immediate flushing — but never while `pipeline_window`
    /// uncommitted entries are already on the wire (commits drain the
    /// window and re-trigger this via [`Self::set_commit_index`]).
    fn maybe_flush(&mut self, ctx: &mut Context<RaftMsg>) {
        if self.role != Role::Leader || self.unflushed == 0 {
            return;
        }
        let in_flight = self.flushed_tip().saturating_sub(self.commit_index);
        if in_flight >= self.batch.pipeline_window {
            return;
        }
        let underfull = self.unflushed < self.batch.max_batch.max(1);
        if underfull && self.batch.max_delay > 0 && !self.overdue {
            if !self.flush_armed {
                self.flush_armed = true;
                ctx.set_timer(self.batch.max_delay, FLUSH);
            }
            return;
        }
        self.overdue = false;
        ctx.record_batch(self.unflushed as u64);
        let wave_from = self.flushed_tip() + 1;
        self.unflushed = 0;
        self.note_wave(ctx, wave_from);
        self.replicate_all(ctx);
    }

    /// Emits queue-wait spans for the entries in the shipping wave
    /// (`wave_from..=last_log_index`) and rebinds the send context to the
    /// oldest one, so the `AppendEntries` fan-out chains under the first
    /// batched command's trace — exactly the Multi-Paxos convention.
    fn note_wave(&mut self, ctx: &mut Context<RaftMsg>, wave_from: usize) {
        let mut first: Option<TraceCtx> = None;
        for i in wave_from..=self.last_log_index() {
            if let Some(&(tc, enqueued)) = self.pending_trace.get(&i) {
                if ctx.now() > enqueued {
                    ctx.trace_span_since(tc, "batch-queue", cat::QUEUE, enqueued);
                }
                first = first.or(Some(tc));
            }
        }
        if first.is_some() {
            ctx.set_trace_ctx(first);
        }
    }

    fn reset_batching(&mut self) {
        self.unflushed = 0;
        self.flush_armed = false;
        self.overdue = false;
    }

    fn reset_election_timer(&mut self, ctx: &mut Context<RaftMsg>) {
        use rand::Rng;
        if let Some(t) = self.election_timer.take() {
            ctx.cancel_timer(t);
        }
        // Raft's randomized timeout: [5, 10] heartbeat periods.
        let timeout = ctx.rng().gen_range(5 * HB_PERIOD..=10 * HB_PERIOD);
        self.election_timer = Some(ctx.set_timer(timeout, ELECTION));
    }

    fn become_follower(&mut self, ctx: &mut Context<RaftMsg>, term: u64) {
        if term > self.current_term {
            self.current_term = term;
            self.voted_for = None;
            self.log_hard_state();
        }
        self.role = Role::Follower;
        self.reset_batching();
        self.reset_election_timer(ctx);
    }

    fn start_election(&mut self, ctx: &mut Context<RaftMsg>) {
        self.current_term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(ctx.id());
        self.votes = 1; // own vote
        self.log_hard_state();
        self.wal_sync(ctx); // term + self-vote durable before soliciting
        self.reset_election_timer(ctx);
        ctx.phase(
            SPAN,
            self.commit_index as u64 + 1,
            self.current_term,
            CncPhase::LeaderElection,
        );
        // Multicast to the replica set only (`0..n_replicas`): clients share
        // the node space, and with a transmit-limited NIC every stray
        // delivery costs the sender serialization time.
        let me = ctx.id();
        ctx.send_many(
            (0..self.n_replicas).map(NodeId::from).filter(|&r| r != me),
            RaftMsg::RequestVote {
                term: self.current_term,
                last_log_index: self.last_log_index(),
                last_log_term: self.last_log_term(),
            },
        );
        if self.votes >= self.majority() {
            self.become_leader(ctx);
        }
    }

    fn become_leader(&mut self, ctx: &mut Context<RaftMsg>) {
        self.role = Role::Leader;
        self.reset_batching();
        self.elections_won += 1;
        self.leader_hint = Some(ctx.id());
        self.next_index = vec![self.last_log_index() + 1; self.n_replicas];
        self.match_index = vec![0; self.n_replicas];
        // A no-op entry lets the new leader commit entries from earlier
        // terms immediately (the commit rule only counts current-term
        // entries). Flushing the inherited suffix this way is Raft's form
        // of the C&C value-discovery phase.
        ctx.phase(
            SPAN,
            self.last_log_index() as u64 + 1,
            self.current_term,
            CncPhase::ValueDiscovery,
        );
        self.log.push(Entry {
            term: self.current_term,
            op: SmrOp::Noop,
        });
        self.wal_log(WalRecord::Append {
            index: self.last_log_index(),
            entry: self.log.last().expect("just pushed").clone(),
        });
        self.wal_sync(ctx); // the no-op is durable before it replicates
        self.match_index[ctx.id().index()] = self.last_log_index();
        // Reads are confirmable only after this no-op commits; contact
        // history from older terms never carries over.
        self.term_start_index = self.last_log_index();
        self.last_contact.clear();
        self.replicate_all(ctx);
        ctx.set_timer(HB_PERIOD, HEARTBEAT);
    }

    fn replicate_all(&mut self, ctx: &mut Context<RaftMsg>) {
        for peer in 0..self.n_replicas {
            let peer = NodeId::from(peer);
            if peer != ctx.id() {
                self.replicate_to(ctx, peer);
            }
        }
    }

    fn replicate_to(&mut self, ctx: &mut Context<RaftMsg>, peer: NodeId) {
        let next = self.next_index[peer.index()].max(1);
        if next <= self.log_offset {
            // The entries the follower needs are compacted: ship the
            // snapshot instead.
            ctx.send(
                peer,
                RaftMsg::InstallSnapshot {
                    term: self.current_term,
                    last_included_index: self.log_offset,
                    last_included_term: self.log[0].term,
                    machine: Box::new(self.machine.clone()),
                },
            );
            // Optimistic, like the entry path below: don't re-ship the
            // snapshot on every trigger while this one is in flight.
            self.next_index[peer.index()] = self.log_offset + 1;
            return;
        }
        let prev_log_index = next - 1;
        let prev_log_term = self
            .term_at(prev_log_index)
            .expect("prev ≥ log_offset is retained");
        let rel_next = next - self.log_offset;
        // Ship at most a wire batch, and never past the flushed tip:
        // queued-but-unflushed entries wait for their wave (an empty
        // entries list is just a heartbeat).
        let end = (rel_next + BATCH.max(self.batch.max_batch))
            .min(self.log.len())
            .min(self.flushed_tip() - self.log_offset + 1)
            .max(rel_next);
        let entries: Vec<Entry> = self.log[rel_next..end].to_vec();
        // Advance `next_index` optimistically to just past what was shipped,
        // so concurrent triggers (new requests, acks, heartbeats) don't
        // re-ship the in-flight suffix — without this, every trigger
        // re-sends everything unacked and the AppendEntries↔ack ping-pong
        // saturates a transmit-limited NIC. A lost wave self-heals: the
        // next heartbeat's consistency check fails at the follower, whose
        // nack hint walks `next_index` back down.
        self.next_index[peer.index()] = self.log_offset + end;
        ctx.send(
            peer,
            RaftMsg::AppendEntries {
                term: self.current_term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        );
    }

    fn advance_commit(&mut self, ctx: &mut Context<RaftMsg>) {
        for n in (self.commit_index + 1..=self.last_log_index()).rev() {
            if self.term_at(n) != Some(self.current_term) {
                continue;
            }
            let replicated = self.match_index.iter().filter(|&&m| m >= n).count();
            if replicated >= self.majority() {
                self.set_commit_index(ctx, n);
                break;
            }
        }
    }

    fn set_commit_index(&mut self, ctx: &mut Context<RaftMsg>, index: usize) {
        let index = index.min(self.last_log_index());
        if index > self.commit_index {
            self.commit_index = index;
            self.wal_log(WalRecord::Commit { index: self.commit_index });
        }
        // Apply in order; entries ≤ log_offset are already reflected in the
        // machine (they came from a snapshot).
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            let i = self.last_applied;
            if i <= self.log_offset {
                continue;
            }
            let op = self.entry(i).expect("committed and retained").op.clone();
            self.pending_trace.remove(&i);
            ctx.phase(SPAN, i as u64, self.current_term, CncPhase::Decision);
            ctx.span_close(SPAN, i as u64, self.current_term);
            // A duplicate `(client, seq)` at a second index is absorbed by
            // the dedup table without mutating the machine — don't mirror
            // its payload over newer state.
            let fresh = match &op {
                SmrOp::Cmd(cmd) => self.machine.cached(cmd.client, cmd.seq).is_none(),
                SmrOp::Noop => false,
            };
            let out = self.machine.apply(&op);
            if fresh && self.mirror_applied(&op, out.as_ref()) {
                // WAL-before-decision: the entry resolved a transaction
                // decision record — its dedicated WAL entry must be on
                // disk before the reply that releases the transaction.
                self.wal_sync(ctx);
            }
            if self.role == Role::Leader {
                if let (Some(client_node), Some(output), SmrOp::Cmd(cmd)) =
                    (self.pending_reply.remove(&i), out, &op)
                {
                    ctx.send(
                        client_node,
                        RaftMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output,
                        },
                    );
                }
            }
        }
        // A fresh applied frontier may unlock parked fast reads.
        self.serve_ready_reads(ctx);
        self.maybe_snapshot();
        // Commits drain the pipeline window: a held-back wave may now ship.
        self.maybe_flush(ctx);
    }

    /// Compact the applied prefix once it exceeds the threshold.
    fn maybe_snapshot(&mut self) {
        let applied_retained = self.last_applied.saturating_sub(self.log_offset);
        if applied_retained < self.snapshot_threshold {
            return;
        }
        let new_offset = self.last_applied;
        let sentinel_term = self
            .term_at(new_offset)
            .expect("applied entries are retained");
        let keep_from_rel = new_offset - self.log_offset + 1;
        let mut new_log = Vec::with_capacity(self.log.len() - keep_from_rel + 1);
        new_log.push(Entry {
            term: sentinel_term,
            op: SmrOp::Noop,
        });
        new_log.extend_from_slice(&self.log[keep_from_rel..]);
        self.log = new_log;
        self.log_offset = new_offset;
        self.snapshots_taken += 1;
        // Durable mode: the checkpoint truncates the WAL and re-logs the
        // retained suffix, so recovery cost stays bounded.
        self.persist_checkpoint();
    }

    fn log_up_to_date(&self, last_index: usize, last_term: u64) -> bool {
        last_term > self.last_log_term()
            || (last_term == self.last_log_term() && last_index >= self.last_log_index())
    }

    /// Leader-side: whether this leader may confirm read indices right now —
    /// a majority (counting itself) answered an `AppendEntries` within the
    /// contact window, and the current term's no-op has committed (before
    /// that, `commit_index` may miss writes the previous leader
    /// acknowledged).
    fn can_confirm_reads(&self, ctx: &Context<RaftMsg>) -> bool {
        if self.role != Role::Leader || self.commit_index < self.term_start_index {
            return false;
        }
        let now = ctx.now();
        let fresh = self
            .last_contact
            .values()
            .filter(|&&t| now.0.saturating_sub(t.0) <= READ_CONTACT_US)
            .count();
        fresh + 1 >= self.majority()
    }

    /// Serves every parked read whose confirmed commit index has applied
    /// locally. The value comes from the applied machine, so it reflects
    /// every write acknowledged before the read arrived.
    fn serve_ready_reads(&mut self, ctx: &mut Context<RaftMsg>) {
        let ready: Vec<(u32, u64)> = self
            .pending_reads
            .iter()
            .filter(|(_, p)| p.ready_at.is_some_and(|i| self.last_applied >= i))
            .map(|(&k, _)| k)
            .collect();
        for (client, seq) in ready {
            let p = self
                .pending_reads
                .remove(&(client, seq))
                .expect("just listed");
            self.read_index_served += 1;
            let value = self.machine.kv().get(&p.key).cloned();
            ctx.send(
                p.reply_to,
                RaftMsg::ReadResp {
                    client,
                    seq,
                    value,
                    mode: ReadMode::ReadIndex,
                },
            );
        }
    }

    /// Refuses a fast read: the caller falls back to the log path.
    fn nack_read(&mut self, ctx: &mut Context<RaftMsg>, client: u32, seq: u64, to: NodeId) {
        self.read_nacks += 1;
        ctx.send(
            to,
            RaftMsg::ReadResp {
                client,
                seq,
                value: None,
                mode: ReadMode::Nack,
            },
        );
    }
}

impl Node for Replica {
    type Msg = RaftMsg;

    fn on_start(&mut self, ctx: &mut Context<RaftMsg>) {
        self.reset_election_timer(ctx);
        // Bias node 0 to win the first election fast: fire almost at once.
        if ctx.id() == NodeId(0) {
            if let Some(t) = self.election_timer.take() {
                ctx.cancel_timer(t);
            }
            self.election_timer = Some(ctx.set_timer(1_000, ELECTION));
        }
    }

    fn on_message(&mut self, ctx: &mut Context<RaftMsg>, from: NodeId, msg: RaftMsg) {
        match msg {
            RaftMsg::Request { cmd } => {
                if self.role != Role::Leader {
                    ctx.send(
                        from,
                        RaftMsg::NotLeader {
                            seq: cmd.seq,
                            hint: self.leader_hint.unwrap_or(NodeId(0)),
                        },
                    );
                    return;
                }
                if let Some(out) = self.machine.cached(cmd.client, cmd.seq) {
                    ctx.send(
                        from,
                        RaftMsg::Reply {
                            client: cmd.client,
                            seq: cmd.seq,
                            output: out.clone(),
                        },
                    );
                    return;
                }
                let uncommitted_from = self
                    .commit_index
                    .max(self.log_offset)
                    .saturating_sub(self.log_offset)
                    + 1;
                let in_flight = self.log[uncommitted_from.min(self.log.len())..]
                    .iter()
                    .any(|e| {
                        matches!(&e.op, SmrOp::Cmd(c) if c.client == cmd.client && c.seq == cmd.seq)
                    });
                if in_flight {
                    return;
                }
                self.log.push(Entry {
                    term: self.current_term,
                    op: SmrOp::Cmd(cmd),
                });
                let index = self.last_log_index();
                self.wal_log(WalRecord::Append {
                    index,
                    entry: self.log.last().expect("just pushed").clone(),
                });
                self.wal_sync(ctx); // entry durable before the leader counts it
                ctx.span_open(SPAN, index as u64, self.current_term);
                ctx.phase(SPAN, index as u64, self.current_term, CncPhase::Agreement);
                self.match_index[ctx.id().index()] = index;
                self.pending_reply.insert(index, from);
                if let Some(tc) = ctx.trace_ctx() {
                    self.pending_trace.insert(index, (tc, ctx.now()));
                }
                self.unflushed += 1;
                self.maybe_flush(ctx);
            }

            RaftMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => {
                if term > self.current_term {
                    self.become_follower(ctx, term);
                }
                let grant = term == self.current_term
                    && (self.voted_for.is_none() || self.voted_for == Some(from))
                    && self.log_up_to_date(last_log_index, last_log_term);
                if grant {
                    self.voted_for = Some(from);
                    self.log_hard_state();
                    self.reset_election_timer(ctx);
                }
                self.wal_sync(ctx); // term/vote durable before the response
                ctx.send(
                    from,
                    RaftMsg::VoteResponse {
                        term: self.current_term,
                        granted: grant,
                    },
                );
            }

            RaftMsg::VoteResponse { term, granted } => {
                if term > self.current_term {
                    self.become_follower(ctx, term);
                    return;
                }
                if self.role == Role::Candidate && term == self.current_term && granted {
                    self.votes += 1;
                    if self.votes >= self.majority() {
                        self.become_leader(ctx);
                    }
                }
            }

            RaftMsg::AppendEntries {
                term,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => {
                if term < self.current_term {
                    ctx.send(
                        from,
                        RaftMsg::AppendResponse {
                            term: self.current_term,
                            success: false,
                            match_index: 0,
                        },
                    );
                    return;
                }
                self.become_follower(ctx, term);
                self.leader_hint = Some(from);

                if prev_log_index < self.log_offset {
                    // We have a snapshot past `prev`: ask the leader to
                    // resume from our offset.
                    self.wal_sync(ctx); // any term bump durable first
                    ctx.send(
                        from,
                        RaftMsg::AppendResponse {
                            term: self.current_term,
                            success: false,
                            match_index: self.log_offset,
                        },
                    );
                    return;
                }

                // Consistency check.
                let ok = self.term_at(prev_log_index) == Some(prev_log_term);
                if !ok {
                    let hint = prev_log_index
                        .saturating_sub(1)
                        .min(self.last_log_index())
                        .max(self.log_offset);
                    self.wal_sync(ctx); // any term bump durable first
                    ctx.send(
                        from,
                        RaftMsg::AppendResponse {
                            term: self.current_term,
                            success: false,
                            match_index: hint,
                        },
                    );
                    return;
                }
                // Append, truncating conflicts.
                let mut index = prev_log_index;
                for entry in entries {
                    index += 1;
                    match self.entry(index) {
                        Some(existing) if existing.term == entry.term => {}
                        Some(_) => {
                            assert!(
                                index > self.commit_index,
                                "attempted to truncate a committed entry"
                            );
                            self.log.truncate(index - self.log_offset);
                            self.wal_log(WalRecord::Truncate { from: index });
                            self.log.push(entry.clone());
                            self.wal_log(WalRecord::Append { index, entry });
                        }
                        None => {
                            self.log.push(entry.clone());
                            self.wal_log(WalRecord::Append { index, entry });
                        }
                    }
                }
                if leader_commit > self.commit_index {
                    let last_new = index;
                    self.set_commit_index(ctx, leader_commit.min(last_new));
                }
                // One group commit covers the term bump, every appended
                // entry, and the commit advance — WAL-before-ack.
                self.wal_sync(ctx);
                ctx.send(
                    from,
                    RaftMsg::AppendResponse {
                        term: self.current_term,
                        success: true,
                        match_index: index,
                    },
                );
            }

            RaftMsg::InstallSnapshot {
                term,
                last_included_index,
                last_included_term,
                machine,
            } => {
                if term < self.current_term {
                    return;
                }
                self.become_follower(ctx, term);
                self.leader_hint = Some(from);
                if last_included_index <= self.log_offset {
                    return; // stale snapshot
                }
                if self.term_at(last_included_index) == Some(last_included_term) {
                    // The snapshot is a prefix of our log: keep the suffix.
                    let keep_rel = last_included_index - self.log_offset;
                    let mut new_log = vec![Entry {
                        term: last_included_term,
                        op: SmrOp::Noop,
                    }];
                    new_log.extend_from_slice(&self.log[keep_rel + 1..]);
                    self.log = new_log;
                } else {
                    // Discard the whole log.
                    self.log = vec![Entry {
                        term: last_included_term,
                        op: SmrOp::Noop,
                    }];
                }
                self.log_offset = last_included_index;
                self.machine = *machine;
                self.last_applied = last_included_index;
                self.commit_index = self.commit_index.max(last_included_index);
                self.snapshots_installed += 1;
                // The applied frontier jumped: parked fast reads may serve.
                self.serve_ready_reads(ctx);
                // Durable mode: rebuild the on-disk index from the shipped
                // state and checkpoint it, so the install survives a crash
                // that follows the ack.
                self.mirror_full_state();
                self.persist_checkpoint();
                ctx.send(
                    from,
                    RaftMsg::AppendResponse {
                        term: self.current_term,
                        success: true,
                        match_index: last_included_index,
                    },
                );
            }

            RaftMsg::AppendResponse {
                term,
                success,
                match_index,
            } => {
                if term > self.current_term {
                    self.become_follower(ctx, term);
                    return;
                }
                if self.role != Role::Leader || term != self.current_term {
                    return;
                }
                let peer = from.index();
                // Any same-term response counts as contact: the peer is
                // reachable and still recognizes this leadership.
                self.last_contact.insert(peer, ctx.now());
                if success {
                    self.match_index[peer] = self.match_index[peer].max(match_index);
                    // Never regress an optimistic `next_index` on a (possibly
                    // stale) ack — regressing would re-ship the in-flight
                    // suffix and restart the ping-pong.
                    self.next_index[peer] = self.next_index[peer].max(self.match_index[peer] + 1);
                    self.advance_commit(ctx);
                    if self.next_index[peer] <= self.flushed_tip() {
                        self.replicate_to(ctx, from);
                    }
                } else {
                    self.next_index[peer] = (match_index + 1).clamp(1, self.last_log_index() + 1);
                    self.replicate_to(ctx, from);
                }
            }

            RaftMsg::ReadReq { client, seq, key } => {
                if self.role == Role::Leader {
                    if self.can_confirm_reads(ctx) {
                        self.pending_reads.insert(
                            (client, seq),
                            PendingRead {
                                key,
                                reply_to: from,
                                ready_at: Some(self.commit_index),
                            },
                        );
                        self.serve_ready_reads(ctx);
                    } else {
                        self.nack_read(ctx, client, seq, from);
                    }
                } else if let Some(leader) = self.leader_hint {
                    // Park the read and ask the leader to confirm its
                    // commit index; we serve from local applied state once
                    // it both confirms and applies here.
                    self.pending_reads.insert(
                        (client, seq),
                        PendingRead {
                            key,
                            reply_to: from,
                            ready_at: None,
                        },
                    );
                    ctx.send(leader, RaftMsg::ReadIndexQ { client, seq });
                } else {
                    self.nack_read(ctx, client, seq, from);
                }
            }

            RaftMsg::ReadIndexQ { client, seq } => {
                let index = if self.can_confirm_reads(ctx) {
                    self.commit_index as u64
                } else {
                    u64::MAX
                };
                ctx.send(from, RaftMsg::ReadIndexR { client, seq, index });
            }

            RaftMsg::ReadIndexR { client, seq, index } => {
                if index == u64::MAX {
                    if let Some(p) = self.pending_reads.remove(&(client, seq)) {
                        self.nack_read(ctx, client, seq, p.reply_to);
                    }
                } else if let Some(p) = self.pending_reads.get_mut(&(client, seq)) {
                    p.ready_at = Some(index as usize);
                    self.serve_ready_reads(ctx);
                }
            }

            RaftMsg::Reply { .. } | RaftMsg::NotLeader { .. } | RaftMsg::ReadResp { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<RaftMsg>, timer: Timer) {
        match timer.kind {
            ELECTION if self.role != Role::Leader => self.start_election(ctx),
            HEARTBEAT if self.role == Role::Leader => {
                // The heartbeat fan-out ships everything anyway: fold any
                // queued wave into it.
                if self.unflushed > 0 {
                    ctx.record_batch(self.unflushed as u64);
                    let wave_from = self.flushed_tip() + 1;
                    self.unflushed = 0;
                    self.overdue = false;
                    self.note_wave(ctx, wave_from);
                }
                self.replicate_all(ctx);
                ctx.set_timer(HB_PERIOD, HEARTBEAT);
            }
            FLUSH => {
                self.flush_armed = false;
                if self.role == Role::Leader && self.unflushed > 0 {
                    self.overdue = true;
                    self.maybe_flush(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, ctx: &mut Context<RaftMsg>) {
        // Leadership and volatile indices never survive a restart.
        self.role = Role::Follower;
        self.votes = 0;
        self.pending_reply.clear();
        self.pending_trace.clear();
        self.pending_reads.clear();
        self.last_contact.clear();
        self.reset_batching();
        self.election_timer = None;
        if self.engine.is_some() {
            // Durable mode: term, vote, log, and machine exist only as WAL
            // records and checkpoints. Rebuild them the honest way.
            self.recover_from_engine();
        }
        // else: the historical RAM model — current_term, voted_for, log,
        // snapshot, and machine are axiomatically durable and still here.
        self.reset_election_timer(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_replica_invariants() {
        let r = Replica::new(3);
        assert_eq!(r.role, Role::Follower);
        assert_eq!(r.last_log_index(), 0);
        assert_eq!(r.last_log_term(), 0);
        assert_eq!(r.commit_index, 0);
        assert_eq!(r.log_offset(), 0);
    }

    #[test]
    fn log_up_to_date_rule() {
        let mut r = Replica::new(3);
        r.log.push(Entry {
            term: 2,
            op: SmrOp::Noop,
        });
        assert!(r.log_up_to_date(1, 3));
        assert!(r.log_up_to_date(1, 2));
        assert!(r.log_up_to_date(2, 2));
        assert!(!r.log_up_to_date(10, 1));
    }

    #[test]
    fn term_at_respects_compaction_boundaries() {
        let mut r = Replica::new(3);
        for t in 1..=5u64 {
            r.log.push(Entry {
                term: t,
                op: SmrOp::Noop,
            });
        }
        // Simulate a snapshot at absolute index 3.
        r.commit_index = 5;
        r.last_applied = 5;
        r.log_offset = 0;
        r.snapshot_threshold = 1;
        r.maybe_snapshot();
        assert_eq!(r.log_offset(), 5);
        assert_eq!(r.term_at(5), Some(5), "sentinel keeps its term");
        assert_eq!(r.term_at(2), None, "compacted entries are gone");
        assert_eq!(r.last_log_index(), 5);
        assert_eq!(r.retained_len(), 0);
    }
}
