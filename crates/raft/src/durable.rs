//! On-disk formats for durable Raft: WAL records and machine snapshots,
//! hand-encoded via [`storage::codec`] — the same discipline as
//! `paxos::durable`, with Raft's own persistent state in the records.
//!
//! ## WAL records
//!
//! | tag | record | payload |
//! |---|---|---|
//! | 1 | `HardState` | `current_term: u64`, `voted_for: u32` (`MAX` = none) |
//! | 2 | `Append` | absolute index `u64`, entry (term + op) |
//! | 3 | `Truncate` | first absolute index dropped `u64` |
//! | 4 | `Commit` | commit index `u64` |
//! | 5 | `TxnDecision` | key `str`, value `str` |
//!
//! Figure 2 of the Raft paper marks `currentTerm`, `votedFor`, and `log[]`
//! persistent: the replica logs a `HardState` whenever term or vote
//! changes and an `Append`/`Truncate` whenever the log does, and `sync`s
//! before the externally visible message each change justifies — a vote
//! before the `VoteResponse`, an append before the `AppendResponse` (or,
//! on the leader, before the entry is replicated). `Commit` records are an
//! optimization, not a safety requirement (Raft's commit index is
//! volatile): replaying them lets a restarted replica re-apply to its old
//! frontier without waiting for a leader round-trip.
//!
//! `TxnDecision` carries the store's WAL-before-decision discipline (see
//! `paxos::durable`): a slot that resolves a `~dec.<tid>` record is synced
//! before the releasing reply leaves.
//!
//! ## Snapshot blob
//!
//! `last_included_index`, `last_included_term`, then the
//! [`DedupKvMachine`]: KV applied-counter, KV entries, client table.
//! Restoring must reproduce the machine digest bit-for-bit — the nemesis
//! fingerprint oracle depends on it.

use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, KvStore, SmrOp};
use simnet::NodeId;
use storage::codec::{put_str, put_u32, put_u64, Reader};

use crate::msg::Entry;

/// Sentinel for `voted_for: None` on the wire.
const NO_VOTE: u32 = u32::MAX;

/// WAL record decoded back from bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Term and vote changed: both persist atomically (Figure 2).
    HardState {
        /// Latest term this server has seen.
        term: u64,
        /// Candidate voted for in that term.
        voted_for: Option<NodeId>,
    },
    /// An entry was appended at an absolute index.
    Append {
        /// Absolute log index.
        index: usize,
        /// The entry.
        entry: Entry,
    },
    /// Conflicting suffix dropped: entries at `from` and above are gone.
    Truncate {
        /// First absolute index dropped.
        from: usize,
    },
    /// The commit index advanced (recovery accelerator, not safety).
    Commit {
        /// New commit index.
        index: usize,
    },
    /// An applied entry resolved a transaction decision record: persisted
    /// *before* the releasing reply leaves (WAL-before-decision).
    TxnDecision {
        /// The decision key (`~dec.<tid>`).
        key: String,
        /// The resolved decision value (`commit` / `abort`).
        value: String,
    },
}

fn put_kv_command(buf: &mut Vec<u8>, op: &KvCommand) {
    match op {
        KvCommand::Put { key, value } => {
            put_u32(buf, 0);
            put_str(buf, key);
            put_str(buf, value);
        }
        KvCommand::Get { key } => {
            put_u32(buf, 1);
            put_str(buf, key);
        }
        KvCommand::Delete { key } => {
            put_u32(buf, 2);
            put_str(buf, key);
        }
        KvCommand::Cas { key, expect, new } => {
            put_u32(buf, 3);
            put_str(buf, key);
            put_str(buf, expect);
            put_str(buf, new);
        }
        KvCommand::Range { start, end, limit } => {
            put_u32(buf, 4);
            put_str(buf, start);
            put_str(buf, end);
            put_u64(buf, *limit as u64);
        }
    }
}

fn get_kv_command(r: &mut Reader) -> Option<KvCommand> {
    Some(match r.get_u32()? {
        0 => KvCommand::Put {
            key: r.get_str()?,
            value: r.get_str()?,
        },
        1 => KvCommand::Get { key: r.get_str()? },
        2 => KvCommand::Delete { key: r.get_str()? },
        3 => KvCommand::Cas {
            key: r.get_str()?,
            expect: r.get_str()?,
            new: r.get_str()?,
        },
        4 => KvCommand::Range {
            start: r.get_str()?,
            end: r.get_str()?,
            limit: r.get_u64()? as usize,
        },
        _ => return None,
    })
}

fn put_op(buf: &mut Vec<u8>, op: &SmrOp) {
    match op {
        SmrOp::Noop => put_u32(buf, 0),
        SmrOp::Cmd(cmd) => {
            put_u32(buf, 1);
            put_u32(buf, cmd.client);
            put_u64(buf, cmd.seq);
            put_kv_command(buf, &cmd.op);
        }
    }
}

fn get_op(r: &mut Reader) -> Option<SmrOp> {
    Some(match r.get_u32()? {
        0 => SmrOp::Noop,
        1 => SmrOp::Cmd(Command {
            client: r.get_u32()?,
            seq: r.get_u64()?,
            op: get_kv_command(r)?,
        }),
        _ => return None,
    })
}

fn put_entry(buf: &mut Vec<u8>, entry: &Entry) {
    put_u64(buf, entry.term);
    put_op(buf, &entry.op);
}

fn get_entry(r: &mut Reader) -> Option<Entry> {
    Some(Entry {
        term: r.get_u64()?,
        op: get_op(r)?,
    })
}

fn put_response(buf: &mut Vec<u8>, out: &KvResponse) {
    match out {
        KvResponse::Ok => put_u32(buf, 0),
        KvResponse::Value(None) => put_u32(buf, 1),
        KvResponse::Value(Some(v)) => {
            put_u32(buf, 2);
            put_str(buf, v);
        }
        KvResponse::CasResult { swapped } => {
            put_u32(buf, 3);
            put_u32(buf, u32::from(*swapped));
        }
        KvResponse::Entries(entries) => {
            put_u32(buf, 4);
            put_u32(buf, entries.len() as u32);
            for (k, v) in entries {
                put_str(buf, k);
                put_str(buf, v);
            }
        }
    }
}

fn get_response(r: &mut Reader) -> Option<KvResponse> {
    Some(match r.get_u32()? {
        0 => KvResponse::Ok,
        1 => KvResponse::Value(None),
        2 => KvResponse::Value(Some(r.get_str()?)),
        3 => KvResponse::CasResult {
            swapped: r.get_u32()? != 0,
        },
        4 => {
            let n = r.get_u32()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.get_str()?;
                let v = r.get_str()?;
                entries.push((k, v));
            }
            KvResponse::Entries(entries)
        }
        _ => return None,
    })
}

/// Encodes a WAL record.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    match rec {
        WalRecord::HardState { term, voted_for } => {
            put_u32(&mut buf, 1);
            put_u64(&mut buf, *term);
            put_u32(&mut buf, voted_for.map_or(NO_VOTE, |n| n.0));
        }
        WalRecord::Append { index, entry } => {
            put_u32(&mut buf, 2);
            put_u64(&mut buf, *index as u64);
            put_entry(&mut buf, entry);
        }
        WalRecord::Truncate { from } => {
            put_u32(&mut buf, 3);
            put_u64(&mut buf, *from as u64);
        }
        WalRecord::Commit { index } => {
            put_u32(&mut buf, 4);
            put_u64(&mut buf, *index as u64);
        }
        WalRecord::TxnDecision { key, value } => {
            put_u32(&mut buf, 5);
            put_str(&mut buf, key);
            put_str(&mut buf, value);
        }
    }
    buf
}

/// Decodes a WAL record. `None` means corruption the CRC somehow missed —
/// callers treat it as end-of-log.
pub fn decode_record(bytes: &[u8]) -> Option<WalRecord> {
    let mut r = Reader::new(bytes);
    let rec = match r.get_u32()? {
        1 => WalRecord::HardState {
            term: r.get_u64()?,
            voted_for: match r.get_u32()? {
                NO_VOTE => None,
                n => Some(NodeId(n)),
            },
        },
        2 => WalRecord::Append {
            index: r.get_u64()? as usize,
            entry: get_entry(&mut r)?,
        },
        3 => WalRecord::Truncate {
            from: r.get_u64()? as usize,
        },
        4 => WalRecord::Commit {
            index: r.get_u64()? as usize,
        },
        5 => WalRecord::TxnDecision {
            key: r.get_str()?,
            value: r.get_str()?,
        },
        _ => return None,
    };
    (r.remaining() == 0).then_some(rec)
}

/// Serializes a machine checkpoint covering the log through
/// `last_included_index` (whose entry had `last_included_term`).
pub fn encode_snapshot(
    machine: &DedupKvMachine,
    last_included_index: usize,
    last_included_term: u64,
) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, last_included_index as u64);
    put_u64(&mut buf, last_included_term);
    put_u64(&mut buf, machine.kv().applied());
    put_u32(&mut buf, machine.kv().len() as u32);
    for (k, v) in machine.kv().iter() {
        put_str(&mut buf, k);
        put_str(&mut buf, v);
    }
    put_u32(&mut buf, machine.client_table().len() as u32);
    for (client, (seq, out)) in machine.client_table() {
        put_u32(&mut buf, *client);
        put_u64(&mut buf, *seq);
        put_response(&mut buf, out);
    }
    buf
}

/// Deserializes a checkpoint back into
/// `(machine, last_included_index, last_included_term)`. The restored
/// machine's digest equals the snapshotted one bit-for-bit.
pub fn decode_snapshot(bytes: &[u8]) -> Option<(DedupKvMachine, usize, u64)> {
    let mut r = Reader::new(bytes);
    let last_included_index = r.get_u64()? as usize;
    let last_included_term = r.get_u64()?;
    let kv_applied = r.get_u64()?;
    let n_kv = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n_kv);
    for _ in 0..n_kv {
        let k = r.get_str()?;
        let v = r.get_str()?;
        entries.push((k, v));
    }
    let n_clients = r.get_u32()? as usize;
    let mut client_table = std::collections::BTreeMap::new();
    for _ in 0..n_clients {
        let client = r.get_u32()?;
        let seq = r.get_u64()?;
        let out = get_response(&mut r)?;
        client_table.insert(client, (seq, out));
    }
    let machine = DedupKvMachine::restore(KvStore::restore(entries, kv_applied), client_table);
    (r.remaining() == 0).then_some((machine, last_included_index, last_included_term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_core::StateMachine;

    fn cmd(client: u32, seq: u64, op: KvCommand) -> SmrOp {
        SmrOp::Cmd(Command { client, seq, op })
    }

    #[test]
    fn wal_records_round_trip() {
        let records = vec![
            WalRecord::HardState {
                term: 7,
                voted_for: Some(NodeId(2)),
            },
            WalRecord::HardState {
                term: 8,
                voted_for: None,
            },
            WalRecord::Append {
                index: 42,
                entry: Entry {
                    term: 7,
                    op: cmd(
                        9,
                        4,
                        KvCommand::Cas {
                            key: "k".into(),
                            expect: "a".into(),
                            new: "b".into(),
                        },
                    ),
                },
            },
            WalRecord::Append {
                index: 1,
                entry: Entry {
                    term: 1,
                    op: SmrOp::Noop,
                },
            },
            WalRecord::Append {
                index: 3,
                entry: Entry {
                    term: 2,
                    op: cmd(
                        1,
                        6,
                        KvCommand::Range {
                            start: "a".into(),
                            end: "q".into(),
                            limit: 16,
                        },
                    ),
                },
            },
            WalRecord::Truncate { from: 17 },
            WalRecord::Commit { index: 40 },
            WalRecord::TxnDecision {
                key: "~dec.t100.3".into(),
                value: "commit".into(),
            },
        ];
        for rec in records {
            let bytes = encode_record(&rec);
            assert_eq!(decode_record(&bytes).as_ref(), Some(&rec), "{rec:?}");
        }
    }

    #[test]
    fn decode_rejects_garbage_and_trailing_bytes() {
        assert_eq!(decode_record(&[]), None);
        assert_eq!(decode_record(&[9, 0, 0, 0]), None, "unknown tag");
        let mut ok = encode_record(&WalRecord::Commit { index: 3 });
        ok.push(0);
        assert_eq!(decode_record(&ok), None, "trailing bytes are corruption");
    }

    #[test]
    fn snapshot_round_trips_digest_exactly() {
        let mut m = DedupKvMachine::default();
        for i in 0..20u32 {
            m.apply(&cmd(
                i % 3,
                u64::from(i),
                KvCommand::Put {
                    key: format!("k{i}"),
                    value: format!("v{i}"),
                },
            ));
        }
        m.apply(&cmd(0, 50, KvCommand::Get { key: "k1".into() }));
        m.apply(&cmd(
            1,
            51,
            KvCommand::Cas {
                key: "k2".into(),
                expect: "nope".into(),
                new: "x".into(),
            },
        ));
        m.apply(&cmd(
            2,
            52,
            KvCommand::Range {
                start: "k0".into(),
                end: "k3".into(),
                limit: 8,
            },
        ));
        let blob = encode_snapshot(&m, 23, 5);
        let (restored, idx, term) = decode_snapshot(&blob).expect("decodes");
        assert_eq!((idx, term), (23, 5));
        assert_eq!(restored.digest(), m.digest(), "digest must survive");
        assert_eq!(restored.kv().applied(), m.kv().applied());
        // Truncated blobs never half-decode.
        for cut in 0..blob.len() {
            assert!(decode_snapshot(&blob[..cut]).is_none(), "cut {cut}");
        }
    }
}
