//! Raft wire messages and log entries.

use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, ReadMode, SmrOp};
use simnet::{NodeId, Payload};

/// One Raft log entry: the term it was created in and the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Term of the leader that appended it.
    pub term: u64,
    /// The operation.
    pub op: SmrOp,
}

/// Raft RPCs (modelled as messages; responses are separate messages).
#[derive(Clone, Debug)]
pub enum RaftMsg {
    /// Client command submission.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Server reply to a completed command.
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence number.
        seq: u64,
        /// State-machine output.
        output: KvResponse,
    },
    /// "I'm not the leader; try `hint`."
    NotLeader {
        /// Sequence the client sent.
        seq: u64,
        /// Best guess at the current leader.
        hint: NodeId,
    },
    /// Candidate's vote solicitation.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of candidate's last log entry.
        last_log_index: usize,
        /// Term of candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    VoteResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding the new ones.
        prev_log_index: usize,
        /// Term of that entry.
        prev_log_term: u64,
        /// New entries (empty for heartbeat).
        entries: Vec<Entry>,
        /// Leader's commit index.
        leader_commit: usize,
    },
    /// Snapshot shipping for far-behind followers (§7 log compaction).
    InstallSnapshot {
        /// Leader's term.
        term: u64,
        /// Absolute index the snapshot covers up to.
        last_included_index: usize,
        /// Term of that entry.
        last_included_term: u64,
        /// The full machine state (shipped by value in the simulator).
        machine: Box<DedupKvMachine>,
    },
    /// AppendEntries response.
    AppendResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the consistency check passed and entries were appended.
        success: bool,
        /// On success: highest index now matching the leader's log.
        /// On failure: a hint for where to back up to.
        match_index: usize,
    },
    /// Fast-path linearizable read addressed to any replica (the geo read
    /// path). A follower resolves it through a read-index round-trip with
    /// the leader; never emitted by the classic workload clients.
    ReadReq {
        /// Requesting client id.
        client: u32,
        /// Client-chosen read sequence number (echoed back verbatim).
        seq: u64,
        /// Key to read.
        key: String,
    },
    /// Reply to [`RaftMsg::ReadReq`]. On [`ReadMode::Nack`] the value is
    /// meaningless and the caller must fall back to the log path.
    ReadResp {
        /// Echoed client id.
        client: u32,
        /// Echoed read sequence number.
        seq: u64,
        /// The value (None = key absent) — only meaningful when served.
        value: Option<String>,
        /// How the read was served.
        mode: ReadMode,
    },
    /// Follower → leader: "confirm a commit index for my pending read".
    ReadIndexQ {
        /// Client id of the pending read.
        client: u32,
        /// Read sequence number of the pending read.
        seq: u64,
    },
    /// Leader → follower: the commit index the read must wait for, or
    /// `u64::MAX` to NACK (leadership not currently confirmable).
    ReadIndexR {
        /// Echoed client id.
        client: u32,
        /// Echoed read sequence number.
        seq: u64,
        /// Confirmed commit index, or `u64::MAX` for "fall back".
        index: u64,
    },
}

impl Payload for RaftMsg {
    fn kind(&self) -> &'static str {
        match self {
            RaftMsg::Request { .. } => "request",
            RaftMsg::Reply { .. } => "reply",
            RaftMsg::NotLeader { .. } => "not-leader",
            RaftMsg::RequestVote { .. } => "request-vote",
            RaftMsg::VoteResponse { .. } => "vote-response",
            RaftMsg::AppendEntries { entries, .. } => {
                if entries.is_empty() {
                    "heartbeat"
                } else {
                    "append-entries"
                }
            }
            RaftMsg::InstallSnapshot { .. } => "install-snapshot",
            RaftMsg::AppendResponse { .. } => "append-response",
            RaftMsg::ReadReq { .. } => "read",
            RaftMsg::ReadResp { .. } => "read-resp",
            RaftMsg::ReadIndexQ { .. } => "read-index-q",
            RaftMsg::ReadIndexR { .. } => "read-index-r",
        }
    }

    fn size_bytes(&self) -> usize {
        // Flat per-op estimates keep historical sizes exact; command
        // payloads beyond the budget (padded large values) add their real
        // bytes — see `KvCommand::payload_excess`.
        match self {
            RaftMsg::Request { cmd } => 64 + cmd.op.payload_excess(),
            RaftMsg::AppendEntries { entries, .. } => {
                48 + entries
                    .iter()
                    .map(|e| {
                        48 + match &e.op {
                            SmrOp::Cmd(c) => c.op.payload_excess(),
                            SmrOp::Noop => 0,
                        }
                    })
                    .sum::<usize>()
            }
            RaftMsg::InstallSnapshot { .. } => 4_096,
            _ => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_and_append_are_distinguished() {
        let hb = RaftMsg::AppendEntries {
            term: 1,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        assert_eq!(hb.kind(), "heartbeat");
        let ae = RaftMsg::AppendEntries {
            term: 1,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 1,
                op: SmrOp::Noop,
            }],
            leader_commit: 0,
        };
        assert_eq!(ae.kind(), "append-entries");
        assert!(ae.size_bytes() > hb.size_bytes());
    }
}
