//! Raft wire messages and log entries.

use consensus_core::{Command, DedupKvMachine, KvCommand, KvResponse, SmrOp};
use simnet::{NodeId, Payload};

/// One Raft log entry: the term it was created in and the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Term of the leader that appended it.
    pub term: u64,
    /// The operation.
    pub op: SmrOp,
}

/// Raft RPCs (modelled as messages; responses are separate messages).
#[derive(Clone, Debug)]
pub enum RaftMsg {
    /// Client command submission.
    Request {
        /// The command.
        cmd: Command<KvCommand>,
    },
    /// Server reply to a completed command.
    Reply {
        /// Client id.
        client: u32,
        /// Client sequence number.
        seq: u64,
        /// State-machine output.
        output: KvResponse,
    },
    /// "I'm not the leader; try `hint`."
    NotLeader {
        /// Sequence the client sent.
        seq: u64,
        /// Best guess at the current leader.
        hint: NodeId,
    },
    /// Candidate's vote solicitation.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of candidate's last log entry.
        last_log_index: usize,
        /// Term of candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    VoteResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding the new ones.
        prev_log_index: usize,
        /// Term of that entry.
        prev_log_term: u64,
        /// New entries (empty for heartbeat).
        entries: Vec<Entry>,
        /// Leader's commit index.
        leader_commit: usize,
    },
    /// Snapshot shipping for far-behind followers (§7 log compaction).
    InstallSnapshot {
        /// Leader's term.
        term: u64,
        /// Absolute index the snapshot covers up to.
        last_included_index: usize,
        /// Term of that entry.
        last_included_term: u64,
        /// The full machine state (shipped by value in the simulator).
        machine: Box<DedupKvMachine>,
    },
    /// AppendEntries response.
    AppendResponse {
        /// Responder's current term.
        term: u64,
        /// Whether the consistency check passed and entries were appended.
        success: bool,
        /// On success: highest index now matching the leader's log.
        /// On failure: a hint for where to back up to.
        match_index: usize,
    },
}

impl Payload for RaftMsg {
    fn kind(&self) -> &'static str {
        match self {
            RaftMsg::Request { .. } => "request",
            RaftMsg::Reply { .. } => "reply",
            RaftMsg::NotLeader { .. } => "not-leader",
            RaftMsg::RequestVote { .. } => "request-vote",
            RaftMsg::VoteResponse { .. } => "vote-response",
            RaftMsg::AppendEntries { entries, .. } => {
                if entries.is_empty() {
                    "heartbeat"
                } else {
                    "append-entries"
                }
            }
            RaftMsg::InstallSnapshot { .. } => "install-snapshot",
            RaftMsg::AppendResponse { .. } => "append-response",
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            RaftMsg::AppendEntries { entries, .. } => 48 + entries.len() * 48,
            RaftMsg::InstallSnapshot { .. } => 4_096,
            _ => 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_and_append_are_distinguished() {
        let hb = RaftMsg::AppendEntries {
            term: 1,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        assert_eq!(hb.kind(), "heartbeat");
        let ae = RaftMsg::AppendEntries {
            term: 1,
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![Entry {
                term: 1,
                op: SmrOp::Noop,
            }],
            leader_commit: 0,
        };
        assert_eq!(ae.kind(), "append-entries");
        assert!(ae.size_bytes() > hb.size_bytes());
    }
}
