//! # raft — In Search of an Understandable Consensus Algorithm
//!
//! Raft (Ongaro & Ousterhout, USENIX ATC 2014) as surveyed by the tutorial:
//! *equivalent to Paxos in fault-tolerance, meant to be more understandable,
//! uses a leader approach, integrates consensus with log management*. Same
//! info card as Paxos: partially synchronous, crash faults, pessimistic,
//! known participants, `2f+1` nodes, 2 phases, `O(N)` messages.
//!
//! The crate mirrors `paxos::multi`'s shape (replica + closed-loop clients
//! over the shared [`consensus_core::DedupKvMachine`]) so the cross-protocol
//! comparison in `bench` is apples-to-apples, but the consensus
//! module is pure Raft: terms, randomized election timeouts, the election
//! restriction, `AppendEntries` consistency checks, and the current-term
//! commit rule.

pub mod client;
pub mod cluster;
pub mod durable;
pub mod msg;
pub mod replica;

pub use client::Client;
pub use cluster::RaftCluster;
pub use msg::{Entry, RaftMsg};
pub use replica::{Replica, Role};

simnet::node_enum! {
    /// A Raft process: replica or client.
    pub enum Proc: msg::RaftMsg {
        /// Server replica.
        Replica(replica::Replica),
        /// Workload client.
        Client(client::Client),
    }
}
