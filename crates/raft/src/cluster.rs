//! Cluster harness and end-to-end tests for Raft.

use consensus_core::driver::{BatchConfig, ClusterDriver, DecidedEntry, DriverConfig};
use consensus_core::history::ClientRecord;
use consensus_core::workload::{KvMix, LatencyRecorder, WorkloadMode};
use consensus_core::{HistorySink, SmrOp, StateMachine as _};
use simnet::{CausalSpan, DiskModel, Metrics, NetConfig, NodeId, RunOutcome, Sim, Time};

use crate::client::Client;
use crate::replica::{Replica, Role};
use crate::Proc;

/// A ready-to-run Raft cluster with clients.
pub struct RaftCluster {
    /// The simulation.
    pub sim: Sim<Proc>,
    /// Number of replicas (nodes `0..n_replicas`).
    pub n_replicas: usize,
    /// Number of clients.
    pub n_clients: usize,
}

impl RaftCluster {
    /// Builds an unbatched, closed-loop cluster of `n_replicas` replicas
    /// plus `n_clients` clients issuing `cmds_per_client` commands each.
    pub fn new(
        n_replicas: usize,
        n_clients: usize,
        cmds_per_client: usize,
        config: NetConfig,
        seed: u64,
    ) -> Self {
        Self::new_with(
            n_replicas,
            n_clients,
            cmds_per_client,
            config,
            seed,
            BatchConfig::unbatched(),
            WorkloadMode::Closed,
        )
    }

    /// Builds a cluster with explicit batching and client-pacing configs.
    pub fn new_with(
        n_replicas: usize,
        n_clients: usize,
        cmds_per_client: usize,
        config: NetConfig,
        seed: u64,
        batch: BatchConfig,
        mode: WorkloadMode,
    ) -> Self {
        let mut sim = Sim::new(config, seed);
        for _ in 0..n_replicas {
            sim.add_node(Replica::new_with(n_replicas, batch));
        }
        for c in 0..n_clients {
            let id = (n_replicas + c) as u32;
            sim.add_node(Client::new_with(
                id,
                n_replicas,
                cmds_per_client,
                KvMix::default(),
                seed,
                mode,
            ));
        }
        RaftCluster {
            sim,
            n_replicas,
            n_clients,
        }
    }

    /// Replaces every client's workload mix. A builder — call before the
    /// first step; with the default mix it is a no-op, so existing runs are
    /// untouched.
    #[must_use]
    pub fn with_mix(mut self, mix: KvMix) -> Self {
        for c in 0..self.n_clients {
            let id = NodeId::from(self.n_replicas + c);
            if let Proc::Client(cl) = self.sim.node_mut(id) {
                cl.set_mix(mix);
            }
        }
        self
    }

    /// Attaches a fresh [`storage::DurableEngine`] over `model` to every
    /// replica and sets the snapshot threshold: WAL-before-message
    /// persistence, checkpointing, and real crash recovery all activate.
    #[must_use]
    pub fn with_durability(mut self, threshold: usize, model: DiskModel) -> Self {
        for i in 0..self.n_replicas {
            if let Proc::Replica(r) = self.sim.node_mut(NodeId::from(i)) {
                r.snapshot_threshold = threshold.max(1);
                r.engine = Some(Box::new(storage::DurableEngine::new(model)));
            }
        }
        self
    }

    /// Runs until all clients finish or `horizon` passes.
    pub fn run(&mut self, horizon: Time) -> bool {
        loop {
            let outcome = self.sim.run_for(10_000);
            if self.all_done() {
                return true;
            }
            if self.sim.now() >= horizon || outcome == RunOutcome::Quiescent {
                return self.all_done();
            }
        }
    }

    /// Whether all clients completed their workloads.
    pub fn all_done(&self) -> bool {
        self.clients().all(|c| c.done())
    }

    /// Iterates over client states.
    pub fn clients(&self) -> impl Iterator<Item = &Client> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            Proc::Client(c) => Some(c),
            _ => None,
        })
    }

    /// Iterates over replica states.
    pub fn replicas(&self) -> impl Iterator<Item = &Replica> {
        self.sim.nodes().filter_map(|(_, p)| match p {
            Proc::Replica(r) => Some(r),
            _ => None,
        })
    }

    /// The unique live leader, if any.
    pub fn leader(&self) -> Option<NodeId> {
        let leaders: Vec<NodeId> = self
            .sim
            .nodes()
            .filter_map(|(id, p)| match p {
                Proc::Replica(r) if r.role == Role::Leader && self.sim.is_alive(id) => Some(id),
                _ => None,
            })
            .collect();
        match leaders.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Total commands completed.
    pub fn total_completed(&self) -> usize {
        self.clients().map(|c| c.completed).sum()
    }

    /// Aggregated latencies.
    pub fn latencies(&self) -> LatencyRecorder {
        let mut agg = LatencyRecorder::new();
        for c in self.clients() {
            for &s in c.latencies.samples() {
                agg.record_micros(s);
            }
        }
        agg
    }

    /// Checks the **Log Matching** property over the retained (non-
    /// compacted) ranges: if two logs contain an entry with the same
    /// absolute index and term, they are identical from there down to the
    /// higher of the two snapshot offsets. Also checks retained committed
    /// entries agree. Returns the shortest commit index.
    pub fn check_log_matching(&self) -> usize {
        let replicas: Vec<&Replica> = self.replicas().collect();
        for a in 0..replicas.len() {
            for b in a + 1..replicas.len() {
                let (ra, rb) = (replicas[a], replicas[b]);
                let lo = ra.log_offset().max(rb.log_offset());
                let hi = ra.last_log_index().min(rb.last_log_index());
                if hi <= lo {
                    continue; // no overlapping retained range
                }
                // Find the highest common (index, term) agreement point.
                for i in ((lo + 1)..=hi).rev() {
                    let (ta, tb) = (ra.term_at(i), rb.term_at(i));
                    if ta.is_some() && ta == tb {
                        for j in (lo + 1)..=i {
                            assert_eq!(
                                ra.entry(j),
                                rb.entry(j),
                                "Log Matching violated between replicas {a} and {b} at {j}"
                            );
                        }
                        break;
                    }
                }
            }
        }
        let min_commit = replicas.iter().map(|r| r.commit_index).min().unwrap_or(0);
        for i in 1..=min_commit {
            let entries: Vec<_> = replicas.iter().filter_map(|r| r.entry(i)).collect();
            for pair in entries.windows(2) {
                assert_eq!(pair[0], pair[1], "committed entries diverge at {i}");
            }
        }
        min_commit
    }
}

impl ClusterDriver for RaftCluster {
    fn from_config(cfg: &DriverConfig) -> Self {
        RaftCluster::new_with(
            cfg.n_replicas,
            cfg.n_clients,
            cfg.cmds_per_client,
            cfg.net.clone(),
            cfg.seed,
            cfg.batch,
            cfg.mode,
        )
        .with_mix(cfg.mix)
    }

    fn protocol(&self) -> &'static str {
        "raft"
    }

    fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    fn now(&self) -> Time {
        self.sim.now()
    }

    fn run_until(&mut self, at: Time) -> RunOutcome {
        let mut guard = 0;
        loop {
            let outcome = self.sim.run_until(at);
            if outcome != RunOutcome::Stopped || guard > 10_000 {
                return outcome;
            }
            guard += 1;
        }
    }

    fn run(&mut self, horizon: Time) -> bool {
        RaftCluster::run(self, horizon)
    }

    fn all_done(&self) -> bool {
        RaftCluster::all_done(self)
    }

    fn completed_ops(&self) -> usize {
        self.total_completed()
    }

    fn decided_log(&self) -> Vec<DecidedEntry> {
        let mut entries = Vec::new();
        for (id, proc_) in self.sim.nodes() {
            let Proc::Replica(r) = proc_ else { continue };
            for i in (r.log_offset() + 1)..=r.commit_index {
                let Some(entry) = r.entry(i) else { continue };
                let origin = match &entry.op {
                    SmrOp::Cmd(cmd) => Some((cmd.client, cmd.seq)),
                    SmrOp::Noop => None,
                };
                entries.push(DecidedEntry {
                    node: id.0,
                    index: i as u64,
                    op: format!("t{}:{:?}", entry.term, entry.op),
                    origin,
                });
            }
        }
        entries
    }

    fn state_digests(&self) -> Vec<(u32, u64, u64)> {
        self.sim
            .nodes()
            .filter_map(|(id, p)| match p {
                Proc::Replica(r) => Some((id.0, r.last_applied as u64, r.machine().digest())),
                _ => None,
            })
            .collect()
    }

    fn history(&self) -> Vec<ClientRecord> {
        HistorySink::merge(self.clients().map(|c| &c.history))
    }

    fn latencies(&self) -> LatencyRecorder {
        RaftCluster::latencies(self)
    }

    fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    fn enable_tracing(&mut self, site: u32) {
        self.sim.enable_tracing(site);
    }

    fn causal_spans(&self) -> Vec<CausalSpan> {
        self.sim.causal_spans().to_vec()
    }

    fn open_span_instances(&self) -> usize {
        self.sim.open_instance_count()
    }

    fn crash_at(&mut self, node: NodeId, at: Time) {
        self.sim.crash_at(node, at);
    }

    fn restart_at(&mut self, node: NodeId, at: Time) {
        self.sim.restart_at(node, at);
    }

    fn partition_at(&mut self, at: Time, groups: Vec<Vec<NodeId>>) {
        self.sim.partition_at(at, groups);
    }

    fn heal_at(&mut self, at: Time) {
        self.sim.heal_at(at);
    }

    fn set_drop_prob(&mut self, p: f64) {
        self.sim.set_drop_prob(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elects_a_leader() {
        let mut cluster = RaftCluster::new(5, 0, 0, NetConfig::lan(), 1);
        cluster.sim.run_until(Time::from_millis(200));
        assert!(cluster.leader().is_some(), "no leader after 200ms");
        // Exactly one leader per term (checked by unique-leader helper).
    }

    #[test]
    fn commits_client_commands() {
        let mut cluster = RaftCluster::new(3, 1, 10, NetConfig::lan(), 2);
        assert!(cluster.run(Time::from_secs(10)));
        assert_eq!(cluster.total_completed(), 10);
        assert!(cluster.check_log_matching() >= 10);
    }

    #[test]
    fn multiple_clients_complete() {
        let mut cluster = RaftCluster::new(5, 3, 15, NetConfig::lan(), 3);
        assert!(cluster.run(Time::from_secs(30)));
        assert_eq!(cluster.total_completed(), 45);
        cluster.check_log_matching();
    }

    #[test]
    fn leader_crash_failover() {
        let mut cluster = RaftCluster::new(5, 2, 20, NetConfig::lan(), 4);
        cluster.sim.run_until(Time::from_millis(100));
        let leader = cluster.leader().expect("initial leader");
        cluster.sim.crash_at(leader, Time::from_millis(101));
        assert!(
            cluster.run(Time::from_secs(30)),
            "completed {}",
            cluster.total_completed()
        );
        assert_eq!(cluster.total_completed(), 40);
        cluster.check_log_matching();
        let new_leader = cluster.leader();
        assert_ne!(new_leader, Some(leader));
    }

    #[test]
    fn follower_crash_and_restart_catches_up() {
        let mut cluster = RaftCluster::new(3, 1, 20, NetConfig::lan(), 5);
        cluster.sim.run_until(Time::from_millis(60));
        // Crash a follower, run on, restart it.
        let leader = cluster.leader().expect("leader");
        let follower = (0..3)
            .map(NodeId::from)
            .find(|&id| id != leader)
            .unwrap();
        cluster.sim.crash_at(follower, Time::from_millis(61));
        cluster.sim.restart_at(follower, Time::from_millis(400));
        assert!(cluster.run(Time::from_secs(30)));
        // Let replication settle, then verify the restarted follower
        // caught up fully.
        cluster.sim.run_for(500_000);
        cluster.check_log_matching();
        let commits: Vec<usize> = cluster.replicas().map(|r| r.commit_index).collect();
        assert!(
            commits.iter().all(|&c| c >= 20),
            "restarted follower lags: {commits:?}"
        );
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut cluster = RaftCluster::new(5, 1, 30, NetConfig::lan(), 6);
        cluster.sim.run_until(Time::from_millis(100));
        let leader = cluster.leader().expect("leader");
        // Cut the leader (plus one follower) away from the rest AND the
        // client (client node id 5 goes with the majority side).
        let minority: Vec<NodeId> = vec![leader, NodeId::from((leader.index() + 1) % 5)];
        let majority: Vec<NodeId> = (0..6)
            .map(NodeId::from)
            .filter(|id| !minority.contains(id))
            .collect();
        cluster
            .sim
            .partition_at(Time::from_millis(101), vec![minority.clone(), majority]);
        cluster.sim.run_until(Time::from_millis(600));
        // The old leader's commit index must not advance past what the
        // majority side knows (it can't reach a majority).
        let stale_commit = cluster
            .replicas()
            .enumerate()
            .filter(|(i, _)| minority.contains(&NodeId::from(*i)))
            .map(|(_, r)| r.commit_index)
            .max()
            .unwrap();
        // Heal; everything reconciles and the workload finishes.
        cluster.sim.heal_at(cluster.sim.now() + 1);
        assert!(cluster.run(Time::from_secs(30)));
        cluster.check_log_matching();
        let final_commit = cluster.replicas().map(|r| r.commit_index).max().unwrap();
        assert!(final_commit >= stale_commit);
        assert_eq!(cluster.total_completed(), 30);
    }

    #[test]
    fn lossy_network_still_completes() {
        let mut cluster =
            RaftCluster::new(3, 1, 15, NetConfig::lan().with_drop_prob(0.05), 7);
        assert!(cluster.run(Time::from_secs(60)));
        cluster.check_log_matching();
    }

    #[test]
    fn at_most_one_leader_per_term() {
        // Run with elections churning (partitions) and check the invariant
        // via vote accounting: every observed (term → leader) pair is unique.
        let mut cluster = RaftCluster::new(5, 1, 10, NetConfig::lan(), 8);
        cluster.sim.run_until(Time::from_millis(80));
        if let Some(leader) = cluster.leader() {
            let at = cluster.sim.now() + 1;
            cluster.sim.crash_at(leader, at);
        }
        cluster.run(Time::from_secs(20));
        // Terms are unique per leader because elections_won increments only
        // with a majority; total elections won ≤ max term seen.
        let max_term = cluster.replicas().map(|r| r.current_term).max().unwrap();
        let total_wins: u64 = cluster.replicas().map(|r| r.elections_won).sum();
        assert!(
            total_wins <= max_term,
            "{total_wins} wins in {max_term} terms — split vote safety broken"
        );
    }

    #[test]
    fn snapshots_bound_log_growth() {
        // Low threshold: replicas must compact while serving.
        let mut cluster = RaftCluster::new(3, 1, 40, NetConfig::lan(), 20);
        for i in 0..3 {
            if let crate::Proc::Replica(r) = cluster.sim.node_mut(NodeId::from(i)) {
                let fresh = Replica::new(3).with_snapshot_threshold(8);
                *r = fresh;
            }
        }
        assert!(cluster.run(Time::from_secs(30)));
        cluster.sim.run_for(300_000);
        for (id, r) in cluster
            .sim
            .nodes()
            .filter_map(|(id, p)| match p {
                crate::Proc::Replica(r) => Some((id, r)),
                _ => None,
            })
        {
            assert!(r.snapshots_taken >= 1, "{id} never compacted");
            assert!(
                r.retained_len() < 40,
                "{id} kept the whole log: {}",
                r.retained_len()
            );
        }
        cluster.check_log_matching();
    }

    #[test]
    fn lagging_follower_catches_up_via_install_snapshot() {
        // A follower sleeps through enough traffic that the leader compacts
        // past its position; on wake-up only InstallSnapshot can help.
        let mut cluster = RaftCluster::new(3, 1, 50, NetConfig::lan(), 21);
        for i in 0..3 {
            if let crate::Proc::Replica(r) = cluster.sim.node_mut(NodeId::from(i)) {
                *r = Replica::new(3).with_snapshot_threshold(8);
            }
        }
        cluster.sim.run_until(Time::from_millis(30));
        let leader = cluster.leader().expect("leader");
        let sleeper = (0..3)
            .map(NodeId::from)
            .find(|&id| id != leader)
            .unwrap();
        cluster.sim.crash_at(sleeper, Time::from_millis(31));
        // Let the rest commit (and compact) a lot, then wake the sleeper.
        cluster.run(Time::from_secs(30));
        let at = cluster.sim.now() + 1;
        cluster.sim.restart_at(sleeper, at);
        cluster.sim.run_for(2_000_000);
        let snaps = cluster.sim.metrics().kind("install-snapshot");
        assert!(snaps >= 1, "snapshot shipping expected");
        if let crate::Proc::Replica(r) = cluster.sim.node(sleeper) {
            assert!(
                r.snapshots_installed >= 1,
                "sleeper should have installed a snapshot"
            );
            assert!(
                r.last_applied >= 40,
                "sleeper should be caught up: {}",
                r.last_applied
            );
        }
        cluster.check_log_matching();
        // State convergence despite the snapshot path.
        let digests: std::collections::BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.last_applied >= 50)
            .map(|r| r.machine().digest())
            .collect();
        assert!(digests.len() <= 1, "divergence after snapshot: {digests:?}");
    }

    /// Flattened committed `(client, seq)` sequence from the replica that
    /// committed the most entries (no-ops excluded).
    fn committed_origins(cluster: &RaftCluster) -> Vec<(u32, u64)> {
        let log = ClusterDriver::decided_log(cluster);
        let best = (0..cluster.n_replicas as u32)
            .max_by_key(|n| log.iter().filter(|e| e.node == *n).count())
            .unwrap();
        log.iter()
            .filter(|e| e.node == best)
            .filter_map(|e| e.origin)
            .collect()
    }

    #[test]
    fn batched_runs_commit_the_same_command_sequence() {
        // Same seed + workload under a synchronous (draw-free) network:
        // batched replication must commit the same command sequence the
        // unbatched default commits — batching only changes how entries are
        // grouped into AppendEntries waves. Terms may differ, so compare
        // origins rather than rendered ops.
        let committed = |batch: BatchConfig| {
            let mut cluster = RaftCluster::new_with(
                3,
                2,
                20,
                NetConfig::synchronous(),
                42,
                batch,
                WorkloadMode::Closed,
            );
            assert!(cluster.run(Time::from_secs(30)), "{} stalled", batch.label());
            cluster.check_log_matching();
            committed_origins(&cluster)
        };
        let unbatched = committed(BatchConfig::unbatched());
        assert_eq!(unbatched.len(), 40);
        for b in [
            BatchConfig::new(4, 200, 2),
            BatchConfig::new(8, 500, 4),
            BatchConfig::new(2, 0, 1),
        ] {
            assert_eq!(committed(b), unbatched, "config {} diverged", b.label());
        }
    }

    #[test]
    fn leader_crash_under_batched_config_recovers() {
        let mut cluster = RaftCluster::new_with(
            5,
            2,
            20,
            NetConfig::lan(),
            4,
            BatchConfig::new(4, 300, 2),
            WorkloadMode::Closed,
        );
        cluster.sim.run_until(Time::from_millis(100));
        let leader = cluster.leader().expect("initial leader");
        cluster.sim.crash_at(leader, Time::from_millis(101));
        assert!(
            cluster.run(Time::from_secs(30)),
            "completed {}",
            cluster.total_completed()
        );
        assert_eq!(cluster.total_completed(), 40);
        cluster.check_log_matching();
    }

    #[test]
    fn open_loop_clients_build_real_batches() {
        let mut cluster = RaftCluster::new_with(
            3,
            2,
            30,
            NetConfig::lan(),
            9,
            BatchConfig::new(8, 400, 2),
            WorkloadMode::Open { interval_us: 200 },
        );
        assert!(cluster.run(Time::from_secs(30)));
        assert_eq!(cluster.total_completed(), 60);
        cluster.check_log_matching();
        let h = &cluster.sim.metrics().batch_size;
        assert!(
            h.max().unwrap_or(0) > 1,
            "batches never formed: max {:?}",
            h.max()
        );
    }

    #[test]
    fn cluster_driver_trait_drives_and_harvests() {
        let mut cluster = RaftCluster::from_config(&DriverConfig::new(3, 2, 5, 7));
        let drv: &mut dyn ClusterDriver = &mut cluster;
        assert_eq!(drv.protocol(), "raft");
        assert_eq!(drv.n_replicas(), 3);
        assert!(drv.run(Time::from_secs(10)));
        assert!(drv.all_done());
        assert_eq!(drv.completed_ops(), 10);
        assert_eq!(drv.state_digests().len(), 3);
        assert_eq!(drv.history().len(), 10);
        assert_eq!(drv.issued().len(), 10);
        assert!(drv.decided_log().iter().any(|e| e.origin.is_some()));
    }

    #[test]
    fn durability_does_not_change_decisions() {
        // The disk model is pure accounting — attaching engines must not
        // perturb message timing. Under a draw-free synchronous network the
        // run must be observably identical across a sweep of seeds: same
        // committed (client, seq) sequence, same final digest, same traffic.
        for seed in [42u64, 43, 44] {
            let run = |durable: bool| {
                let mut cluster = RaftCluster::new_with(
                    3,
                    2,
                    20,
                    NetConfig::synchronous(),
                    seed,
                    BatchConfig::unbatched(),
                    WorkloadMode::Closed,
                );
                if durable {
                    // Same threshold as the RAM default, so compaction
                    // behaviour matches entry-for-entry.
                    cluster = cluster
                        .with_durability(crate::replica::SNAPSHOT_THRESHOLD, DiskModel::ssd());
                }
                assert!(cluster.run(Time::from_secs(30)), "seed {seed} stalled");
                cluster.check_log_matching();
                let digest = cluster
                    .replicas()
                    .max_by_key(|r| r.last_applied)
                    .expect("replicas")
                    .machine()
                    .digest();
                (committed_origins(&cluster), digest, cluster.sim.metrics().sent)
            };
            let ram = run(false);
            assert_eq!(ram.0.len(), 40, "seed {seed}");
            assert_eq!(run(true), ram, "seed {seed}: durable run diverged");
        }
    }

    #[test]
    fn durable_snapshots_bound_log_growth() {
        // Durable flavour of `snapshots_bound_log_growth`: checkpoints must
        // both compact the in-RAM log and land on the engine as snapshots.
        let mut cluster =
            RaftCluster::new(3, 1, 40, NetConfig::lan(), 20).with_durability(8, DiskModel::ssd());
        assert!(cluster.run(Time::from_secs(30)));
        cluster.sim.run_for(300_000);
        for r in cluster.replicas() {
            assert!(r.snapshots_taken >= 1, "replica never compacted");
            assert!(
                r.retained_len() < 40,
                "log not compacted: {} entries retained",
                r.retained_len()
            );
            let stats = r.storage_stats().expect("durable engine");
            assert!(stats.snapshots_written >= 1, "checkpoint never hit the disk");
            assert!(stats.wal_flushes > 0, "WAL never synced");
        }
        cluster.check_log_matching();
    }

    #[test]
    fn durable_replica_recovers_from_wal_and_snapshot() {
        let mut cluster =
            RaftCluster::new(3, 1, 30, NetConfig::lan(), 22).with_durability(8, DiskModel::ssd());
        assert!(cluster.run(Time::from_secs(20)));
        assert_eq!(cluster.total_completed(), 30);
        cluster.sim.run_for(300_000);
        let digest_before = {
            let crate::Proc::Replica(r) = cluster.sim.node(NodeId(2)) else {
                panic!("node 2 is a replica")
            };
            assert!(r.snapshots_taken >= 1, "needs a checkpoint to recover from");
            r.machine().digest()
        };
        // Crash + restart: recovery must come from the checkpoint (not a
        // full replay from index 0) and reproduce the exact machine state.
        let now = cluster.sim.now();
        cluster.sim.crash_at(NodeId(2), Time(now.0 + 1_000));
        cluster.sim.restart_at(NodeId(2), Time(now.0 + 50_000));
        cluster.sim.run_for(500_000);
        let crate::Proc::Replica(r) = cluster.sim.node(NodeId(2)) else {
            panic!("node 2 is a replica")
        };
        assert!(
            r.recovered_floor > 0,
            "recovery replayed from index 0 instead of the snapshot"
        );
        assert_eq!(r.machine().digest(), digest_before, "state must survive");
        let stats = r.storage_stats().expect("durable engine");
        assert_eq!(stats.recoveries, 1);
        assert!(r.last_recovery_io_us > 0, "recovery must charge disk time");
        cluster.check_log_matching();
    }

    #[test]
    fn durable_leader_crash_failover_preserves_safety() {
        // Crash the durable leader mid-workload, let the cluster fail over,
        // then restart it: the WAL-recovered log must agree with the
        // survivors (Log Matching) and the workload must finish.
        let mut cluster =
            RaftCluster::new(3, 2, 20, NetConfig::lan(), 24).with_durability(8, DiskModel::ssd());
        cluster.sim.run_until(Time::from_millis(100));
        let leader = cluster.leader().expect("initial leader");
        cluster.sim.crash_at(leader, Time::from_millis(101));
        cluster.sim.restart_at(leader, Time::from_millis(400));
        assert!(
            cluster.run(Time::from_secs(30)),
            "completed {}",
            cluster.total_completed()
        );
        assert_eq!(cluster.total_completed(), 40);
        cluster.sim.run_for(500_000);
        cluster.check_log_matching();
        let crate::Proc::Replica(r) = cluster.sim.node(leader) else {
            panic!("leader is a replica")
        };
        assert_eq!(r.storage_stats().expect("durable engine").recoveries, 1);
    }

    /// One `(key, value)` pair from the most-applied replica's KV state.
    fn applied_sample(cluster: &RaftCluster) -> (String, String) {
        let r = cluster
            .replicas()
            .max_by_key(|r| r.last_applied)
            .expect("replicas");
        let (k, v) = r
            .machine()
            .kv()
            .iter()
            .next()
            .expect("applied writes");
        (k.clone(), v.clone())
    }

    #[test]
    fn follower_serves_linearizable_reads_via_read_index() {
        use consensus_core::ReadMode;
        let mut cluster = RaftCluster::new(3, 1, 15, NetConfig::lan(), 30);
        assert!(cluster.run(Time::from_secs(10)));
        cluster.sim.run_for(300_000); // followers apply; heartbeats settle
        let leader = cluster.leader().expect("leader");
        let (key, want) = applied_sample(&cluster);
        let client = NodeId::from(3usize); // the workload client doubles as reader
        let follower = (0..3).map(NodeId::from).find(|&id| id != leader).unwrap();
        let now = cluster.sim.now();
        cluster.sim.inject(
            client,
            follower,
            crate::msg::RaftMsg::ReadReq {
                client: 3,
                seq: 1,
                key: key.clone(),
            },
            Time(now.0 + 10),
        );
        cluster.sim.inject(
            client,
            leader,
            crate::msg::RaftMsg::ReadReq {
                client: 3,
                seq: 2,
                key,
            },
            Time(now.0 + 20),
        );
        cluster.sim.run_for(200_000);
        let crate::Proc::Client(c) = cluster.sim.node(client) else {
            panic!("node 3 is the client")
        };
        assert_eq!(
            c.read_replies.get(&(3, 1)),
            Some(&(Some(want.clone()), ReadMode::ReadIndex)),
            "follower read must resolve via read-index"
        );
        assert_eq!(
            c.read_replies.get(&(3, 2)),
            Some(&(Some(want), ReadMode::ReadIndex)),
            "leader read must resolve locally"
        );
        // The follower path must have done a read-index round-trip.
        assert!(cluster.sim.metrics().kind("read-index-q") >= 1);
        assert!(cluster.sim.metrics().kind("read-index-r") >= 1);
    }

    #[test]
    fn isolated_leader_nacks_read_index_reads() {
        use consensus_core::ReadMode;
        let mut cluster = RaftCluster::new(5, 1, 10, NetConfig::lan(), 31);
        assert!(cluster.run(Time::from_secs(10)));
        let leader = cluster.leader().expect("leader");
        let client = NodeId::from(5usize);
        let now = cluster.sim.now();
        // Isolate the old leader together with the probing client so the
        // NACK can cross the partition back to it.
        let minority = vec![leader, client];
        let majority: Vec<NodeId> = (0..6)
            .map(NodeId::from)
            .filter(|id| !minority.contains(id))
            .collect();
        cluster
            .sim
            .partition_at(Time(now.0 + 1_000), vec![minority, majority]);
        // Wait well past the quorum-contact window: the stale leader can no
        // longer confirm its leadership and must refuse the fast path.
        cluster.sim.run_for(300_000);
        let now = cluster.sim.now();
        cluster.sim.inject(
            client,
            leader,
            crate::msg::RaftMsg::ReadReq {
                client: 5,
                seq: 7,
                key: "k0".into(),
            },
            Time(now.0 + 10),
        );
        cluster.sim.run_for(100_000);
        let crate::Proc::Client(c) = cluster.sim.node(client) else {
            panic!("node 5 is the client")
        };
        let (_, mode) = c.read_replies.get(&(5, 7)).expect("nack reply");
        assert_eq!(*mode, ReadMode::Nack, "stale leader must refuse fast reads");
    }

    #[test]
    fn read_index_reads_leave_the_committed_sequence_unchanged() {
        // Reads ride the message plane only: injecting them mid-run must not
        // perturb which commands commit or their order. Synchronous network
        // so the baseline is draw-free and exactly comparable.
        let run = |with_reads: bool| {
            let mut cluster = RaftCluster::new_with(
                3,
                2,
                20,
                NetConfig::synchronous(),
                42,
                BatchConfig::unbatched(),
                WorkloadMode::Closed,
            );
            cluster.sim.run_until(Time::from_millis(50));
            if with_reads {
                let now = cluster.sim.now();
                for (i, target) in (0..3).map(NodeId::from).enumerate() {
                    cluster.sim.inject(
                        NodeId::from(3usize),
                        target,
                        crate::msg::RaftMsg::ReadReq {
                            client: 3,
                            seq: 100 + i as u64,
                            key: "k1".into(),
                        },
                        Time(now.0 + 10 + i as u64),
                    );
                }
            }
            assert!(cluster.run(Time::from_secs(30)));
            committed_origins(&cluster)
        };
        let base = run(false);
        assert_eq!(base.len(), 40);
        assert_eq!(run(true), base, "reads perturbed the committed sequence");
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut cluster = RaftCluster::new(3, 2, 10, NetConfig::lan(), seed);
            cluster.run(Time::from_secs(10));
            (cluster.total_completed(), cluster.sim.metrics().sent)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn replicas_converge_to_same_state_digest() {
        let mut cluster = RaftCluster::new(3, 2, 20, NetConfig::lan(), 10);
        assert!(cluster.run(Time::from_secs(20)));
        cluster.sim.run_for(500_000); // let followers apply
        let digests: std::collections::BTreeSet<u64> = cluster
            .replicas()
            .filter(|r| r.last_applied >= 40)
            .map(|r| r.machine().digest())
            .collect();
        assert!(digests.len() <= 1, "state divergence: {digests:?}");
    }

    #[test]
    fn tracing_produces_chained_roots_without_changing_the_run() {
        let run = |traced: bool| {
            let mut cluster = RaftCluster::new(3, 2, 10, NetConfig::lan(), 12);
            if traced {
                cluster.sim.enable_tracing(3);
            }
            assert!(cluster.run(Time::from_secs(10)));
            (cluster.sim.metrics().sent, cluster)
        };
        let (base_sent, _) = run(false);
        let (sent, cluster) = run(true);
        assert_eq!(sent, base_sent, "tracing must not change traffic");

        let spans = cluster.sim.causal_spans();
        let roots: Vec<_> = spans
            .iter()
            .filter(|s| s.cat == "op" && s.trace_id == s.id)
            .collect();
        assert_eq!(roots.len(), 20, "one root span per client command");
        assert!(roots.iter().all(|r| r.end > r.start), "roots close on Reply");
        for root in &roots {
            let children = spans
                .iter()
                .filter(|s| s.trace_id == root.trace_id && s.id != root.id)
                .count();
            assert!(children >= 4, "request/append/ack/reply at minimum");
        }
    }

    #[test]
    fn batched_tracing_records_queue_waits() {
        let mut cluster = RaftCluster::new_with(
            3,
            2,
            15,
            NetConfig::lan(),
            13,
            BatchConfig::new(8, 400, 16),
            WorkloadMode::Open { interval_us: 150 },
        );
        cluster.sim.enable_tracing(0);
        assert!(cluster.run(Time::from_secs(20)));
        let spans = cluster.sim.causal_spans();
        assert!(
            spans
                .iter()
                .any(|s| s.cat == "client-queue" && s.end > s.start),
            "held-back waves must charge batch-queue time"
        );
    }
}
