//! Closed-loop Raft client (same workload shape as `paxos::multi::Client`).

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder};
use consensus_core::{Command, HistorySink, KvCommand};
use simnet::{Context, Node, NodeId, Time, Timer};

use crate::msg::RaftMsg;

const CLIENT_RETRY: u64 = 100;

/// A client issuing `total` commands from a deterministic workload.
pub struct Client {
    /// Client id (== node id).
    pub client_id: u32,
    n_replicas: usize,
    workload: KvWorkload,
    total: usize,
    /// Commands completed.
    pub completed: usize,
    current: Option<(Command<KvCommand>, Time)>,
    leader_guess: NodeId,
    /// Request → reply latencies.
    pub latencies: LatencyRecorder,
    /// Invoke/response history for safety checking.
    pub history: HistorySink,
}

impl Client {
    /// Creates a client that will issue `total` commands.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, mix: KvMix, seed: u64) -> Self {
        Client {
            client_id,
            n_replicas,
            workload: KvWorkload::new(client_id, mix, seed),
            total,
            completed: 0,
            current: None,
            leader_guess: NodeId(0),
            latencies: LatencyRecorder::new(),
            history: HistorySink::new(),
        }
    }

    /// Whether the workload finished.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    fn send_next(&mut self, ctx: &mut Context<RaftMsg>) {
        if self.done() {
            self.current = None;
            return;
        }
        let cmd = self.workload.next_command();
        self.history
            .invoke(cmd.client, cmd.seq, cmd.op.clone(), ctx.now().0);
        self.current = Some((cmd.clone(), ctx.now()));
        ctx.send(self.leader_guess, RaftMsg::Request { cmd });
        ctx.set_timer(100_000, CLIENT_RETRY);
    }

    fn resend(&mut self, ctx: &mut Context<RaftMsg>) {
        if let Some((cmd, _)) = &self.current {
            let cmd = cmd.clone();
            ctx.send(self.leader_guess, RaftMsg::Request { cmd });
            ctx.set_timer(100_000, CLIENT_RETRY);
        }
    }
}

impl Node for Client {
    type Msg = RaftMsg;

    fn on_start(&mut self, ctx: &mut Context<RaftMsg>) {
        self.send_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<RaftMsg>, from: NodeId, msg: RaftMsg) {
        match msg {
            RaftMsg::Reply { seq, output, .. } => {
                if let Some((cmd, sent_at)) = &self.current {
                    if cmd.seq == seq {
                        let sent = *sent_at;
                        self.history
                            .complete(cmd.client, cmd.seq, ctx.now().0, output);
                        self.latencies.record(sent, ctx.now());
                        self.completed += 1;
                        self.current = None;
                        self.send_next(ctx);
                    }
                }
            }
            RaftMsg::NotLeader { seq, hint } => {
                if let Some((cmd, _)) = &self.current {
                    if cmd.seq == seq {
                        self.leader_guess = if hint != from && hint.index() < self.n_replicas {
                            hint
                        } else {
                            NodeId::from((from.index() + 1) % self.n_replicas)
                        };
                        self.resend(ctx);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<RaftMsg>, timer: Timer) {
        if timer.kind == CLIENT_RETRY && self.current.is_some() {
            self.leader_guess = NodeId::from((self.leader_guess.index() + 1) % self.n_replicas);
            self.resend(ctx);
        }
    }
}
