//! Raft workload client (same shape as `paxos::multi::Client`): closed-loop
//! by default, optionally open-loop with a fixed issue interval so batching
//! experiments can saturate the leader.

use std::collections::BTreeMap;

use consensus_core::workload::{KvMix, KvWorkload, LatencyRecorder, WorkloadMode};
use consensus_core::{Command, HistorySink, KvCommand, ReadMode};
use simnet::{Context, Node, NodeId, Time, TraceCtx, Timer};

use crate::msg::RaftMsg;

const CLIENT_RETRY: u64 = 100;
const CLIENT_ISSUE: u64 = 101;
const CLIENT_NUDGE: u64 = 102;

/// Delay before resending after a `NotLeader` redirect. A single armed
/// nudge (instead of an immediate resend per redirect) bounds redirect
/// traffic to one resend per client per interval: with a transmit-limited
/// NIC, stale redirects otherwise arrive from a growing queue and every
/// bounce triggers another bounce — a self-sustaining request storm.
const NUDGE_US: u64 = 2_000;

/// A client issuing `total` commands from a deterministic workload.
pub struct Client {
    /// Client id (== node id).
    pub client_id: u32,
    n_replicas: usize,
    workload: KvWorkload,
    total: usize,
    mode: WorkloadMode,
    /// Commands completed.
    pub completed: usize,
    /// Issued-but-unreplied commands, by client sequence number.
    outstanding: BTreeMap<u64, (Command<KvCommand>, Time)>,
    leader_guess: NodeId,
    nudge_armed: bool,
    /// Consecutive `CLIENT_RETRY` expiries with no reply or redirect.
    retry_strikes: u8,
    /// Request → reply latencies.
    pub latencies: LatencyRecorder,
    /// Invoke/response history for safety checking.
    pub history: HistorySink,
    /// Open root trace span per outstanding seq (tracing only).
    trace_roots: BTreeMap<u64, TraceCtx>,
    /// Fast-path read replies keyed by `(reader client id, read sequence
    /// number)` (geo read path and tests only — the classic closed/open
    /// workload never issues reads through this channel; several routers
    /// may share one gateway client, hence the compound key).
    pub read_replies: BTreeMap<(u32, u64), (Option<String>, ReadMode)>,
}

impl Client {
    /// Creates a closed-loop client that will issue `total` commands.
    pub fn new(client_id: u32, n_replicas: usize, total: usize, mix: KvMix, seed: u64) -> Self {
        Self::new_with(client_id, n_replicas, total, mix, seed, WorkloadMode::Closed)
    }

    /// Creates a client with an explicit pacing mode.
    pub fn new_with(
        client_id: u32,
        n_replicas: usize,
        total: usize,
        mix: KvMix,
        seed: u64,
        mode: WorkloadMode,
    ) -> Self {
        Client {
            client_id,
            n_replicas,
            workload: KvWorkload::new(client_id, mix, seed),
            total,
            mode,
            completed: 0,
            outstanding: BTreeMap::new(),
            leader_guess: NodeId(0),
            nudge_armed: false,
            retry_strikes: 0,
            latencies: LatencyRecorder::new(),
            history: HistorySink::new(),
            trace_roots: BTreeMap::new(),
            read_replies: BTreeMap::new(),
        }
    }

    /// Whether the workload finished.
    pub fn done(&self) -> bool {
        self.completed >= self.total
    }

    /// Replaces the workload mix; called by the cluster builder before the
    /// first command is generated, which is equivalent to constructing with
    /// the new mix (see [`consensus_core::workload::KvWorkload::set_mix`]).
    pub fn set_mix(&mut self, mix: KvMix) {
        self.workload.set_mix(mix);
    }

    fn issue_next(&mut self, ctx: &mut Context<RaftMsg>) {
        if self.workload.issued() as usize >= self.total {
            return;
        }
        let cmd = self.workload.next_command();
        self.history
            .invoke(cmd.client, cmd.seq, cmd.op.clone(), ctx.now().0);
        self.outstanding.insert(cmd.seq, (cmd.clone(), ctx.now()));
        if let Some(tc) = ctx.trace_begin(&format!("op c{} s{}", cmd.client, cmd.seq)) {
            self.trace_roots.insert(cmd.seq, tc);
        }
        ctx.send(self.leader_guess, RaftMsg::Request { cmd });
        ctx.set_timer(100_000, CLIENT_RETRY);
    }

    fn resend_all(&mut self, ctx: &mut Context<RaftMsg>) {
        let pending: Vec<(u64, Command<KvCommand>)> = self
            .outstanding
            .iter()
            .map(|(&seq, (cmd, _))| (seq, cmd.clone()))
            .collect();
        for (seq, cmd) in pending {
            // Resends continue the command's original trace, not the trace
            // of whatever message happened to trigger the retry.
            ctx.set_trace_ctx(self.trace_roots.get(&seq).copied());
            ctx.send(self.leader_guess, RaftMsg::Request { cmd });
        }
        ctx.set_trace_ctx(None);
        if !self.outstanding.is_empty() {
            ctx.set_timer(100_000, CLIENT_RETRY);
        }
    }
}

impl Node for Client {
    type Msg = RaftMsg;

    fn on_start(&mut self, ctx: &mut Context<RaftMsg>) {
        self.issue_next(ctx);
        if let WorkloadMode::Open { interval_us } = self.mode {
            ctx.set_timer(interval_us.max(1), CLIENT_ISSUE);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<RaftMsg>, from: NodeId, msg: RaftMsg) {
        match msg {
            RaftMsg::Reply { seq, output, .. } => {
                self.retry_strikes = 0;
                if let Some((cmd, sent_at)) = self.outstanding.remove(&seq) {
                    if let Some(tc) = self.trace_roots.remove(&seq) {
                        ctx.trace_close(tc);
                    }
                    self.history
                        .complete(cmd.client, cmd.seq, ctx.now().0, output);
                    self.latencies.record(sent_at, ctx.now());
                    self.completed += 1;
                    if self.mode == WorkloadMode::Closed {
                        self.issue_next(ctx);
                    }
                }
            }
            RaftMsg::NotLeader { seq, hint } => {
                self.retry_strikes = 0;
                if self.outstanding.contains_key(&seq) {
                    // Follow the hint unless it points back at the replier;
                    // then probe round-robin.
                    self.leader_guess = if hint != from && hint.index() < self.n_replicas {
                        hint
                    } else {
                        NodeId::from((from.index() + 1) % self.n_replicas)
                    };
                    if !self.nudge_armed {
                        self.nudge_armed = true;
                        ctx.set_timer(NUDGE_US, CLIENT_NUDGE);
                    }
                }
            }
            RaftMsg::ReadResp {
                client,
                seq,
                value,
                mode,
            } => {
                self.read_replies.insert((client, seq), (value, mode));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<RaftMsg>, timer: Timer) {
        match timer.kind {
            CLIENT_RETRY if !self.outstanding.is_empty() => {
                // First expiry resends to the current guess (the reply may
                // just be slow under load); only repeated silence rotates —
                // eagerly rotating off a live-but-saturated leader turns
                // every >100 ms reply into a redirect round-trip.
                self.retry_strikes = self.retry_strikes.saturating_add(1);
                if self.retry_strikes >= 2 {
                    self.retry_strikes = 0;
                    self.leader_guess =
                        NodeId::from((self.leader_guess.index() + 1) % self.n_replicas);
                }
                self.resend_all(ctx);
            }
            CLIENT_NUDGE => {
                self.nudge_armed = false;
                if !self.outstanding.is_empty() {
                    self.resend_all(ctx);
                }
            }
            CLIENT_ISSUE => {
                self.issue_next(ctx);
                if let WorkloadMode::Open { interval_us } = self.mode {
                    if (self.workload.issued() as usize) < self.total {
                        ctx.set_timer(interval_us.max(1), CLIENT_ISSUE);
                    }
                }
            }
            _ => {}
        }
    }
}
