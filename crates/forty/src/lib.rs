//! # forty — 40 years of consensus behind one import
//!
//! The facade crate: re-exports the whole protocol zoo built for the
//! reproduction of *"Modern Large-Scale Data Management Systems after 40
//! Years of Consensus"* (Amiri, Agrawal, El Abbadi — ICDE 2020), and hosts
//! the repository-level examples and cross-crate integration tests.
//!
//! ```
//! use forty::paxos::MultiPaxosCluster;
//! use forty::consensus_core::QuorumSpec;
//! use forty::simnet::{NetConfig, Time};
//!
//! let mut cluster = MultiPaxosCluster::new(
//!     QuorumSpec::Majority { n: 3 },
//!     3,          // replicas
//!     1,          // clients
//!     5,          // commands per client
//!     NetConfig::lan(),
//!     42,         // seed — identical runs every time
//! );
//! assert!(cluster.run(Time::from_secs(10)));
//! assert_eq!(cluster.total_completed(), 5);
//! ```
//!
//! ## Map of the workspace
//!
//! | crate | contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event network simulation |
//! | [`consensus_core`] | taxonomy, ballots, quorum systems, SMR, C&C framework |
//! | [`paxos`] | single-decree, Multi-, Fast, and Flexible Paxos |
//! | [`raft`] | Raft |
//! | [`atomic_commit`] | 2PC and fault-tolerant 3PC |
//! | [`agreement`] | interactive consistency, OM(m), FLP, Ben-Or |
//! | [`bft`] | PBFT, Zyzzyva, HotStuff, MinBFT, CheapBFT, XFT, SeeMoRe, UpRight |
//! | [`blockchain`] | PoW, PoS, permissioned chains |
//! | [`store`] | sharded transactional KV store: 2PC over consensus groups |

pub use agreement;
pub use atomic_commit;
pub use bft;
pub use blockchain;
pub use consensus_core;
pub use paxos;
pub use raft;
pub use simnet;
pub use store;
